"""Active database substrate: events, ECA rules, engine, and the
constraint-to-trigger compiler (the Chomicki–Toman implementation
route for temporal integrity constraints)."""

from repro.active.compiler import ActiveChecker
from repro.active.engine import ActiveDatabase
from repro.active.events import Event, EventPattern, events_of
from repro.active.rules import Rule

__all__ = [
    "ActiveChecker",
    "ActiveDatabase",
    "Event",
    "EventPattern",
    "Rule",
    "events_of",
]
