"""Event model of the active database substrate.

Mirrors the event vocabulary of early active DBMSs (Starburst-style),
which is what the Chomicki–Toman implementation of temporal constraints
targeted: rules can react to the commit of a transaction as a whole, or
to individual tuple insertions/deletions it performed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.db.transactions import Transaction
from repro.db.types import Row
from repro.temporal.clock import Timestamp


class Event:
    """One event raised during a commit."""

    __slots__ = ("kind", "time", "relation", "row", "transaction")

    COMMIT = "commit"
    INSERT = "insert"
    DELETE = "delete"

    def __init__(
        self,
        kind: str,
        time: Timestamp,
        relation: Optional[str] = None,
        row: Optional[Row] = None,
        transaction: Optional[Transaction] = None,
    ):
        self.kind = kind
        self.time = time
        self.relation = relation
        self.row = row
        self.transaction = transaction

    def __repr__(self) -> str:
        if self.kind == Event.COMMIT:
            return f"Event(commit at t={self.time})"
        return f"Event({self.kind} {self.relation}{self.row} at t={self.time})"


def events_of(time: Timestamp, txn: Transaction) -> List[Event]:
    """Expand a committed transaction into its event sequence.

    The commit event comes first (rules maintaining state typically
    hang off it), followed by per-tuple insert then delete events in a
    deterministic order.
    """
    out: List[Event] = [
        Event(Event.COMMIT, time, transaction=txn)
    ]
    for relation in sorted(txn.inserts):
        for row in sorted(txn.inserts[relation], key=repr):
            out.append(Event(Event.INSERT, time, relation, row, txn))
    for relation in sorted(txn.deletes):
        for row in sorted(txn.deletes[relation], key=repr):
            out.append(Event(Event.DELETE, time, relation, row, txn))
    return out


class EventPattern:
    """What events a rule reacts to."""

    __slots__ = ("kind", "relation")

    def __init__(self, kind: str, relation: Optional[str] = None):
        if kind not in (Event.COMMIT, Event.INSERT, Event.DELETE):
            raise ValueError(f"unknown event kind: {kind!r}")
        self.kind = kind
        self.relation = relation

    @classmethod
    def on_commit(cls) -> "EventPattern":
        """React once per committed transaction."""
        return cls(Event.COMMIT)

    @classmethod
    def on_insert(cls, relation: str) -> "EventPattern":
        """React to each tuple inserted into ``relation``."""
        return cls(Event.INSERT, relation)

    @classmethod
    def on_delete(cls, relation: str) -> "EventPattern":
        """React to each tuple deleted from ``relation``."""
        return cls(Event.DELETE, relation)

    def matches(self, event: Event) -> bool:
        """Whether ``event`` triggers this pattern."""
        if event.kind != self.kind:
            return False
        return self.relation is None or self.relation == event.relation

    def __repr__(self) -> str:
        if self.kind == Event.COMMIT:
            return "on_commit"
        return f"on_{self.kind}({self.relation})"
