"""ECA (event–condition–action) rules.

A rule names an :class:`~repro.active.events.EventPattern`, an optional
condition over the post-commit database state, and an action executed
with the engine and the triggering event.  Rules carry a priority;
lower numbers fire first, which is how the constraint compiler encodes
the bottom-up ordering of auxiliary-table maintenance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.active.events import Event, EventPattern
from repro.db.database import DatabaseState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.active.engine import ActiveDatabase

Condition = Callable[[DatabaseState, Event], bool]
Action = Callable[["ActiveDatabase", Event], None]


class Rule:
    """One event–condition–action rule."""

    __slots__ = ("name", "pattern", "condition", "action", "priority", "enabled")

    def __init__(
        self,
        name: str,
        pattern: EventPattern,
        action: Action,
        condition: Optional[Condition] = None,
        priority: int = 100,
    ):
        self.name = name
        self.pattern = pattern
        self.action = action
        self.condition = condition
        self.priority = priority
        self.enabled = True

    def triggered_by(self, event: Event, state: DatabaseState) -> bool:
        """Whether this rule should fire for ``event`` in ``state``."""
        if not self.enabled or not self.pattern.matches(event):
            return False
        if self.condition is None:
            return True
        return self.condition(state, event)

    def fire(self, engine: "ActiveDatabase", event: Event) -> None:
        """Execute the rule's action."""
        self.action(engine, event)

    def __repr__(self) -> str:
        return (
            f"Rule({self.name!r}, {self.pattern!r}, "
            f"priority={self.priority})"
        )
