"""ECA (event–condition–action) rules.

A rule names an :class:`~repro.active.events.EventPattern`, an optional
condition over the post-commit database state, and an action executed
with the engine and the triggering event.  Rules carry a priority;
lower numbers fire first, which is how the constraint compiler encodes
the bottom-up ordering of auxiliary-table maintenance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional, Tuple

from repro.active.events import Event, EventPattern
from repro.db.database import DatabaseState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.active.engine import ActiveDatabase

Condition = Callable[[DatabaseState, Event], bool]
Action = Callable[["ActiveDatabase", Event], None]


class Rule:
    """One event–condition–action rule.

    Actions are opaque callables, so static analysis cannot discover
    what they touch; the optional ``reads``/``writes`` metadata lets
    rule authors *declare* the relations an action reads and writes.
    The linter's interference analysis (RTC010) operates on these
    declarations and skips rules that omit them.
    """

    __slots__ = ("name", "pattern", "condition", "action", "priority",
                 "enabled", "reads", "writes")

    def __init__(
        self,
        name: str,
        pattern: EventPattern,
        action: Action,
        condition: Optional[Condition] = None,
        priority: int = 100,
        reads: Optional[Iterable[str]] = None,
        writes: Optional[Iterable[str]] = None,
    ):
        self.name = name
        self.pattern = pattern
        self.action = action
        self.condition = condition
        self.priority = priority
        self.enabled = True
        self.reads: Optional[Tuple[str, ...]] = (
            None if reads is None else tuple(reads)
        )
        self.writes: Optional[Tuple[str, ...]] = (
            None if writes is None else tuple(writes)
        )

    def triggered_by(self, event: Event, state: DatabaseState) -> bool:
        """Whether this rule should fire for ``event`` in ``state``."""
        if not self.enabled or not self.pattern.matches(event):
            return False
        if self.condition is None:
            return True
        return self.condition(state, event)

    def fire(self, engine: "ActiveDatabase", event: Event) -> None:
        """Execute the rule's action."""
        self.action(engine, event)

    def __repr__(self) -> str:
        return (
            f"Rule({self.name!r}, {self.pattern!r}, "
            f"priority={self.priority})"
        )
