"""Compiling constraints to ECA rules over the active database.

This is the Chomicki–Toman implementation route: the auxiliary
relations of the bounded history encoding are stored as *ordinary
database tables*, maintained by triggers that fire on each commit, and
the constraint check itself is a final lowest-priority trigger.  The
result is a third, independently structured implementation of the same
semantics, used for cross-validation and the E7 experiment.

Layout per temporal subformula ``i``:

* ``ONCE``/``SINCE`` node — table ``aux{i}(v1..vk, ts)`` holding anchor
  timestamps per valuation (pruned/min-collapsed exactly as in
  :mod:`repro.core.auxiliary`);
* ``PREV`` node — tables ``prevv{i}`` (the node's virtual relation at
  the current time) and ``prevop{i}`` (the operand's satisfying
  valuations at the current time, i.e. next step's answer), plus a row
  ``(i, last_time)`` in the shared ``auxmeta`` table.

Rule priorities encode bottom-up maintenance order; the check rule runs
last and records violations.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.active.engine import ActiveDatabase
from repro.active.events import EventPattern
from repro.active.rules import Rule
from repro.core.checker import Constraint, reject_future_constraints
from repro.core.foeval import AtomProvider, evaluate, relation_atom_table
from repro.core.formulas import Atom, Formula, Once, Prev, Since
from repro.core.statespace import (
    constraint_node_names,
    deep_size,
    profile_totals,
)
from repro.core.violations import RunReport, StepReport, Violation
from repro.db.algebra import Table
from repro.db.database import DatabaseState
from repro.db.relation import Relation
from repro.db.schema import DatabaseSchema, RelationSchema
from repro.db.transactions import Transaction
from repro.db.types import Domain
from repro.errors import MonitorError
from repro.temporal.clock import Timestamp
from repro.temporal.stream import UpdateStream

CHECK_PRIORITY = 10_000
META_TABLE = "auxmeta"


def _vars_of(node: Formula) -> Tuple[str, ...]:
    return tuple(sorted(node.free_vars))


def _ts_column(variables: Sequence[str]) -> str:
    """A timestamp column name not colliding with the node's variables."""
    name = "ts"
    suffix = 2
    while name in variables:
        name = f"ts_{suffix}"
        suffix += 1
    return name


class _NodePlan:
    """Static layout of one temporal node's tables."""

    __slots__ = ("index", "node", "variables", "ts_col")

    def __init__(self, index: int, node: Formula):
        self.index = index
        self.node = node
        self.variables = _vars_of(node)
        self.ts_col = _ts_column(self.variables)

    @property
    def aux_table(self) -> str:
        return f"aux{self.index}"

    @property
    def prev_virtual_table(self) -> str:
        return f"prevv{self.index}"

    @property
    def prev_operand_table(self) -> str:
        return f"prevop{self.index}"


class _ActiveProvider(AtomProvider):
    """Resolves atoms from the engine state and temporal nodes from the
    auxiliary tables, at the current commit time."""

    def __init__(self, checker: "ActiveChecker"):
        self.checker = checker

    def atom_table(self, atom: Atom) -> Table:
        state = self.checker.engine.state
        return relation_atom_table(state.relation(atom.relation), atom)

    def temporal_table(self, formula: Formula) -> Table:
        return self.checker._virtual_table(formula)


class ActiveChecker:
    """Constraint checking via ECA rules over the active database.

    Exposes the same stepping API as
    :class:`~repro.core.checker.IncrementalChecker`.
    """

    #: engine label used in telemetry series and by ``space_of``
    engine_label = "active"

    def __init__(
        self,
        schema: DatabaseSchema,
        constraints: Sequence[Constraint],
        initial: Optional[DatabaseState] = None,
        instrumentation=None,
    ):
        self.user_schema = schema
        self.constraints = list(constraints)
        for c in self.constraints:
            c.validate_schema(schema)
        reject_future_constraints(self.constraints, "active")
        #: hook sink (None = disabled; see repro.obs.instrument)
        self.instrumentation = instrumentation

        # assign one plan per structurally distinct temporal node,
        # registered bottom-up (post-order per constraint)
        self._plans: Dict[Formula, _NodePlan] = {}
        for c in self.constraints:
            for node in c.violation_formula.temporal_subformulas():
                if node not in self._plans:
                    self._plans[node] = _NodePlan(len(self._plans), node)

        self.schema = self._extend_schema(schema)
        base = self._lift_state(initial)
        self.engine = ActiveDatabase(self.schema, initial=base)
        # rule firings reported under this checker's engine label
        self.engine.instrumentation = instrumentation
        self.engine.instrumentation_label = self.engine_label
        self._register_rules()
        self._index = -1
        self._step_violations: List[Violation] = []
        # telemetry attribution: each constraint's node plans
        self._constraint_plans = {
            c.name: tuple(
                {
                    node: self._plans[node]
                    for node in c.violation_formula.temporal_subformulas()
                }.values()
            )
            for c in self.constraints
        }

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _extend_schema(self, schema: DatabaseSchema) -> DatabaseSchema:
        extra: List[RelationSchema] = []
        for plan in self._plans.values():
            cols = [(v, Domain.ANY) for v in plan.variables]
            if isinstance(plan.node, (Once, Since)):
                extra.append(
                    RelationSchema(
                        plan.aux_table, cols + [(plan.ts_col, Domain.INT)]
                    )
                )
            else:
                extra.append(RelationSchema(plan.prev_virtual_table, cols))
                extra.append(RelationSchema(plan.prev_operand_table, cols))
        extra.append(
            RelationSchema(
                META_TABLE, [("node", Domain.INT), ("lasttime", Domain.INT)]
            )
        )
        for rel in extra:
            if rel.name in schema:
                raise MonitorError(
                    f"user schema clashes with auxiliary table {rel.name!r}"
                )
        return schema.extended(*extra)

    def _lift_state(
        self, initial: Optional[DatabaseState]
    ) -> DatabaseState:
        if initial is None:
            return DatabaseState.empty(self.schema)
        if initial.schema != self.user_schema:
            raise MonitorError("initial state does not match schema")
        contents = {
            rel.name: rel.rows for rel in initial if rel.rows
        }
        return DatabaseState.from_rows(self.schema, contents)

    def _register_rules(self) -> None:
        for plan in self._plans.values():
            self.engine.register(
                Rule(
                    name=f"maintain-{plan.aux_table}",
                    pattern=EventPattern.on_commit(),
                    action=self._maintenance_action(plan),
                    priority=10 + plan.index,
                )
            )
        self.engine.register(
            Rule(
                name="check-constraints",
                pattern=EventPattern.on_commit(),
                action=self._check_action,
                priority=CHECK_PRIORITY,
            )
        )

    # ------------------------------------------------------------------
    # maintenance actions
    # ------------------------------------------------------------------

    def _maintenance_action(self, plan: _NodePlan):
        if isinstance(plan.node, Prev):
            def action(engine: ActiveDatabase, event) -> None:
                self._maintain_prev(plan, event.time)
        else:
            def action(engine: ActiveDatabase, event) -> None:
                self._maintain_anchors(plan, event.time)
        return action

    def _meta_last_time(self, plan: _NodePlan) -> Optional[Timestamp]:
        rows = self.engine.state.relation(META_TABLE).lookup(0, plan.index)
        for row in rows:
            return row[1]
        return None

    def _set_meta(self, plan: _NodePlan, time: Timestamp) -> None:
        old = self.engine.state.relation(META_TABLE).lookup(0, plan.index)
        self.engine.apply(
            Transaction(
                {META_TABLE: [(plan.index, time)]},
                {META_TABLE: set(old)},
            )
        )

    def _maintain_prev(self, plan: _NodePlan, time: Timestamp) -> None:
        node = plan.node
        assert isinstance(node, Prev)
        state = self.engine.state
        last_time = self._meta_last_time(plan)
        old_operand = state.relation(plan.prev_operand_table).rows
        if last_time is not None and node.interval.contains(time - last_time):
            virtual: frozenset = old_operand
        else:
            virtual = frozenset()
        provider = _ActiveProvider(self)
        now_operand = set(
            evaluate(node.operand, provider)
            .project(plan.variables)
            .rows
        )
        old_virtual = state.relation(plan.prev_virtual_table).rows
        self.engine.apply(
            Transaction(
                {
                    plan.prev_virtual_table: set(virtual) - set(old_virtual),
                    plan.prev_operand_table: now_operand - set(old_operand),
                },
                {
                    plan.prev_virtual_table: set(old_virtual) - set(virtual),
                    plan.prev_operand_table: set(old_operand) - now_operand,
                },
            )
        )
        self._set_meta(plan, time)

    def _maintain_anchors(self, plan: _NodePlan, time: Timestamp) -> None:
        node = plan.node
        assert isinstance(node, (Once, Since))
        interval = node.interval
        state = self.engine.state
        rows = state.relation(plan.aux_table).rows
        k = len(plan.variables)
        deletes: set = set()

        surviving_valuations = None
        if isinstance(node, Since) and rows:
            candidates = Table(
                plan.variables, {r[:k] for r in rows}
            )
            provider = _ActiveProvider(self)
            survivors = evaluate(node.left, provider, candidates)
            surviving_valuations = set(
                survivors.project(plan.variables).rows
            )
            deletes |= {
                r for r in rows if r[:k] not in surviving_valuations
            }

        live = {r for r in rows if r not in deletes}

        # metric pruning (finite upper bound only)
        if interval.is_bounded:
            cutoff = time - interval.high
            expired = {r for r in live if r[k] < cutoff}
            deletes |= expired
            live -= expired

        # new anchors from the operand (ONCE) / right operand (SINCE)
        anchor_formula = (
            node.right if isinstance(node, Since) else node.operand
        )
        provider = _ActiveProvider(self)
        now_rows = (
            evaluate(anchor_formula, provider)
            .project(plan.variables)
            .rows
        )
        present = {r[:k] for r in live}
        inserts: set = set()
        for valuation in now_rows:
            if interval.is_bounded:
                inserts.add(valuation + (time,))
            elif valuation not in present:
                # unbounded: min-timestamp collapse, one row per valuation
                inserts.add(valuation + (time,))
        inserts -= deletes & inserts  # cannot insert and delete same row
        deletes -= inserts & deletes
        self.engine.apply(
            Transaction({plan.aux_table: inserts}, {plan.aux_table: deletes})
        )

    # ------------------------------------------------------------------
    # virtual tables and checking
    # ------------------------------------------------------------------

    def _virtual_table(self, node: Formula) -> Table:
        plan = self._plans.get(node)
        if plan is None:
            raise MonitorError(f"no auxiliary table for {node}")
        state = self.engine.state
        now = self.engine.now
        assert now is not None
        if isinstance(plan.node, Prev):
            return Table(
                plan.variables,
                state.relation(plan.prev_virtual_table).rows,
            )
        threshold = now - plan.node.interval.low
        k = len(plan.variables)
        rows = state.relation(plan.aux_table).rows
        return Table(
            plan.variables,
            {r[:k] for r in rows if r[k] <= threshold},
        )

    def _check_action(self, engine: ActiveDatabase, event) -> None:
        provider = _ActiveProvider(self)
        obs = self.instrumentation
        violations: List[Violation] = []
        for c in self.constraints:
            if obs is not None:
                started = perf_counter()
                witnesses = evaluate(c.violation_formula, provider)
                obs.constraint_checked(
                    self.engine_label,
                    c.name,
                    perf_counter() - started,
                    0 if witnesses.is_empty else max(1, len(witnesses)),
                    self._plan_tuples(self._constraint_plans[c.name]),
                )
            else:
                witnesses = evaluate(c.violation_formula, provider)
            if not witnesses.is_empty:
                violations.append(
                    Violation(c.name, event.time, self._index, witnesses)
                )
        self._step_violations = violations

    # ------------------------------------------------------------------
    # stepping API (mirrors IncrementalChecker)
    # ------------------------------------------------------------------

    @property
    def now(self) -> Optional[Timestamp]:
        """Time of the last processed state (None before any)."""
        return self.engine.now

    @property
    def steps_processed(self) -> int:
        """Number of states processed so far."""
        return self._index + 1

    def step(self, time: Timestamp, txn: Transaction) -> StepReport:
        """Commit ``txn`` at ``time``; rules maintain aux tables and check."""
        txn.validate(self.user_schema)  # users may not touch aux tables
        self._index += 1
        self._step_violations = []
        obs = self.instrumentation
        if obs is None:
            try:
                self.engine.commit(time, txn)
            except Exception:
                # a rejected commit (e.g. clock fault) must not consume
                # a step index — skip-policy monitors rely on indices
                # advancing only for applied steps
                self._index -= 1
                self._step_violations = []
                raise
            return StepReport(time, self._index, self._step_violations)
        started = perf_counter()
        obs.step_begin(self.engine_label, time, txn.size)
        try:
            self.engine.commit(time, txn)
        except Exception:
            self._index -= 1
            self._step_violations = []
            raise
        report = StepReport(time, self._index, self._step_violations)
        obs.step_end(
            self.engine_label,
            time,
            perf_counter() - started,
            len(report.violations),
            self.aux_tuple_count(),
        )
        return report

    def step_state(self, time: Timestamp, state: DatabaseState) -> StepReport:
        """Like :meth:`step` with the successor user state given directly."""
        if state.schema != self.user_schema:
            raise MonitorError("state does not match user schema")
        current = {
            rel.name: self.engine.state.relation(rel.name).rows
            for rel in self.user_schema
        }
        target = DatabaseState.from_rows(
            self.user_schema,
            {rel.name: rel.rows for rel in state},
        )
        base = DatabaseState.from_rows(self.user_schema, current)
        return self.step(time, base.diff(target))

    def run(self, stream: Union[UpdateStream, Sequence]) -> RunReport:
        """Process a whole update stream; return the aggregate report."""
        report = RunReport()
        for time, txn in stream:
            report.add(self.step(time, txn))
        return report

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------

    def _plan_tuples(self, plans: Sequence[_NodePlan]) -> int:
        state = self.engine.state
        total = 0
        for plan in plans:
            if isinstance(plan.node, Prev):
                total += state.relation(plan.prev_operand_table).cardinality
            else:
                total += state.relation(plan.aux_table).cardinality
        return total

    def aux_tuple_count(self) -> int:
        """Stored auxiliary rows (anchors + PREV carry-over tables)."""
        return self._plan_tuples(list(self._plans.values()))

    def _plan_rows(self, plan: _NodePlan) -> frozenset:
        """Stored rows of a plan's space-bearing table.

        For ``PREV`` that is the operand carry-over table (the same
        store :class:`~repro.core.auxiliary.PrevState` keeps); anchors
        live in ``aux{i}`` with the timestamp in the last column.
        """
        state = self.engine.state
        if isinstance(plan.node, Prev):
            return state.relation(plan.prev_operand_table).rows
        return state.relation(plan.aux_table).rows

    def aux_valuation_count(self) -> int:
        """Total distinct valuations across all auxiliary tables."""
        total = 0
        for plan in self._plans.values():
            rows = self._plan_rows(plan)
            if isinstance(plan.node, Prev):
                total += len(rows)
            else:
                k = len(plan.variables)
                total += len({r[:k] for r in rows})
        return total

    def aux_profile(self) -> Dict[str, int]:
        """Per-temporal-subformula stored-row counts (stable keys)."""
        return {
            str(plan.node): len(self._plan_rows(plan))
            for plan in self._plans.values()
        }

    def aux_nodes(self) -> List[Formula]:
        """Temporal subformulas with attributable auxiliary tables."""
        return list(self._plans.keys())

    def _aux_labels(self) -> Dict[Formula, str]:
        """Cached ``node -> str(node)`` map (labels are per-step keys;
        re-rendering formulas every step would dominate the sampler)."""
        labels = getattr(self, "_aux_label_cache", None)
        if labels is None or len(labels) != len(self._plans):
            labels = {node: str(node) for node in self._plans}
            self._aux_label_cache = labels
        return labels

    def aux_counts(self) -> Dict[str, Tuple[int, int]]:
        """Per-node ``(tuples, valuations)`` — the cheap per-step sample."""
        labels = self._aux_labels()
        counts: Dict[str, Tuple[int, int]] = {}
        for node, plan in self._plans.items():
            rows = self._plan_rows(plan)
            if isinstance(node, Prev):
                counts[labels[node]] = (len(rows), len(rows))
            else:
                k = len(plan.variables)
                counts[labels[node]] = (
                    len(rows), len({r[:k] for r in rows})
                )
        return counts

    def space_tuples(self) -> int:
        """Uniform space hook (stored tuples); every engine has one."""
        return self.aux_tuple_count()

    def iter_state_valuations(self):
        """Yield ``(node label, valuation, stored rows)`` triples."""
        for plan in self._plans.values():
            label = str(plan.node)
            rows = self._plan_rows(plan)
            if isinstance(plan.node, Prev):
                for row in rows:
                    yield label, row, 1
            else:
                k = len(plan.variables)
                counts: Dict[tuple, int] = {}
                for row in rows:
                    valuation = row[:k]
                    counts[valuation] = counts.get(valuation, 0) + 1
                for valuation, weight in counts.items():
                    yield label, valuation, weight

    def state_profile(self, deep: bool = True) -> Dict[str, object]:
        """Uniform accounting snapshot (see repro.core.statespace).

        Reconstructed from the auxiliary *tables*: anchors are rows of
        ``aux{i}`` with the timestamp in the last column, the ``PREV``
        carry-over is ``prevop{i}``, and its timestamp comes from the
        shared meta table.
        """
        shared = constraint_node_names(self.constraints)
        nodes: Dict[str, Dict] = {}
        for plan in self._plans.values():
            rows = self._plan_rows(plan)
            if isinstance(plan.node, Prev):
                oldest = self._meta_last_time(plan) if rows else None
                valuations = len(rows)
            else:
                k = len(plan.variables)
                oldest = min((r[k] for r in rows), default=None)
                valuations = len({r[:k] for r in rows})
            nodes[str(plan.node)] = {
                "kind": type(plan.node).__name__,
                "tuples": len(rows),
                "valuations": valuations,
                "bytes": deep_size(rows) if deep else None,
                "oldest": oldest,
                "constraints": sorted(shared.get(plan.node, [])),
            }
        return {
            "engine": self.engine_label,
            "nodes": nodes,
            "total": profile_totals(nodes),
            "space_tuples": self.space_tuples(),
        }

    @property
    def temporal_node_count(self) -> int:
        """Number of distinct temporal subformulas being tracked."""
        return len(self._plans)
