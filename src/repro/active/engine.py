"""The active database engine: commits fire rules.

:class:`ActiveDatabase` wraps a database state and a rule set.  Each
:meth:`~ActiveDatabase.commit` applies the user transaction, expands it
into events, and fires every triggered rule in (priority, registration)
order.  Rule actions mutate the database through
:meth:`~ActiveDatabase.apply` — such internal updates do *not* raise
further events (no cascading), which is the discipline the constraint
compiler needs: auxiliary-table maintenance must see exactly one commit
per history state.

A firing log is kept per commit for inspection and tests.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Tuple

from repro.active.events import events_of
from repro.active.rules import Rule
from repro.db.database import DatabaseState
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.errors import MonitorError
from repro.temporal.clock import Timestamp, validate_successor


class ActiveDatabase:
    """A database state plus an ECA rule set."""

    def __init__(
        self,
        schema: DatabaseSchema,
        initial: Optional[DatabaseState] = None,
    ):
        self.schema = schema
        self.state = (
            initial if initial is not None else DatabaseState.empty(schema)
        )
        if self.state.schema != schema:
            raise MonitorError("initial state does not match schema")
        self._rules: List[Rule] = []
        self._now: Optional[Timestamp] = None
        self._in_commit = False
        self.last_fired: List[str] = []
        #: hook sink for rule firings (None = disabled); the owner may
        #: also override the engine label reported with each firing
        self.instrumentation = None
        self.instrumentation_label = "active-db"

    # ------------------------------------------------------------------
    # rule management
    # ------------------------------------------------------------------

    def register(self, rule: Rule) -> Rule:
        """Add a rule; returns it for convenience."""
        if any(r.name == rule.name for r in self._rules):
            raise MonitorError(f"duplicate rule name {rule.name!r}")
        self._rules.append(rule)
        self._rules.sort(key=lambda r: r.priority)
        return rule

    def rule(self, name: str) -> Rule:
        """Look up a rule by name."""
        for r in self._rules:
            if r.name == name:
                return r
        raise MonitorError(f"no rule named {name!r}")

    @property
    def rules(self) -> Tuple[Rule, ...]:
        """Registered rules in firing order."""
        return tuple(self._rules)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    @property
    def now(self) -> Optional[Timestamp]:
        """Time of the last commit (None before any)."""
        return self._now

    def apply(self, txn: Transaction) -> None:
        """Apply an internal update without raising events.

        Only legal inside a commit (i.e. from rule actions); user
        updates must go through :meth:`commit`.
        """
        if not self._in_commit:
            raise MonitorError(
                "apply() is for rule actions; use commit() for user updates"
            )
        self.state = self.state.apply(txn)

    def commit(self, time: Timestamp, txn: Transaction) -> List[str]:
        """Apply a user transaction at ``time`` and fire triggered rules.

        Returns:
            Names of the rules that fired, in firing order.
        """
        validate_successor(self._now, time)
        if self._in_commit:
            raise MonitorError("nested commits are not allowed")
        txn.validate(self.schema)
        self._now = time
        self.state = self.state.apply(txn)
        events = events_of(time, txn)
        fired: List[str] = []
        self._in_commit = True
        obs = self.instrumentation
        try:
            for rule in list(self._rules):
                for event in events:
                    if rule.triggered_by(event, self.state):
                        if obs is not None:
                            started = perf_counter()
                            rule.fire(self, event)
                            obs.rule_fired(
                                self.instrumentation_label,
                                rule.name,
                                time,
                                perf_counter() - started,
                            )
                        else:
                            rule.fire(self, event)
                        fired.append(rule.name)
        finally:
            self._in_commit = False
        self.last_fired = fired
        return fired

    def __repr__(self) -> str:
        return (
            f"ActiveDatabase({len(self._rules)} rule(s), "
            f"now={self._now})"
        )
