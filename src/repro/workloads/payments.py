"""Payments workload: aggregation meets metric windows.

Banking-style rules that need *counting and summing over time*:

* ``outflow-limit`` — the sum of an account's debit events inside the
  trailing ``window`` clock units stays within ``limit`` (a windowed
  ``SUM`` over ``ONCE``);
* ``velocity-limit`` — at most ``max_debits`` distinct debit events per
  account inside the same window (a windowed ``CNT``);
* ``no-dormant-debit`` — a debit requires the account to have been
  active (opened, not yet closed) continuously since its opening event
  (a ``SINCE``).

``debit`` rows are events ``(acct, txid, amount)``; ``active`` is a
state relation; ``openevt``/``closeevt`` are events.  The simulator
produces compliant traffic and injects over-limit bursts at
``violation_rate``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from repro.core.checker import Constraint
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.temporal.stream import UpdateStream
from repro.workloads.base import Workload

EVENT_RELATIONS = ("debit", "openevt", "closeevt")

SCHEMA = (
    DatabaseSchema.builder()
    .relation("active", [("acct", "int")])
    .relation("openevt", [("acct", "int")])
    .relation("closeevt", [("acct", "int")])
    .relation("debit", [("acct", "int"), ("txid", "int"), ("amount", "int")])
    .build()
)


def constraints(
    window: int = 24, limit: int = 500, max_debits: int = 5
) -> List[Constraint]:
    """The payments constraint set, parameterised by its knobs."""
    return [
        Constraint(
            "outflow-limit",
            f"s = SUM(amount, txid; "
            f"ONCE[0,{window}] debit(a, txid, amount)) -> s <= {limit}",
        ),
        Constraint(
            "velocity-limit",
            f"n = CNT(txid; EXISTS amount. "
            f"ONCE[0,{window}] debit(a, txid, amount)) -> n <= {max_debits}",
        ),
        Constraint(
            "no-dormant-debit",
            "debit(a, t, m) -> (active(a) SINCE openevt(a))",
        ),
    ]


class _Bank:
    """Account lifecycle + spending simulator with burst injection."""

    def __init__(
        self,
        accounts: int,
        window: int,
        limit: int,
        max_debits: int,
        violation_rate: float,
        rng: random.Random,
    ):
        self.rng = rng
        self.window = window
        self.limit = limit
        self.max_debits = max_debits
        self.violation_rate = violation_rate
        self.accounts = list(range(accounts))
        self.active: Set[int] = set()
        self.next_tx = 0
        # (time, amount) per account, pruned outside the window
        self.recent: Dict[int, List[Tuple[int, int]]] = {
            a: [] for a in self.accounts
        }

    def _headroom(self, acct: int, time: int) -> Tuple[int, int]:
        recent = [
            (t, m) for t, m in self.recent[acct]
            if time - t <= self.window
        ]
        self.recent[acct] = recent
        spent = sum(m for _, m in recent)
        return self.limit - spent, self.max_debits - len(recent)

    def transition(self, time: int) -> Transaction:
        builder = Transaction.builder()
        # lifecycle events
        for acct in self.accounts:
            roll = self.rng.random()
            if acct not in self.active and roll < 0.10:
                builder.insert("openevt", (acct,))
                builder.insert("active", (acct,))
                self.active.add(acct)
            elif acct in self.active and roll > 0.985:
                builder.insert("closeevt", (acct,))
                builder.delete("active", (acct,))
                self.active.discard(acct)
        # spending
        for acct in sorted(self.active):
            if self.rng.random() > 0.5:
                continue
            money_left, debits_left = self._headroom(acct, time)
            if self.rng.random() < self.violation_rate:
                amount = self.limit + 1  # burst: blow the window limit
            elif debits_left <= 0 or money_left <= 0:
                continue
            else:
                amount = self.rng.randint(
                    1, max(1, money_left // max(1, debits_left))
                )
            txid = self.next_tx
            self.next_tx += 1
            builder.insert("debit", (acct, txid, amount))
            self.recent[acct].append((time, amount))
        return builder.build()


def _stream_factory(
    accounts: int,
    window: int,
    limit: int,
    max_debits: int,
    violation_rate: float,
    max_gap: int,
):
    def build(length: int, seed: int) -> UpdateStream:
        rng = random.Random(seed)
        bank = _Bank(
            accounts, window, limit, max_debits, violation_rate, rng
        )
        items: List[Tuple[int, Transaction]] = []
        time = 0
        pending_clear: Dict[str, Set[tuple]] = {}
        for _ in range(length):
            txn = bank.transition(time)
            if any(pending_clear.values()):
                txn = Transaction({}, pending_clear).merged(txn)
            items.append((time, txn))
            pending_clear = {
                rel: set(txn.inserts.get(rel, ()))
                for rel in EVENT_RELATIONS
            }
            time += rng.randint(1, max_gap)
        return UpdateStream(items)

    return build


def payments_workload(
    accounts: int = 5,
    window: int = 24,
    limit: int = 500,
    max_debits: int = 5,
    violation_rate: float = 0.02,
    max_gap: int = 3,
) -> Workload:
    """Build the payments workload.

    Args:
        accounts: number of accounts.
        window: trailing window for the outflow/velocity rules.
        limit: maximum summed outflow inside the window.
        max_debits: maximum debit events inside the window.
        violation_rate: probability a debit is an over-limit burst.
        max_gap: maximum clock advance between transitions.
    """
    return Workload(
        name="payments",
        schema=SCHEMA,
        constraints=constraints(window, limit, max_debits),
        stream_factory=_stream_factory(
            accounts, window, limit, max_debits, violation_rate, max_gap
        ),
        description=(
            f"{accounts} accounts, window {window}, limit {limit}, "
            f"violation rate {violation_rate}"
        ),
    )
