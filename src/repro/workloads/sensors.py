"""Process-monitoring (sensor) workload.

Models the "real-time" flavour of the paper most directly: a plant of
sensors emits leveled readings every transition, and alarms must obey
metric rules relating them to the recent reading history:

* ``alarm-justified`` — an alarm requires a critical reading (level 2)
  within the last ``justify_window`` units;
* ``sustained-high`` — an alarm requires the readings to have been at
  least "high" (level >= 1) continuously since a critical reading at
  least ``sustain_for`` units ago (a metric ``SINCE`` with an
  existential left operand);
* ``cooldown`` — no alarm within ``cooldown`` units of a maintenance
  event (negated metric ``ONCE``).

``reading`` and ``alarm`` are refreshed every transition (each state
carries the current readings); ``maintenance`` is an event relation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from repro.core.checker import Constraint
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.temporal.stream import UpdateStream
from repro.workloads.base import Workload

SCHEMA = (
    DatabaseSchema.builder()
    .relation("reading", [("sensor", "int"), ("level", "int")])
    .relation("alarm", [("sensor", "int")])
    .relation("maintenance", [("sensor", "int")])
    .build()
)


def constraints(
    justify_window: int = 10,
    sustain_for: int = 5,
    cooldown: int = 3,
) -> List[Constraint]:
    """The sensor constraint set, parameterised by its windows."""
    return [
        Constraint(
            "alarm-justified",
            f"alarm(s) -> ONCE[0,{justify_window}] reading(s, 2)",
        ),
        Constraint(
            "sustained-high",
            f"alarm(s) -> (EXISTS l. reading(s, l) AND l >= 1) "
            f"SINCE[{sustain_for},*] reading(s, 2)",
        ),
        Constraint(
            "cooldown",
            f"alarm(s) -> NOT ONCE[1,{cooldown}] maintenance(s)",
        ),
    ]


class _Plant:
    """Markov-ish sensor levels with occasional spurious alarms."""

    def __init__(
        self,
        sensors: int,
        justify_window: int,
        sustain_for: int,
        cooldown: int,
        violation_rate: float,
        rng: random.Random,
    ):
        self.sensors = list(range(sensors))
        self.justify_window = justify_window
        self.sustain_for = sustain_for
        self.cooldown = cooldown
        self.violation_rate = violation_rate
        self.rng = rng
        self.level: Dict[int, int] = {s: 0 for s in self.sensors}
        self.critical_since: Dict[int, int] = {}   # sensor -> first critical t
        self.last_critical: Dict[int, int] = {}    # sensor -> latest critical t
        self.continuously_high_since: Dict[int, int] = {}
        self.last_maintenance: Dict[int, int] = {}

    def transition(self, time: int) -> Tuple[Dict[int, int], Set[int], Set[int]]:
        """Advance one step; returns (levels, alarms, maintenance)."""
        maintenance: Set[int] = set()
        alarms: Set[int] = set()
        for s in self.sensors:
            lvl = self.level[s]
            roll = self.rng.random()
            if lvl == 0:
                lvl = 1 if roll < 0.30 else 0
            elif lvl == 1:
                lvl = 2 if roll < 0.35 else (0 if roll > 0.85 else 1)
            else:
                lvl = 2 if roll < 0.55 else 1
            self.level[s] = lvl
            if lvl >= 1:
                self.continuously_high_since.setdefault(s, time)
                if lvl == 2:
                    self.critical_since.setdefault(s, time)
                    self.last_critical[s] = time
            else:
                self.continuously_high_since.pop(s, None)
                self.critical_since.pop(s, None)
            if self.rng.random() < 0.05:
                maintenance.add(s)
                self.last_maintenance[s] = time

        for s in self.sensors:
            if self.rng.random() < self.violation_rate:
                alarms.add(s)  # spurious alarm, may break any rule
                continue
            crit = self.critical_since.get(s)
            high = self.continuously_high_since.get(s)
            cooled = (
                s not in self.last_maintenance
                or time - self.last_maintenance[s] > self.cooldown
            )
            recent_critical = self.last_critical.get(s)
            justified = (
                crit is not None
                and high is not None
                and high <= crit
                and time - crit >= self.sustain_for
                and recent_critical is not None
                and time - recent_critical <= self.justify_window
                and self.level[s] >= 1
            )
            if justified and cooled and s not in maintenance:
                alarms.add(s)
        return dict(self.level), alarms, maintenance


def _stream_factory(
    sensors: int,
    justify_window: int,
    sustain_for: int,
    cooldown: int,
    violation_rate: float,
    max_gap: int,
):
    def build(length: int, seed: int) -> UpdateStream:
        rng = random.Random(seed)
        plant = _Plant(
            sensors, justify_window, sustain_for, cooldown,
            violation_rate, rng,
        )
        items: List[Tuple[int, Transaction]] = []
        time = 0
        prev_readings: Set[Tuple[int, int]] = set()
        prev_alarms: Set[Tuple[int]] = set()
        prev_maint: Set[Tuple[int]] = set()
        for _ in range(length):
            levels, alarms, maintenance = plant.transition(time)
            readings = {(s, lvl) for s, lvl in levels.items()}
            alarm_rows = {(s,) for s in alarms}
            maint_rows = {(s,) for s in maintenance}
            txn = Transaction(
                {
                    "reading": readings - prev_readings,
                    "alarm": alarm_rows - prev_alarms,
                    "maintenance": maint_rows - prev_maint,
                },
                {
                    "reading": prev_readings - readings,
                    "alarm": prev_alarms - alarm_rows,
                    "maintenance": prev_maint - maint_rows,
                },
            )
            items.append((time, txn))
            prev_readings, prev_alarms, prev_maint = (
                readings,
                alarm_rows,
                maint_rows,
            )
            time += rng.randint(1, max_gap)
        return UpdateStream(items)

    return build


def sensors_workload(
    sensors: int = 5,
    justify_window: int = 10,
    sustain_for: int = 5,
    cooldown: int = 3,
    violation_rate: float = 0.02,
    max_gap: int = 2,
) -> Workload:
    """Build the sensor-monitoring workload.

    Args:
        sensors: number of sensors in the plant.
        justify_window: window for the alarm-justification rule.
        sustain_for: minimum sustained-high duration before an alarm.
        cooldown: no-alarm window after maintenance.
        violation_rate: per-sensor spurious-alarm probability.
        max_gap: maximum clock advance between transitions.
    """
    return Workload(
        name="sensors",
        schema=SCHEMA,
        constraints=constraints(justify_window, sustain_for, cooldown),
        stream_factory=_stream_factory(
            sensors, justify_window, sustain_for, cooldown,
            violation_rate, max_gap,
        ),
        description=(
            f"{sensors} sensors, sustain {sustain_for}, cooldown "
            f"{cooldown}, violation rate {violation_rate}"
        ),
    )
