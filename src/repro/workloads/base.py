"""Workload bundles: schema + constraints + a stream simulator.

A :class:`Workload` packages everything an experiment needs: the
database schema, the registered constraints, and a seeded generator of
update streams whose compliance can be degraded with an explicit
``violation_rate`` — experiments need violating runs to prove checkers
actually detect, and clean runs to measure steady-state cost.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.checker import Constraint, IncrementalChecker
from repro.core.monitor import Monitor
from repro.db.schema import DatabaseSchema
from repro.temporal.stream import UpdateStream

#: Builds a stream: (length, seed) -> UpdateStream
StreamFactory = Callable[[int, int], UpdateStream]


class Workload:
    """A named, reproducible experimental workload."""

    def __init__(
        self,
        name: str,
        schema: DatabaseSchema,
        constraints: Sequence[Constraint],
        stream_factory: StreamFactory,
        description: str = "",
    ):
        self.name = name
        self.schema = schema
        self.constraints = list(constraints)
        self._stream_factory = stream_factory
        self.description = description

    def stream(self, length: int, seed: int = 0) -> UpdateStream:
        """Generate a stream of ``length`` transitions."""
        return self._stream_factory(length, seed)

    def monitor(self, engine: str = "incremental") -> Monitor:
        """A monitor pre-loaded with this workload's constraints."""
        monitor = Monitor(self.schema, engine=engine)
        for c in self.constraints:
            monitor.add_constraint(c.name, c.formula)
        return monitor

    def checker(self) -> IncrementalChecker:
        """A bare incremental checker for this workload."""
        return IncrementalChecker(self.schema, self.constraints)

    def lint(self, config=None):
        """Lint this workload's constraint set against its schema.

        Shipped workloads are expected to stay clean (no errors or
        warnings); the chaos/bench harnesses and ``repro generate``
        assert this so generated experiment inputs are lint-clean.

        Returns:
            A :class:`repro.lint.LintReport`.
        """
        from repro.lint import Linter

        return Linter(self.schema, config).lint_constraints(
            [(c.name, c.formula) for c in self.constraints]
        )

    def __repr__(self) -> str:
        return (
            f"Workload({self.name!r}, {len(self.constraints)} "
            f"constraint(s))"
        )
