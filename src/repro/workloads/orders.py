"""Order-fulfilment workload.

Exercises the ``SINCE`` operator as a *deadline* detector, the pattern
real-time integrity constraints were designed for:

* ``ship-deadline`` — no order may remain pending for more than
  ``ship_days`` clock units after its placement event.  Written as
  ``NOT (pending(o) SINCE[ship_days+1,*] place(o))``: the moment the
  pending flag has survived continuously for longer than the deadline,
  the constraint fails.
* ``ship-requires-order`` — a ship event must be for an order placed
  at some time in the past;
* ``no-ship-after-cancel`` — a cancelled order is never shipped.

Relations: ``pending(order)`` is a state relation held from placement
to shipment/cancellation; ``place``, ``ship`` and ``cancel`` are event
relations.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from repro.core.checker import Constraint
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.temporal.stream import UpdateStream
from repro.workloads.base import Workload

EVENT_RELATIONS = ("place", "ship", "cancel")

SCHEMA = (
    DatabaseSchema.builder()
    .relation("pending", [("o", "int")])
    .relation("place", [("o", "int")])
    .relation("ship", [("o", "int")])
    .relation("cancel", [("o", "int")])
    .build()
)


def constraints(ship_days: int = 30) -> List[Constraint]:
    """The order constraint set, parameterised by the deadline."""
    return [
        Constraint(
            "ship-deadline",
            f"NOT (EXISTS o. pending(o) SINCE[{ship_days + 1},*] place(o))",
        ),
        Constraint(
            "ship-requires-order",
            "ship(o) -> ONCE place(o)",
        ),
        Constraint(
            "no-ship-after-cancel",
            "ship(o) -> NOT ONCE cancel(o)",
        ),
    ]


class _Simulator:
    """Order lifecycle simulator with deadline slippage injection."""

    def __init__(
        self,
        ship_days: int,
        violation_rate: float,
        rng: random.Random,
    ):
        self.ship_days = ship_days
        self.violation_rate = violation_rate
        self.rng = rng
        self.next_order = 0
        self.open_orders: Dict[int, int] = {}  # order -> placed_at
        self.sloppy: Set[int] = set()  # orders allowed to miss deadlines
        self.cancelled: Set[int] = set()
        self._touched: Set[int] = set()  # orders acted on this step

    def transition(self, time: int) -> Transaction:
        builder = Transaction.builder()
        # an order acts at most once per transition, so placement is
        # visible for at least one state before shipment/cancellation
        self._touched = set()
        for _ in range(self.rng.randint(1, 3)):
            self._one_action(builder, time)
        # deadline discipline: compliant orders ship before expiring
        for order, placed_at in sorted(self.open_orders.items()):
            if order in self.sloppy or order in self._touched:
                continue
            if time - placed_at >= self.ship_days - 1:
                self._ship(builder, order)
        return builder.build()

    def _one_action(self, builder, time: int) -> None:
        roll = self.rng.random()
        # sloppy orders are "forgotten": nobody ships or cancels them,
        # so they are guaranteed to miss the deadline
        actionable = sorted(
            o
            for o in self.open_orders
            if o not in self._touched and o not in self.sloppy
        )
        if roll < 0.45:
            order = self.next_order
            self.next_order += 1
            builder.insert("place", (order,))
            builder.insert("pending", (order,))
            self.open_orders[order] = time
            self._touched.add(order)
            if self.rng.random() < self.violation_rate:
                self.sloppy.add(order)
        elif roll < 0.75 and actionable:
            self._ship(builder, self.rng.choice(actionable))
        elif actionable:
            order = self.rng.choice(actionable)
            builder.insert("cancel", (order,))
            builder.delete("pending", (order,))
            del self.open_orders[order]
            self.cancelled.add(order)
            self._touched.add(order)

    def _ship(self, builder, order: int) -> None:
        if order not in self.open_orders:
            return
        self._touched.add(order)
        builder.insert("ship", (order,))
        builder.delete("pending", (order,))
        del self.open_orders[order]
        self.sloppy.discard(order)


def _stream_factory(ship_days: int, violation_rate: float, max_gap: int):
    def build(length: int, seed: int) -> UpdateStream:
        rng = random.Random(seed)
        simulator = _Simulator(ship_days, violation_rate, rng)
        items: List[Tuple[int, Transaction]] = []
        time = 0
        pending_clear: Dict[str, Set[Tuple[int, ...]]] = {}
        for _ in range(length):
            txn = simulator.transition(time)
            if any(pending_clear.values()):
                txn = Transaction({}, pending_clear).merged(txn)
            items.append((time, txn))
            pending_clear = {
                rel: set(txn.inserts.get(rel, ()))
                for rel in EVENT_RELATIONS
            }
            time += rng.randint(1, max_gap)
        return UpdateStream(items)

    return build


def orders_workload(
    ship_days: int = 30,
    violation_rate: float = 0.05,
    max_gap: int = 4,
) -> Workload:
    """Build the order-fulfilment workload.

    Args:
        ship_days: the shipping deadline in clock units.
        violation_rate: fraction of orders allowed to miss it.
        max_gap: maximum clock advance between transitions.
    """
    return Workload(
        name="orders",
        schema=SCHEMA,
        constraints=constraints(ship_days),
        stream_factory=_stream_factory(ship_days, violation_rate, max_gap),
        description=(
            f"ship deadline {ship_days}, violation rate {violation_rate}"
        ),
    )
