"""Library-loans workload.

The running example of the temporal-integrity literature: patrons
reserve, borrow, and return books, under three real-time constraints:

* ``return-window`` — a return must happen within ``loan_days`` clock
  units of the *checkout event*;
* ``reservation-first`` — a checkout must be preceded by a reservation
  by the same patron within ``reserve_days`` units;
* ``one-holder`` — a book has at most one borrower at a time
  (a non-temporal functional constraint, included to exercise the
  first-order machinery alongside the temporal ones).

Relation styles matter for metric constraints: ``reserved`` and
``borrowed`` are *state* relations (they persist until withdrawn),
while ``checkout`` and ``returned`` are *event* relations, present only
at the state where they occur — which is exactly what makes the
``ONCE[0,loan_days]`` window expire.

The simulator produces mostly-compliant activity and injects late
returns and unreserved checkouts at a configurable ``violation_rate``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from repro.core.checker import Constraint
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.temporal.stream import UpdateStream
from repro.workloads.base import Workload

#: Event relations cleared automatically on the following transition.
EVENT_RELATIONS = ("checkout", "returned")

SCHEMA = (
    DatabaseSchema.builder()
    .relation("reserved", [("patron", "str"), ("book", "int")])
    .relation("borrowed", [("patron", "str"), ("book", "int")])
    .relation("checkout", [("patron", "str"), ("book", "int")])
    .relation("returned", [("patron", "str"), ("book", "int")])
    .build()
)


def constraints(loan_days: int = 14, reserve_days: int = 7) -> List[Constraint]:
    """The library constraint set, parameterised by its windows."""
    return [
        Constraint(
            "return-window",
            f"returned(p, b) -> ONCE[0,{loan_days}] checkout(p, b)",
        ),
        Constraint(
            "reservation-first",
            f"checkout(p, b) -> ONCE[0,{reserve_days}] reserved(p, b)",
        ),
        Constraint(
            "one-holder",
            "borrowed(p, b) AND borrowed(q, b) -> p = q",
        ),
    ]


class _Simulator:
    """Stochastic patron activity respecting (mostly) the constraints."""

    def __init__(
        self,
        patrons: int,
        books: int,
        loan_days: int,
        violation_rate: float,
        rng: random.Random,
    ):
        self.patron_names = [f"p{i}" for i in range(patrons)]
        self.books = list(range(books))
        self.loan_days = loan_days
        self.violation_rate = violation_rate
        self.rng = rng
        # live state mirrored by the generated stream
        self.reserved: Dict[int, str] = {}        # book -> patron
        self.borrowed: Dict[int, Tuple[str, int]] = {}  # book -> (patron, since)
        self._touched: Set[int] = set()           # books acted on this step

    def _misbehave(self) -> bool:
        return self.rng.random() < self.violation_rate

    def transition(self, time: int) -> Transaction:
        builder = Transaction.builder()
        # a book acts at most once per transition, so a reservation is
        # visible for at least one state before its checkout, etc.
        self._touched: Set[int] = set()
        for _ in range(self.rng.randint(1, 3)):
            self._one_action(builder, time)
        return builder.build()

    def _one_action(self, builder, time: int) -> None:
        roll = self.rng.random()
        free_books = [
            b
            for b in self.books
            if b not in self.borrowed
            and b not in self.reserved
            and b not in self._touched
        ]
        reservable = sorted(
            (b, p) for b, p in self.reserved.items()
            if b not in self._touched
        )
        returnable = sorted(
            (b, ps) for b, ps in self.borrowed.items()
            if b not in self._touched
        )
        if roll < 0.35 and free_books:
            book = self.rng.choice(free_books)
            patron = self.rng.choice(self.patron_names)
            builder.insert("reserved", (patron, book))
            self.reserved[book] = patron
            self._touched.add(book)
        elif roll < 0.65 and (reservable or free_books):
            if self._misbehave() and free_books:
                # violation: checkout without reservation
                book = self.rng.choice(free_books)
                patron = self.rng.choice(self.patron_names)
                builder.insert("borrowed", (patron, book))
                builder.insert("checkout", (patron, book))
                self.borrowed[book] = (patron, time)
                self._touched.add(book)
            elif reservable:
                book, patron = self.rng.choice(reservable)
                builder.delete("reserved", (patron, book))
                builder.insert("borrowed", (patron, book))
                builder.insert("checkout", (patron, book))
                del self.reserved[book]
                self.borrowed[book] = (patron, time)
                self._touched.add(book)
        elif returnable:
            book, (patron, since) = self.rng.choice(returnable)
            self._touched.add(book)
            overdue = time - since > self.loan_days
            if overdue and not self._misbehave():
                # a compliant library writes the book off instead of
                # recording an out-of-window return
                del self.borrowed[book]
                builder.delete("borrowed", (patron, book))
                return
            builder.delete("borrowed", (patron, book))
            builder.insert("returned", (patron, book))
            del self.borrowed[book]


def _stream_factory(
    patrons: int,
    books: int,
    loan_days: int,
    violation_rate: float,
    max_gap: int,
):
    def build(length: int, seed: int) -> UpdateStream:
        rng = random.Random(seed)
        simulator = _Simulator(
            patrons, books, loan_days, violation_rate, rng
        )
        items = []
        time = 0
        pending_clear: Dict[str, Set[Tuple[str, int]]] = {}
        for _ in range(length):
            txn = simulator.transition(time)
            if any(pending_clear.values()):
                txn = Transaction({}, pending_clear).merged(txn)
            items.append((time, txn))
            pending_clear = {
                rel: set(txn.inserts.get(rel, ()))
                for rel in EVENT_RELATIONS
            }
            time += rng.randint(1, max_gap)
        return UpdateStream(items)

    return build


def library_workload(
    patrons: int = 6,
    books: int = 12,
    loan_days: int = 14,
    reserve_days: int = 7,
    violation_rate: float = 0.05,
    max_gap: int = 3,
) -> Workload:
    """Build the library workload.

    Args:
        patrons: number of distinct patrons.
        books: number of distinct books.
        loan_days: the return-window bound.
        reserve_days: the reservation-window bound.
        violation_rate: probability that an action misbehaves.
        max_gap: maximum clock advance between transitions.
    """
    return Workload(
        name="library",
        schema=SCHEMA,
        constraints=constraints(loan_days, reserve_days),
        stream_factory=_stream_factory(
            patrons, books, loan_days, violation_rate, max_gap
        ),
        description=(
            f"{patrons} patrons x {books} books, loan window "
            f"{loan_days}, violation rate {violation_rate}"
        ),
    )
