"""Parametric random workload for scaling experiments.

The domain workloads are realistic but fix their schema and constraint
shapes; the experiments that sweep *structural* parameters (state size,
window width, formula depth, number of constraints) need a workload
whose knobs are exactly those parameters.  This module provides it:

* a generic schema ``event/1 .. event/k`` + ``flag/1`` relations;
* constraint templates of tunable window and temporal nesting depth;
* streams from :class:`~repro.temporal.generators.StreamGenerator` with
  a tunable value universe (which controls state cardinality).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.builder import atom, implies, once, since, var
from repro.core.checker import Constraint
from repro.core.formulas import Formula
from repro.db.schema import DatabaseSchema
from repro.temporal.generators import StreamGenerator
from repro.temporal.stream import UpdateStream
from repro.workloads.base import Workload

SCHEMA = DatabaseSchema.from_dict(
    {
        "event": ["a"],
        "flag": ["a"],
        "link": ["a", "b"],
    }
)


def window_constraint(window: Optional[int], name: str = "window") -> Constraint:
    """``flag(x) -> ONCE[0,w] event(x)`` — the canonical metric rule."""
    suffix = f"[0,{window}]" if window is not None else ""
    return Constraint(name, f"flag(x) -> ONCE{suffix} event(x)")


def nested_constraint(depth: int, window: int = 4, name: str = "nested") -> Constraint:
    """A constraint whose ``ONCE`` nesting depth is exactly ``depth``.

    ``flag(x) -> ONCE[0,w] ONCE[0,w] ... event(x)`` — used by the
    formula-depth scaling experiment (E5).
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    body: Formula = atom("event", var("x"))
    for _ in range(depth):
        body = once(body, (0, window))
    return Constraint(name, implies(atom("flag", var("x")), body))


def since_constraint(window: int = 6, name: str = "deadline") -> Constraint:
    """``flag(x) -> event(x) SINCE[0,w] event(x)`` — survival-heavy."""
    ev = atom("event", var("x"))
    return Constraint(
        name, implies(atom("flag", var("x")), since(ev, ev, (0, window)))
    )


def join_constraint(name: str = "join") -> Constraint:
    """``link(x,y) -> ONCE[0,8] (event(x) AND event(y))`` — join-heavy."""
    return Constraint(
        name, "link(x, y) -> ONCE[0,8] (event(x) AND event(y))"
    )


def random_workload(
    universe_size: int = 8,
    window: Optional[int] = 8,
    constraint_count: int = 2,
    max_inserts: int = 3,
    max_deletes: int = 2,
    max_gap: int = 3,
) -> Workload:
    """Build the parametric random workload.

    Args:
        universe_size: number of distinct values (controls state size
            and auxiliary-valuation counts).
        window: metric window of the template constraints (None = ``*``).
        constraint_count: how many constraints (cycled from the four
            templates, renamed apart).
        max_inserts: per-relation inserts per transition.
        max_deletes: per-relation deletes per transition.
        max_gap: maximum clock advance between transitions.
    """
    templates = [
        lambda i: window_constraint(window, name=f"window-{i}"),
        lambda i: since_constraint(
            window if window is not None else 6, name=f"deadline-{i}"
        ),
        lambda i: join_constraint(name=f"join-{i}"),
        lambda i: nested_constraint(
            2, window if window is not None else 4, name=f"nested-{i}"
        ),
    ]
    chosen: List[Constraint] = [
        templates[i % len(templates)](i) for i in range(constraint_count)
    ]

    def build(length: int, seed: int) -> UpdateStream:
        generator = StreamGenerator(
            SCHEMA,
            universe=list(range(universe_size)),
            max_inserts=max_inserts,
            max_deletes=max_deletes,
            max_gap=max_gap,
            seed=seed,
        )
        return generator.stream(length)

    return Workload(
        name="random",
        schema=SCHEMA,
        constraints=chosen,
        stream_factory=build,
        description=(
            f"universe {universe_size}, window {window}, "
            f"{constraint_count} constraint(s)"
        ),
    )
