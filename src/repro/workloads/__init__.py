"""Benchmark and example workloads: schema + constraints + simulators."""

from repro.workloads.base import Workload
from repro.workloads.library import library_workload
from repro.workloads.orders import orders_workload
from repro.workloads.payments import payments_workload
from repro.workloads.random_workload import (
    join_constraint,
    nested_constraint,
    random_workload,
    since_constraint,
    window_constraint,
)
from repro.workloads.sensors import sensors_workload

__all__ = [
    "Workload",
    "join_constraint",
    "library_workload",
    "nested_constraint",
    "orders_workload",
    "payments_workload",
    "random_workload",
    "sensors_workload",
    "since_constraint",
    "window_constraint",
]
