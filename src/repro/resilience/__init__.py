"""Fault tolerance for long-running monitors.

The paper pitches the bounded-history checker as a *long-running*
process — precisely the process that must survive bad inputs, crashes,
and overload without losing its (deliberately small) auxiliary state.
This package supplies the three layers, all threaded through
:class:`~repro.core.monitor.Monitor`:

* **fault policies** (:mod:`repro.resilience.policy`) — ``fail_fast`` /
  ``skip`` / ``quarantine`` handling of schema, transaction, and clock
  faults (and raising violation handlers) at the step boundary, with a
  JSONL dead-letter :class:`QuarantineLog` and fault counters in the
  standard metrics registry::

      monitor = Monitor(schema, fault_policy="quarantine")
      monitor.run(dirty_stream)            # never raises on bad input
      monitor.resilience.summary()         # what was skipped and why

* **overload degradation** (:mod:`repro.resilience.degrade`) — a
  per-step deadline budget (:class:`StepBudget`) that sheds non-urgent
  constraint evaluations and marks steps ``degraded``;

* **chaos engineering** (:mod:`repro.resilience.chaos`) — seeded fault
  injection (:func:`inject_faults`), simulated kills
  (:func:`run_until_crash`), and delivery perturbation for the ingest
  frontier (:func:`plan_ingest_chaos`: disorder, duplication, skew),
  used by the chaos test suites to prove ``recover ∘ crash ≡
  uninterrupted run`` and ``ingest ∘ perturb ≡ clean run``.

Journaled auto-checkpointing and crash recovery live next to the
checkpoint format in :mod:`repro.core.persist`
(:class:`~repro.core.persist.RunJournal`,
:func:`~repro.core.persist.recover`); ``Monitor.enable_journal`` and
``Monitor.recover`` wire them up.  See ``docs/robustness.md`` for the
full walkthrough.
"""

from repro.core.persist import RecoveryResult, RunJournal, read_journal, recover
from repro.resilience.chaos import (
    FAULT_KINDS,
    ROTATION_FAILPOINTS,
    SHARD_FAULT_MODES,
    STORAGE_FAULT_KINDS,
    FaultyStream,
    IngestChaosPlan,
    InjectedFault,
    ShardChaosPlan,
    SimulatedCrash,
    StorageChaosPlan,
    assert_lint_clean,
    crash_after,
    disorder_arrivals,
    duplicate_arrivals,
    inject_faults,
    inject_storage_faults,
    plan_ingest_chaos,
    plan_shard_chaos,
    plan_storage_chaos,
    run_until_crash,
    split_sources,
)
from repro.resilience.degrade import StepBudget
from repro.resilience.policy import (
    FAULT_ERRORS,
    FaultPolicy,
    FaultRecord,
    QuarantineLog,
    ResilienceRuntime,
    classify_fault,
)

__all__ = [
    "FAULT_ERRORS",
    "FAULT_KINDS",
    "FaultPolicy",
    "FaultRecord",
    "FaultyStream",
    "IngestChaosPlan",
    "InjectedFault",
    "QuarantineLog",
    "ROTATION_FAILPOINTS",
    "RecoveryResult",
    "ResilienceRuntime",
    "RunJournal",
    "SHARD_FAULT_MODES",
    "STORAGE_FAULT_KINDS",
    "ShardChaosPlan",
    "SimulatedCrash",
    "StepBudget",
    "StorageChaosPlan",
    "assert_lint_clean",
    "classify_fault",
    "crash_after",
    "disorder_arrivals",
    "duplicate_arrivals",
    "inject_faults",
    "inject_storage_faults",
    "plan_ingest_chaos",
    "plan_shard_chaos",
    "plan_storage_chaos",
    "read_journal",
    "recover",
    "run_until_crash",
    "split_sources",
]
