"""Deterministic fault injection: the chaos harness.

Perturbs a clean update stream with *seeded* faults — duplicated
timestamps, backwards clocks, schema-violating transactions, outright
garbage — and simulates a process kill at step N.  Everything is
driven by one :class:`random.Random` seed, so a chaos run is exactly
reproducible: the test suite proves, for every engine, that the
``quarantine`` policy on a faulty stream yields the same verdicts as a
clean run, and that ``recover`` after a kill reproduces the
uninterrupted run bit-for-bit.

Faults are *injected between* the clean transitions (the originals are
never altered), so the clean stream is a subsequence of the faulty one
and the expected verdicts are exactly the clean run's.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.violations import RunReport
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction

#: Fault kinds the injector can produce.
FAULT_KINDS = ("duplicate", "skew", "corrupt", "garbage")


class InjectedFault:
    """Provenance of one injected fault (position in the faulty list)."""

    __slots__ = ("position", "kind", "time")

    def __init__(self, position: int, kind: str, time: object):
        self.position = position
        self.kind = kind
        self.time = time

    def __repr__(self) -> str:
        return f"InjectedFault({self.kind!r} at #{self.position}, t={self.time})"


class FaultyStream(list):
    """A perturbed stream: a plain list of pairs plus fault provenance.

    Deliberately *not* an :class:`~repro.temporal.stream.UpdateStream`
    — that class validates its input, which is exactly what a faulty
    stream must evade to reach the monitor's fault boundary.
    """

    def __init__(self, items: Iterable, faults: Sequence[InjectedFault]):
        super().__init__(items)
        #: injected faults, in stream order
        self.faults = list(faults)

    @property
    def fault_count(self) -> int:
        """Number of injected faulty records."""
        return len(self.faults)

    def kinds(self) -> List[str]:
        """The injected fault kinds, in stream order."""
        return [f.kind for f in self.faults]


def _corrupt_transaction(
    rng: random.Random, schema: Optional[DatabaseSchema]
) -> Transaction:
    """A transaction the schema must reject (unknown relation or arity)."""
    if schema is not None and rng.random() < 0.5:
        relation = rng.choice(sorted(r.name for r in schema))
        arity = schema.relation(relation).arity
        # one column too many: rejected by row validation, and
        # impossible to confuse with a legitimate update
        bad_row = tuple(["chaos"] * (arity + 1))
        return Transaction({relation: [bad_row]})
    return Transaction({"__chaos_unknown__": [("boom",)]})


def inject_faults(
    stream: Iterable[Tuple[int, Transaction]],
    seed: int = 0,
    rate: float = 0.2,
    kinds: Sequence[str] = FAULT_KINDS,
    schema: Optional[DatabaseSchema] = None,
) -> FaultyStream:
    """Weave seeded faulty records between the transitions of ``stream``.

    Args:
        stream: the clean timed transactions (any iterable of pairs).
        seed: PRNG seed; equal seeds produce identical perturbations.
        rate: per-gap probability of injecting one faulty record.
        kinds: fault kinds to draw from (see :data:`FAULT_KINDS`).
        schema: when given, ``corrupt`` faults also produce realistic
            arity violations, not only unknown relations.

    Returns:
        A :class:`FaultyStream` containing every clean transition in
        order, with faulty records interleaved.  Each faulty record
        fails engine validation *before* any state mutates, so a
        ``skip``/``quarantine`` monitor recovers the clean verdicts.
    """
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}"
            )
    rng = random.Random(seed)
    items: List = []
    faults: List[InjectedFault] = []
    previous: Optional[Tuple[int, Transaction]] = None
    for time, txn in stream:
        if previous is not None and rng.random() < rate:
            kind = rng.choice(list(kinds))
            prev_time, prev_txn = previous
            if kind == "duplicate":
                # re-delivery of the previous record: clock stalls
                bad = (prev_time, prev_txn)
            elif kind == "skew":
                # the clock jumps backwards (possibly below zero)
                bad = (prev_time - rng.randint(1, 5), prev_txn)
            elif kind == "corrupt":
                # schema-violating payload on an otherwise valid tick
                bad = (time, _corrupt_transaction(rng, schema))
            else:  # garbage: not a Transaction at all
                bad = (time, {"not": "a transaction"})
            faults.append(InjectedFault(len(items), kind, bad[0]))
            items.append(bad)
        items.append((time, txn))
        previous = (time, txn)
    return FaultyStream(items, faults)


class SimulatedCrash(RuntimeError):
    """Raised by :func:`crash_after` to imitate a process kill.

    Deliberately *not* a :class:`~repro.errors.ReproError`: a crash is
    not an input fault, and no fault policy may swallow it.
    """


def crash_after(stream: Iterable, steps: int):
    """Yield ``steps`` items of ``stream``, then raise a crash.

    Models ``kill -9`` between steps: everything up to the crash point
    was fully processed (and, with journaling on, durably recorded);
    nothing after it ever reaches the monitor.
    """
    for index, item in enumerate(stream):
        if index >= steps:
            raise SimulatedCrash(f"simulated crash before step {index}")
        yield item


def assert_lint_clean(workload, config=None) -> None:
    """Gate a chaos/bench run on its workload being lint-clean.

    A chaos experiment compares a faulty run against a clean run of
    the same constraints, so constraints carrying error- or
    warning-level diagnostics (see :mod:`repro.lint`) would make the
    comparison meaningless — the "clean" baseline itself would be
    suspect.  Info-level advisories are allowed.

    Raises:
        AssertionError: naming every error/warning diagnostic.
    """
    report = workload.lint(config)
    bad = report.errors + report.warnings
    if bad:
        shown = "; ".join(d.format().split("\n")[0] for d in bad)
        raise AssertionError(
            f"workload {workload.name!r} is not lint-clean: {shown}"
        )


def run_until_crash(monitor, stream: Iterable, crash_at: int) -> RunReport:
    """Drive ``monitor`` until a simulated kill at step ``crash_at``.

    Returns the report of the steps completed before the crash.  The
    monitor object is left exactly as a killed process would leave its
    on-disk artifacts: journal and checkpoint written through the last
    completed step, in-memory state abandoned.
    """
    report = RunReport()
    try:
        for time, txn in crash_after(stream, crash_at):
            report.add(monitor.step(time, txn))
    except SimulatedCrash:
        pass
    return report
