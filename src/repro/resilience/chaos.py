"""Deterministic fault injection: the chaos harness.

Perturbs a clean update stream with *seeded* faults — duplicated
timestamps, backwards clocks, schema-violating transactions, outright
garbage — and simulates a process kill at step N.  Everything is
driven by one :class:`random.Random` seed, so a chaos run is exactly
reproducible: the test suite proves, for every engine, that the
``quarantine`` policy on a faulty stream yields the same verdicts as a
clean run, and that ``recover`` after a kill reproduces the
uninterrupted run bit-for-bit.

Faults are *injected between* the clean transitions (the originals are
never altered), so the clean stream is a subsequence of the faulty one
and the expected verdicts are exactly the clean run's.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.violations import RunReport
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction

#: Fault kinds the injector can produce.
FAULT_KINDS = ("duplicate", "skew", "corrupt", "garbage")


class InjectedFault:
    """Provenance of one injected fault (position in the faulty list)."""

    __slots__ = ("position", "kind", "time")

    def __init__(self, position: int, kind: str, time: object):
        self.position = position
        self.kind = kind
        self.time = time

    def __repr__(self) -> str:
        return f"InjectedFault({self.kind!r} at #{self.position}, t={self.time})"


class FaultyStream(list):
    """A perturbed stream: a plain list of pairs plus fault provenance.

    Deliberately *not* an :class:`~repro.temporal.stream.UpdateStream`
    — that class validates its input, which is exactly what a faulty
    stream must evade to reach the monitor's fault boundary.
    """

    def __init__(self, items: Iterable, faults: Sequence[InjectedFault]):
        super().__init__(items)
        #: injected faults, in stream order
        self.faults = list(faults)

    @property
    def fault_count(self) -> int:
        """Number of injected faulty records."""
        return len(self.faults)

    def kinds(self) -> List[str]:
        """The injected fault kinds, in stream order."""
        return [f.kind for f in self.faults]


def _corrupt_transaction(
    rng: random.Random, schema: Optional[DatabaseSchema]
) -> Transaction:
    """A transaction the schema must reject (unknown relation or arity)."""
    if schema is not None and rng.random() < 0.5:
        relation = rng.choice(sorted(r.name for r in schema))
        arity = schema.relation(relation).arity
        # one column too many: rejected by row validation, and
        # impossible to confuse with a legitimate update
        bad_row = tuple(["chaos"] * (arity + 1))
        return Transaction({relation: [bad_row]})
    return Transaction({"__chaos_unknown__": [("boom",)]})


def inject_faults(
    stream: Iterable[Tuple[int, Transaction]],
    seed: int = 0,
    rate: float = 0.2,
    kinds: Sequence[str] = FAULT_KINDS,
    schema: Optional[DatabaseSchema] = None,
) -> FaultyStream:
    """Weave seeded faulty records between the transitions of ``stream``.

    Args:
        stream: the clean timed transactions (any iterable of pairs).
        seed: PRNG seed; equal seeds produce identical perturbations.
        rate: per-gap probability of injecting one faulty record.
        kinds: fault kinds to draw from (see :data:`FAULT_KINDS`).
        schema: when given, ``corrupt`` faults also produce realistic
            arity violations, not only unknown relations.

    Returns:
        A :class:`FaultyStream` containing every clean transition in
        order, with faulty records interleaved.  Each faulty record
        fails engine validation *before* any state mutates, so a
        ``skip``/``quarantine`` monitor recovers the clean verdicts.
    """
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}"
            )
    rng = random.Random(seed)
    items: List = []
    faults: List[InjectedFault] = []
    previous: Optional[Tuple[int, Transaction]] = None
    for time, txn in stream:
        if previous is not None and rng.random() < rate:
            kind = rng.choice(list(kinds))
            prev_time, prev_txn = previous
            if kind == "duplicate":
                # re-delivery of the previous record: clock stalls
                bad = (prev_time, prev_txn)
            elif kind == "skew":
                # the clock jumps backwards (possibly below zero)
                bad = (prev_time - rng.randint(1, 5), prev_txn)
            elif kind == "corrupt":
                # schema-violating payload on an otherwise valid tick
                bad = (time, _corrupt_transaction(rng, schema))
            else:  # garbage: not a Transaction at all
                bad = (time, {"not": "a transaction"})
            faults.append(InjectedFault(len(items), kind, bad[0]))
            items.append(bad)
        items.append((time, txn))
        previous = (time, txn)
    return FaultyStream(items, faults)


# ----------------------------------------------------------------------
# ingestion chaos: disorder / duplication / skew / unavailability
# ----------------------------------------------------------------------
#
# Where `inject_faults` weaves *invalid* records (schema garbage,
# backwards clocks) between clean transitions for the step-boundary
# fault policy to absorb, the injectors below perturb *delivery*:
# the records stay valid, but they arrive out of order, duplicated,
# on skewed clocks, or from sources that flake — exactly what the
# ingestion frontier (`repro.ingest`) must absorb.  Everything is
# seeded, so a perturbed run is exactly reproducible.

#: One perturbed delivery: (raw timestamp, transaction, source name).
ArrivalTriple = Tuple[int, Transaction, str]


def split_sources(
    stream: Iterable[Tuple[int, Transaction]],
    seed: int = 0,
    sources: int = 2,
    max_skew: int = 0,
) -> Tuple[List[ArrivalTriple], dict]:
    """Scatter a clean stream across seeded sources with clock skew.

    Each transition is assigned to one of ``sources`` named ``s0..``,
    and every source gets a constant clock offset drawn from
    ``[0, max_skew]`` — its *raw* timestamps run that far fast.
    Returns ``(triples, skews)``; feeding the triples through a
    reorderer configured with exactly ``skews`` reconstructs the
    original timestamps.
    """
    if sources < 1:
        raise ValueError(f"need at least one source, got {sources!r}")
    rng = random.Random(seed)
    names = [f"s{i}" for i in range(sources)]
    skews = {
        name: (rng.randint(0, max_skew) if max_skew > 0 else 0)
        for name in names
    }
    triples = []
    for time, txn in stream:
        name = rng.choice(names)
        triples.append((time + skews[name], txn, name))
    return triples, skews


def disorder_arrivals(
    triples: Sequence[ArrivalTriple],
    seed: int = 0,
    watermark: int = 8,
    skews: Optional[dict] = None,
) -> List[ArrivalTriple]:
    """Shuffle delivery order with displacement bounded by ``watermark``.

    Each event is assigned a seeded delivery delay in
    ``[0, watermark)`` on top of its (skew-normalised) timestamp and
    the list is re-sorted by delivery time.  The bound guarantees that
    when an event arrives, every earlier-arrived event is less than
    ``watermark`` clock units younger — so a reorderer with that
    watermark recovers the clean order exactly, with zero late events.
    """
    rng = random.Random(seed)
    offsets = skews or {}
    keyed = []
    for index, (time, txn, name) in enumerate(triples):
        adjusted = time - offsets.get(name, 0)
        delay = rng.random() * watermark if watermark > 0 else 0.0
        keyed.append((adjusted + delay, adjusted, index, (time, txn, name)))
    keyed.sort(key=lambda item: item[:3])
    return [item[3] for item in keyed]


def duplicate_arrivals(
    triples: Sequence[ArrivalTriple],
    seed: int = 0,
    rate: float = 0.1,
    window: int = 8,
    exclude: Sequence[int] = (),
) -> Tuple[List[ArrivalTriple], int]:
    """Replay a seeded selection of arrivals shortly after the original.

    Each chosen event is delivered a second time, byte-identical, up to
    ``window`` positions later — the at-least-once delivery of real
    feeds.  ``exclude`` skips positions (used to keep deliberately
    late events single).  Returns ``(arrivals, replay_count)``.
    """
    rng = random.Random(seed)
    excluded = set(exclude)
    out: List[ArrivalTriple] = list(triples)
    inserted = 0
    # walk original positions back to front so earlier insertions do
    # not shift the positions still to be processed
    for position in range(len(triples) - 1, -1, -1):
        if position in excluded or rng.random() >= rate:
            continue
        slot = min(position + 1 + rng.randint(0, window), len(out))
        out.insert(slot, triples[position])
        inserted += 1
    return out, inserted


class IngestChaosPlan:
    """A seeded delivery perturbation plus its ground truth.

    Produced by :func:`plan_ingest_chaos`.  ``arrivals`` is the
    perturbed delivery sequence; ``skews`` the per-source clock
    offsets a reorderer must be told; ``expected_late`` the normalised
    timestamps of the deliberately-too-late events (every other event
    survives within the watermark bound); ``expected_duplicates`` the
    number of injected replays.
    """

    __slots__ = (
        "arrivals", "skews", "watermark", "expected_late",
        "expected_duplicates", "seed",
    )

    def __init__(
        self, arrivals, skews, watermark, expected_late,
        expected_duplicates, seed,
    ):
        self.arrivals: List[ArrivalTriple] = arrivals
        self.skews: dict = skews
        self.watermark: int = watermark
        self.expected_late: List[int] = expected_late
        self.expected_duplicates: int = expected_duplicates
        self.seed: int = seed

    def source(self, name: str = "chaos"):
        """The perturbed deliveries as one multiplexed ingest source."""
        from repro.ingest.sources import IterableSource

        return IterableSource(list(self.arrivals), name=name,
                              multiplexed=True)

    def to_dict(self) -> dict:
        """JSON-able manifest (written next to generated arrivals)."""
        return {
            "seed": self.seed,
            "watermark": self.watermark,
            "skews": dict(sorted(self.skews.items())),
            "arrivals": len(self.arrivals),
            "expected_late": list(self.expected_late),
            "expected_duplicates": self.expected_duplicates,
        }

    def __repr__(self) -> str:
        return (
            f"IngestChaosPlan({len(self.arrivals)} arrival(s), "
            f"watermark={self.watermark}, "
            f"{len(self.expected_late)} late, "
            f"{self.expected_duplicates} replay(s))"
        )


def plan_ingest_chaos(
    stream: Iterable[Tuple[int, Transaction]],
    seed: int = 0,
    watermark: int = 8,
    duplicate_rate: float = 0.0,
    late_events: int = 0,
    sources: int = 1,
    max_skew: int = 0,
) -> IngestChaosPlan:
    """Compose the delivery injectors into one seeded, accounted plan.

    The clean transitions are scattered over ``sources`` skewed
    sources, their delivery order jittered within the ``watermark``
    bound, ``late_events`` of them deliberately held back past the
    bound (delivered after everything else, so their slot has already
    been emitted), and a ``duplicate_rate`` fraction replayed.  The
    returned plan carries the exact expected outcome: a reorderer with
    the plan's watermark and skews emits the clean stream minus the
    ``expected_late`` timestamps, counting ``expected_duplicates``
    replays — nothing else may be lost.
    """
    items = list(stream)
    if late_events and watermark < 1:
        raise ValueError(
            "late-event injection needs watermark >= 1 "
            "(with watermark 0 nothing is buffered, so nothing can "
            "provably be overtaken)"
        )
    triples, skews = split_sources(
        items, seed=seed, sources=sources, max_skew=max_skew
    )
    rng = random.Random(seed + 1)

    # pick events to hold back past the watermark: a victim must be
    # strictly older than the final frontier F (min over sources of
    # their newest surviving event, minus the watermark), and some
    # surviving event in (victim, F] must exist to have been emitted
    # by the time the victim finally shows up
    victims: List[int] = []
    if late_events and len(items) > 1:
        order = list(range(len(items)))
        rng.shuffle(order)
        for candidate in order:
            if len(victims) >= late_events:
                break
            trial = set(victims) | {candidate}
            per_source: dict = {}
            for idx, (raw, _txn, name) in enumerate(triples):
                if idx in trial:
                    continue
                adjusted = raw - skews[name]
                if adjusted > per_source.get(name, -1):
                    per_source[name] = adjusted
            if not per_source:
                continue
            frontier = min(per_source.values()) - watermark
            survivors = sorted(
                triples[i][0] - skews[triples[i][2]]
                for i in range(len(triples)) if i not in trial
            )
            def overtaken(index: int) -> bool:
                t = triples[index][0] - skews[triples[index][2]]
                return t < frontier and any(
                    t < s <= frontier for s in survivors
                )
            if all(overtaken(v) for v in trial):
                victims = sorted(trial)

    on_time = [t for i, t in enumerate(triples) if i not in victims]
    held_back = [triples[i] for i in victims]
    arrivals = disorder_arrivals(
        on_time, seed=seed + 2, watermark=watermark, skews=skews
    )
    arrivals, replays = duplicate_arrivals(
        arrivals, seed=seed + 3, rate=duplicate_rate,
        window=max(1, watermark),
    )
    arrivals.extend(held_back)
    expected_late = sorted(
        raw - skews[name] for raw, _txn, name in held_back
    )
    return IngestChaosPlan(
        arrivals, skews, watermark, expected_late, replays, seed
    )


class SimulatedCrash(RuntimeError):
    """Raised by :func:`crash_after` to imitate a process kill.

    Deliberately *not* a :class:`~repro.errors.ReproError`: a crash is
    not an input fault, and no fault policy may swallow it.
    """


def crash_after(stream: Iterable, steps: int):
    """Yield ``steps`` items of ``stream``, then raise a crash.

    Models ``kill -9`` between steps: everything up to the crash point
    was fully processed (and, with journaling on, durably recorded);
    nothing after it ever reaches the monitor.
    """
    for index, item in enumerate(stream):
        if index >= steps:
            raise SimulatedCrash(f"simulated crash before step {index}")
        yield item


def assert_lint_clean(workload, config=None) -> None:
    """Gate a chaos/bench run on its workload being lint-clean.

    A chaos experiment compares a faulty run against a clean run of
    the same constraints, so constraints carrying error- or
    warning-level diagnostics (see :mod:`repro.lint`) would make the
    comparison meaningless — the "clean" baseline itself would be
    suspect.  Info-level advisories are allowed.

    Raises:
        AssertionError: naming every error/warning diagnostic.
    """
    report = workload.lint(config)
    bad = report.errors + report.warnings
    if bad:
        shown = "; ".join(d.format().split("\n")[0] for d in bad)
        raise AssertionError(
            f"workload {workload.name!r} is not lint-clean: {shown}"
        )


def run_until_crash(monitor, stream: Iterable, crash_at: int) -> RunReport:
    """Drive ``monitor`` until a simulated kill at step ``crash_at``.

    Returns the report of the steps completed before the crash.  The
    monitor object is left exactly as a killed process would leave its
    on-disk artifacts: journal and checkpoint written through the last
    completed step, in-memory state abandoned.
    """
    report = RunReport()
    try:
        for time, txn in crash_after(stream, crash_at):
            report.add(monitor.step(time, txn))
    except SimulatedCrash:
        pass
    if getattr(monitor, "journal", None) is not None:
        # the simulated owner is dead: drop its in-process writer-lock
        # claim (the lock *file* stays behind, as after a real kill) so
        # recovery in this process can steal it like a respawn would
        monitor.journal.abandon()
    return report


# ----------------------------------------------------------------------
# shard chaos: in-bound worker faults
# ----------------------------------------------------------------------

#: Worker fault modes the shard injectors produce: ``before`` kills a
#: worker before it applies a step (nothing journaled — the supervisor
#: redelivers), ``torn`` kills it after apply+journal but before the
#: acknowledgement (the classic torn handoff — journal replay recovers
#: the verdict), ``stall`` freezes it for N pump rounds (heartbeat
#: misses without death).
SHARD_FAULT_MODES = ("before", "torn", "stall")


class ShardChaosPlan:
    """A seeded schedule of worker faults for a sharded run.

    Each event is a plain dict — ``{"shard": s, "step": n, "mode": m}``
    (+ ``"duration"`` for stalls), with ``step`` counting global
    submissions — consumed at most once by the targeted worker.  The
    plan doubles as its own manifest (:meth:`to_dict`), so a chaos run
    is exactly reproducible from its artifact.
    """

    def __init__(self, shards: int, events: Sequence[dict], seed=None):
        self.shards = shards
        self.events = [dict(e) for e in events]
        self.seed = seed

    def for_shard(self, shard: int) -> List[dict]:
        """Fresh copies of this shard's events, in step order."""
        return sorted(
            (dict(e) for e in self.events if e.get("shard") == shard),
            key=lambda e: e.get("step", 0),
        )

    @property
    def kills(self) -> List[dict]:
        """The crash events (kill-before-step and torn-handoff)."""
        return [e for e in self.events if e.get("mode") != "stall"]

    @property
    def stalls(self) -> List[dict]:
        """The stall events (worker stops heartbeating for a while)."""
        return [e for e in self.events if e.get("mode") == "stall"]

    def to_dict(self) -> dict:
        """JSON-able manifest of the injected worker faults."""
        return {
            "seed": self.seed,
            "shards": self.shards,
            "events": [dict(e) for e in self.events],
        }

    def __repr__(self) -> str:
        return (
            f"ShardChaosPlan({len(self.kills)} kill(s), "
            f"{len(self.stalls)} stall(s) over {self.shards} shard(s))"
        )


def plan_shard_chaos(
    shards: int,
    steps: int,
    kills: int = 2,
    stalls: int = 0,
    seed: int = 0,
    modes: Sequence[str] = ("before", "torn"),
    max_stall: int = 3,
) -> ShardChaosPlan:
    """Draw a seeded shard-fault schedule.

    Picks ``kills + stalls`` distinct ``(shard, step)`` injection
    points uniformly over the run, assigns each kill a mode from
    ``modes`` and each stall a duration in ``[1, max_stall]``.  Same
    seed, same plan — the keystone equivalence suite sweeps seeds and
    asserts the chaotic sharded run's verdicts equal the single-process
    run's bit-for-bit.
    """
    for mode in modes:
        if mode not in SHARD_FAULT_MODES:
            raise ValueError(
                f"unknown shard fault mode {mode!r}; "
                f"choose from {SHARD_FAULT_MODES}"
            )
    wanted = kills + stalls
    candidates = [(s, t) for s in range(shards) for t in range(steps)]
    if wanted > len(candidates):
        raise ValueError(
            f"cannot place {wanted} fault(s) on {shards} shard(s) x "
            f"{steps} step(s)"
        )
    rng = random.Random(seed)
    points = rng.sample(candidates, wanted)
    events: List[dict] = []
    for shard, step in points[:kills]:
        events.append({
            "shard": shard, "step": step, "mode": rng.choice(list(modes)),
        })
    for shard, step in points[kills:]:
        events.append({
            "shard": shard, "step": step, "mode": "stall",
            "duration": rng.randint(1, max_stall),
        })
    events.sort(key=lambda e: (e["step"], e["shard"]))
    return ShardChaosPlan(shards, events, seed=seed)


# ----------------------------------------------------------------------
# storage fault injection (durable store chaos)
# ----------------------------------------------------------------------

#: Storage fault kinds.  ``torn_write`` truncates a durable file
#: mid-frame (a crash tore the last write); ``bit_flip`` flips one
#: seeded bit anywhere in a file (media corruption); ``partial_fsync``
#: drops the un-synced tail — whole trailing records plus a partial
#: frame — as a host crash with a lying disk would; ``crash_rotate``
#: kills the process inside the checkpoint/rotation protocol via a
#: named storage failpoint (no byte surgery: the crash window itself
#: is the fault).
STORAGE_FAULT_KINDS = (
    "torn_write", "bit_flip", "partial_fsync", "crash_rotate",
)

#: Failpoints a ``crash_rotate`` event can land on — the windows of
#: the checkpoint commit protocol (see :data:`repro.store.FAILPOINTS`).
ROTATION_FAILPOINTS = (
    "checkpoint_pre_rename",
    "checkpoint_post_rename",
    "rotate_pre_unlink",
    "rotate_post_unlink",
)

#: Files a byte-surgery event can target.
STORAGE_TARGETS = ("segment", "checkpoint")


class StorageChaosPlan:
    """A seeded schedule of storage faults for one store directory.

    Each event is a plain dict: ``{"kind": k, "target": t}`` for byte
    surgery (applied post-crash by :func:`inject_storage_faults`), or
    ``{"kind": "crash_rotate", "failpoint": name}`` consumed at run
    time by constructing the journal with that failpoint armed.  The
    plan doubles as its own manifest (:meth:`to_dict`), so a chaos run
    is exactly reproducible from its artifact.
    """

    def __init__(self, events: Sequence[dict], seed=None):
        self.events = [dict(e) for e in events]
        self.seed = seed

    @property
    def surgeries(self) -> List[dict]:
        """The byte-surgery events (everything but ``crash_rotate``)."""
        return [
            e for e in self.events if e.get("kind") != "crash_rotate"
        ]

    @property
    def rotation_crashes(self) -> List[dict]:
        """The ``crash_rotate`` events (run-time failpoint kills)."""
        return [
            e for e in self.events if e.get("kind") == "crash_rotate"
        ]

    def to_dict(self) -> dict:
        """JSON-able manifest of the planned storage faults."""
        return {"seed": self.seed, "events": [dict(e) for e in self.events]}

    def __repr__(self) -> str:
        return (
            f"StorageChaosPlan({len(self.surgeries)} surgery(ies), "
            f"{len(self.rotation_crashes)} rotation crash(es), "
            f"seed={self.seed})"
        )


def plan_storage_chaos(
    faults: int = 1,
    seed: int = 0,
    kinds: Sequence[str] = ("torn_write", "bit_flip", "partial_fsync"),
    targets: Sequence[str] = STORAGE_TARGETS,
) -> StorageChaosPlan:
    """Draw a seeded storage-fault schedule.

    Each fault gets a kind from ``kinds`` and (for byte surgery) a
    target file category from ``targets``; ``crash_rotate`` faults get
    a failpoint from :data:`ROTATION_FAILPOINTS` instead.  Same seed,
    same plan — the durability suite sweeps seeds and asserts that
    every schedule is detected by ``repro scrub``, repaired, and
    recovered to verdicts bit-for-bit equal to an uninterrupted run.
    """
    for kind in kinds:
        if kind not in STORAGE_FAULT_KINDS:
            raise ValueError(
                f"unknown storage fault kind {kind!r}; "
                f"choose from {STORAGE_FAULT_KINDS}"
            )
    for target in targets:
        if target not in STORAGE_TARGETS:
            raise ValueError(
                f"unknown storage target {target!r}; "
                f"choose from {STORAGE_TARGETS}"
            )
    rng = random.Random(seed)
    events: List[dict] = []
    for _ in range(faults):
        kind = rng.choice(list(kinds))
        if kind == "crash_rotate":
            events.append({
                "kind": kind,
                "failpoint": rng.choice(ROTATION_FAILPOINTS),
            })
        else:
            events.append({"kind": kind, "target": rng.choice(list(targets))})
    return StorageChaosPlan(events, seed=seed)


def _frame_boundaries(data: bytes) -> List[int]:
    """Byte offsets of frame starts in a segment file, plus the end."""
    boundaries = [0]
    for line in data.splitlines(keepends=True):
        boundaries.append(boundaries[-1] + len(line))
    return boundaries


def inject_storage_faults(directory, plan: StorageChaosPlan) -> List[dict]:
    """Apply a plan's byte surgeries to a (crashed) store directory.

    Must be called on a *quiescent* directory — the moment being
    simulated is after the process died and before recovery runs.
    Returns a manifest of what was actually done (kind, file, offset),
    for test assertions and artifacts.  ``crash_rotate`` events are
    skipped here: they are consumed at run time by arming the journal
    with their failpoint.
    """
    from pathlib import Path

    from repro.store.segment import CHECKPOINT_NAME, list_segments

    directory = Path(directory)
    rng = random.Random(plan.seed)
    applied: List[dict] = []
    for event in plan.surgeries:
        kind = event["kind"]
        if event.get("target") == "checkpoint":
            target = directory / CHECKPOINT_NAME
            if not target.is_file():
                continue
        else:
            segments = [
                p for p in list_segments(directory)
                if p.stat().st_size > 0
            ]
            if not segments:
                continue
            target = segments[-1]  # the active (newest) segment
        data = target.read_bytes()
        if not data:
            continue
        boundaries = _frame_boundaries(data)
        if kind == "bit_flip":
            offset = rng.randrange(len(data))
            flipped = bytearray(data)
            flipped[offset] ^= 1 << rng.randrange(8)
            target.write_bytes(bytes(flipped))
        elif kind == "torn_write":
            # cut strictly inside the final frame: the classic torn
            # last write of a dying process
            start, end = boundaries[-2], boundaries[-1]
            if end - start < 2:
                continue
            offset = rng.randrange(start + 1, end)
            with open(target, "r+b") as fh:
                fh.truncate(offset)
        else:  # partial_fsync
            # the page cache died holding several records: cut just
            # inside an *earlier* frame, losing it and everything after
            frame = rng.randrange(max(len(boundaries) - 2, 1))
            start, end = boundaries[frame], boundaries[frame + 1]
            if end - start < 2:
                continue
            offset = start + 1 + rng.randrange(
                max((end - start) // 2, 1)
            )
            with open(target, "r+b") as fh:
                fh.truncate(offset)
        applied.append({
            "kind": kind, "file": target.name, "offset": offset,
        })
    return applied
