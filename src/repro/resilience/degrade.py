"""Overload degradation: per-step deadline budgets with shedding.

A real-time monitor that falls behind must degrade *predictably*: the
paper's setting gives every state transition a deadline, so when a step
threatens to blow its budget the monitor sheds work it can recover
from — it defers the evaluation of non-urgent constraints (their
auxiliary state still advances, so no later verdict is corrupted) and
marks the step ``degraded`` in its :class:`~repro.core.violations.StepReport`.

:class:`StepBudget` is the tiny object the engines consult: armed at
the start of each step, queried once per constraint.  Engines with a
per-constraint evaluation loop (``incremental``, ``naive``,
``naive-memo``, ``adom``) support shedding; the ``active`` engine
evaluates inside rule firings and does not.

Auxiliary-state updates are never shed: they fold each state into the
bounded history encoding exactly once, so skipping one would corrupt
every later verdict.  Shedding only ever skips the final
witness-evaluation of a constraint at one state — the verdicts a
degraded step does report remain sound.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Iterable, List

from repro.errors import MonitorError


class StepBudget:
    """A per-step evaluation deadline with constraint shedding.

    Args:
        deadline: seconds each step may spend before shedding begins.
        urgent: constraint names that are never deferred (they are
            evaluated even on a blown budget — deadlines degrade the
            monitor, they must not silence its critical constraints).
        clock: monotonic time source (tests inject a fake for
            deterministic shedding).
    """

    __slots__ = ("deadline", "urgent", "deferred", "telemetry", "_clock",
                 "_started")

    def __init__(
        self,
        deadline: float,
        urgent: Iterable[str] = (),
        clock: Callable[[], float] = perf_counter,
    ):
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise MonitorError(
                f"step deadline must be a positive number of seconds, "
                f"got {deadline!r}"
            )
        self.deadline = float(deadline)
        self.urgent = frozenset(urgent)
        self._clock = clock
        self._started: float = 0.0
        #: constraints shed in the step being checked (engine-owned)
        self.deferred: List[str] = []
        #: optional :class:`~repro.obs.telemetry.EventTimeTelemetry`
        #: notified of every shed decision (attached by the Monitor)
        self.telemetry = None

    def arm(self) -> None:
        """Start the clock for a new step (engines call this per step)."""
        self._started = self._clock()
        self.deferred = []

    @property
    def exhausted(self) -> bool:
        """Whether the current step has spent its whole budget."""
        return (self._clock() - self._started) > self.deadline

    def should_defer(self, constraint: str) -> bool:
        """Decide (and record) whether to shed one evaluation."""
        if constraint in self.urgent:
            return False
        if self.exhausted:
            self.deferred.append(constraint)
            if self.telemetry is not None:
                self.telemetry.deferred(constraint)
            return True
        return False

    def __repr__(self) -> str:
        urgent = f", {len(self.urgent)} urgent" if self.urgent else ""
        return f"StepBudget({self.deadline}s{urgent})"
