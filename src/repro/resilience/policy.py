"""Fault policies and the quarantine dead-letter log.

A long-running monitor must not die on one bad input.  A
:class:`FaultPolicy` decides what happens when a step fault occurs —
a malformed or schema-violating transaction, a clock that moves
backwards, a violation handler that raises:

* ``fail_fast`` — re-raise (the pre-resilience behaviour, and still
  the default when no policy is configured);
* ``skip`` — count the fault, drop the input, keep monitoring;
* ``quarantine`` — like ``skip``, but additionally write a dead-letter
  record of the offending input to a :class:`QuarantineLog` so it can
  be inspected, repaired, and replayed later.

Crucially, every checking engine validates its input *before* mutating
any state (timestamps first, then schema), so a faulted step leaves the
checker exactly where it was — skipping is always safe.

:class:`ResilienceRuntime` is the per-monitor glue: it classifies
faults, applies the policy, keeps local tallies, and mirrors them into
the monitor's :class:`~repro.obs.metrics.MetricsRegistry` when one is
attached.
"""

from __future__ import annotations

import json
from enum import Enum
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.violations import StepReport
from repro.db.transactions import Transaction
from repro.errors import (
    HistoryError,
    MonitorError,
    SchemaError,
    TimeError,
    TransactionError,
)

#: Exception types a fault policy intercepts at the step boundary.
#: Everything else (programming errors, ``MonitorError`` misuse) still
#: propagates — a policy shields the monitor from bad *inputs*, not
#: from bugs.
FAULT_ERRORS = (SchemaError, TransactionError, TimeError, HistoryError)

# Metric family names (registered lazily, only when a fault occurs, so
# a fault-free run adds no series).
FAULTS_TOTAL = "repro_faults_total"
QUARANTINED_TOTAL = "repro_quarantined_total"
HANDLER_FAILURES_TOTAL = "repro_handler_failures_total"
DEGRADED_STEPS_TOTAL = "repro_degraded_steps_total"
DEFERRED_EVALS_TOTAL = "repro_deferred_evaluations_total"
JOURNAL_RECORDS_TOTAL = "repro_journal_records_total"
CHECKPOINTS_TOTAL = "repro_checkpoints_total"


class FaultPolicy(Enum):
    """What the monitor does when a step fault occurs."""

    FAIL_FAST = "fail_fast"
    SKIP = "skip"
    QUARANTINE = "quarantine"

    @classmethod
    def coerce(cls, value: Union[str, "FaultPolicy"]) -> "FaultPolicy":
        """Accept a policy instance or its string name (``-``/``_``)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).replace("-", "_"))
        except ValueError:
            options = ", ".join(p.value for p in cls)
            raise MonitorError(
                f"unknown fault policy {value!r}; choose from {options}"
            ) from None


def classify_fault(exc: BaseException) -> str:
    """Map a step exception to a stable fault-kind label."""
    if isinstance(exc, TimeError):
        return "clock"
    if isinstance(exc, SchemaError):
        return "schema"
    if isinstance(exc, TransactionError):
        return "transaction"
    if isinstance(exc, HistoryError):
        return "history"
    return "handler" if exc.__class__.__name__ == "HandlerError" else "other"


class FaultRecord:
    """One dead-letter entry: what failed, when, and why."""

    __slots__ = ("kind", "time", "error", "payload", "policy")

    def __init__(
        self,
        kind: str,
        time: Optional[object],
        error: str,
        payload: Optional[object] = None,
        policy: str = FaultPolicy.QUARANTINE.value,
    ):
        self.kind = kind
        self.time = time
        self.error = error
        self.payload = payload
        self.policy = policy

    def to_dict(self) -> dict:
        """JSON-able form (the quarantine log's line format)."""
        if isinstance(self.payload, Transaction):
            payload = self.payload.to_dict()
        elif self.payload is None or isinstance(
            self.payload, (str, int, float, bool, list, dict)
        ):
            payload = self.payload
        else:
            payload = repr(self.payload)
        return {
            "kind": self.kind,
            "time": self.time if isinstance(self.time, int) else repr(self.time),
            "error": self.error,
            "payload": payload,
            "policy": self.policy,
        }

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FaultRecord) and self.to_dict() == other.to_dict()
        )

    def __repr__(self) -> str:
        return f"FaultRecord({self.kind!r} at t={self.time}: {self.error})"


class QuarantineLog:
    """Append-only dead-letter store for quarantined inputs.

    Records are always retained in memory (:attr:`records`); when a
    ``path`` is given each record is additionally appended to a JSONL
    file and flushed immediately, so a crash loses at most the record
    being written.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.path = Path(path) if path is not None else None
        self.records: List[FaultRecord] = []
        self._fh = None

    def record(self, fault: FaultRecord) -> None:
        """Append one dead-letter record (and flush it to disk)."""
        self.records.append(fault)
        if self.path is not None:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a")
            self._fh.write(json.dumps(fault.to_dict(), sort_keys=True) + "\n")
            self._fh.flush()

    def close(self) -> None:
        """Close the backing file (further records reopen it)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @staticmethod
    def read(path: Union[str, Path]) -> List[dict]:
        """Read a quarantine JSONL file back as plain dicts."""
        out: List[dict] = []
        for line in Path(path).read_text().splitlines():
            if line.strip():
                out.append(json.loads(line))
        return out

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __repr__(self) -> str:
        where = f" -> {self.path}" if self.path is not None else ""
        return f"QuarantineLog({len(self.records)} record(s){where})"


class ResilienceRuntime:
    """Per-monitor fault-handling state.

    Holds the active policy and quarantine log, keeps local fault
    tallies (usable without any metrics registry), and mirrors every
    count into the attached :class:`~repro.obs.metrics.MetricsRegistry`
    so the existing exporters pick the fault series up unchanged.
    """

    def __init__(
        self,
        policy: Union[str, FaultPolicy],
        quarantine: Optional[QuarantineLog] = None,
        metrics=None,
        engine: str = "",
    ):
        self.policy = FaultPolicy.coerce(policy)
        if self.policy is FaultPolicy.QUARANTINE and quarantine is None:
            quarantine = QuarantineLog()
        self.quarantine = quarantine
        self.metrics = metrics
        self.engine = engine
        #: fault tallies by kind (``schema``, ``clock``, ...)
        self.fault_counts: Dict[str, int] = {}
        self.skipped = 0
        self.quarantined = 0
        self.handler_failures = 0
        self.degraded_steps = 0

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------

    def _count(self, family: str, amount: int = 1, **labels) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                family, engine=self.engine, **labels
            ).inc(amount)

    def handle(
        self,
        kind: str,
        error: BaseException,
        time: Optional[object],
        payload: Optional[object],
        next_index: int,
    ) -> StepReport:
        """Apply the policy to one fault.

        Under ``fail_fast`` the original exception is re-raised; under
        ``skip``/``quarantine`` a *skipped* :class:`StepReport` is
        returned (``report.skipped`` is true, no state changed).
        """
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        self._count(
            FAULTS_TOTAL,
            kind=kind,
            policy=self.policy.value,
            help="Step faults intercepted by the fault policy",
        )
        if self.policy is FaultPolicy.FAIL_FAST:
            raise error
        self.skipped += 1
        record = FaultRecord(
            kind, time, str(error), payload, self.policy.value
        )
        if self.policy is FaultPolicy.QUARANTINE:
            self.quarantined += 1
            self.quarantine.record(record)
            self._count(QUARANTINED_TOTAL, help="Inputs dead-lettered")
        return StepReport(
            time if isinstance(time, int) else None,
            next_index,
            [],
            fault=record,
        )

    def handle_handler_failures(self, report, failures) -> None:
        """Count (and quarantine) violation-handler failures."""
        self.handler_failures += len(failures)
        self._count(
            HANDLER_FAILURES_TOTAL,
            amount=len(failures),
            help="Violation handler calls that raised",
        )
        if self.policy is FaultPolicy.QUARANTINE:
            for violation, exc in failures:
                self.quarantine.record(
                    FaultRecord(
                        "handler",
                        report.time,
                        f"{type(exc).__name__}: {exc}",
                        repr(violation),
                        self.policy.value,
                    )
                )
                self.quarantined += 1
            self._count(
                QUARANTINED_TOTAL,
                amount=len(failures),
                help="Inputs dead-lettered",
            )

    def note_step(self, report: StepReport) -> None:
        """Record degradation telemetry for a completed step."""
        if report.degraded:
            self.degraded_steps += 1
            self._count(
                DEGRADED_STEPS_TOTAL, help="Steps that shed evaluations"
            )
            for name in report.deferred:
                self._count(
                    DEFERRED_EVALS_TOTAL,
                    constraint=name,
                    help="Constraint evaluations shed under deadline",
                )

    def summary(self) -> Dict[str, object]:
        """Counters as a plain dict (CLI / test reporting)."""
        return {
            "policy": self.policy.value,
            "faults": dict(sorted(self.fault_counts.items())),
            "skipped": self.skipped,
            "quarantined": self.quarantined,
            "handler_failures": self.handler_failures,
            "degraded_steps": self.degraded_steps,
        }

    def __repr__(self) -> str:
        return (
            f"ResilienceRuntime({self.policy.value}, "
            f"{sum(self.fault_counts.values())} fault(s))"
        )
