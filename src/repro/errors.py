"""Exception hierarchy for the ``repro`` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
The hierarchy mirrors the package layout: schema/value errors come from
the database substrate, parse and safety errors from the constraint
compiler, and monitoring errors from the checker front end.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class SchemaError(ReproError):
    """A relation, attribute, or database schema is ill-formed or violated.

    Raised for duplicate relation names, arity mismatches, references to
    undeclared relations, and tuples whose values do not fit the declared
    attribute types.
    """


class ValueTypeError(SchemaError):
    """A value does not belong to the domain declared for its attribute."""


class UnknownRelationError(SchemaError):
    """A query or transaction referenced a relation the schema lacks."""


class TransactionError(ReproError):
    """A transaction is inconsistent (e.g. inserts and deletes overlap)."""


class AlgebraError(ReproError):
    """A relational-algebra operation received incompatible operands."""


class QueryError(ReproError):
    """A first-order query could not be evaluated."""


class UnsafeFormulaError(QueryError):
    """A formula falls outside the safe-range (monitorable) fragment.

    The message explains which subformula is unsafe and why, e.g. a
    negation whose free variables are not bound by a positive conjunct, or
    a ``SINCE`` whose left operand uses variables its right operand does
    not bind.
    """


class ParseError(ReproError):
    """The constraint text could not be parsed.

    Attributes:
        line: 1-based line of the offending token.
        column: 1-based column of the offending token.
    """

    def __init__(self, message: str, line: int = 1, column: int = 1):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class TimeError(ReproError):
    """A timestamp violates the time model (e.g. clock moved backwards)."""


class MonitorError(ReproError):
    """The monitor was driven incorrectly (e.g. stepped before begun)."""


class HistoryError(ReproError):
    """A history is malformed (non-increasing timestamps, schema drift)."""
