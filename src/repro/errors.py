"""Exception hierarchy for the ``repro`` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
The hierarchy mirrors the package layout: schema/value errors come from
the database substrate, parse and safety errors from the constraint
compiler, and monitoring errors from the checker front end.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class SchemaError(ReproError):
    """A relation, attribute, or database schema is ill-formed or violated.

    Raised for duplicate relation names, arity mismatches, references to
    undeclared relations, and tuples whose values do not fit the declared
    attribute types.
    """


class ValueTypeError(SchemaError):
    """A value does not belong to the domain declared for its attribute."""


class UnknownRelationError(SchemaError):
    """A query or transaction referenced a relation the schema lacks."""


class TransactionError(ReproError):
    """A transaction is inconsistent (e.g. inserts and deletes overlap)."""


class AlgebraError(ReproError):
    """A relational-algebra operation received incompatible operands."""


class QueryError(ReproError):
    """A first-order query could not be evaluated."""


class UnsafeFormulaError(QueryError):
    """A formula falls outside the safe-range (monitorable) fragment.

    The message explains which subformula is unsafe and why, e.g. a
    negation whose free variables are not bound by a positive conjunct, or
    a ``SINCE`` whose left operand uses variables its right operand does
    not bind.
    """


class ParseError(ReproError):
    """The constraint text could not be parsed.

    Attributes:
        line: 1-based line of the offending token.
        column: 1-based column of the offending token.
    """

    def __init__(self, message: str, line: int = 1, column: int = 1):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class TimeError(ReproError):
    """A timestamp violates the time model (e.g. clock moved backwards)."""


class MonitorError(ReproError):
    """The monitor was driven incorrectly (e.g. stepped before begun)."""


class StoreError(ReproError):
    """The durable state store was misconfigured or misused.

    Raised by :mod:`repro.store` for invalid backend parameters, double
    attachment, or writes against a closed store — not for damaged
    data, which is :class:`StoreCorruption`.
    """


class StoreCorruption(StoreError):
    """A durable record failed its integrity check.

    Raised (or collected, on the lenient scrub/recovery paths) when a
    framed record's length prefix, blake2s checksum, or format version
    does not verify — a torn write, bit flip, or lost page.

    Attributes:
        kind: ``"torn"`` (truncated frame), ``"checksum"`` (digest
            mismatch), ``"garbled"`` (unparseable frame), or
            ``"version"`` (format newer than this build).
        path: file the record lives in (``None`` for in-memory data).
        offset: byte offset of the damaged frame within the file.
    """

    def __init__(self, message: str, kind: str = "garbled",
                 path=None, offset=None):
        super().__init__(message)
        self.kind = kind
        self.path = path
        self.offset = offset


class RecoveryError(MonitorError):
    """A checkpoint or journal could not be restored.

    Raised when crash recovery (:func:`repro.core.persist.recover`)
    finds a missing/corrupt checkpoint, a journal record that cannot be
    parsed (e.g. a tail torn by a crash mid-write), or journal content
    the restored checker rejects.  The message always carries the path
    and the reason; raw ``JSONDecodeError``/``KeyError`` never escape.
    """


class ShardingError(MonitorError):
    """A constraint or schema cannot be hash-partitioned as requested.

    Raised by :class:`repro.shard.ShardPlan` when the shard key names no
    schema attribute, or when a constraint's compiled violation formula
    does not route cleanly — its keyed atoms disagree on the key
    variable, bind it under a quantifier (the explicit-``FORALL`` trap),
    or touch no keyed relation at all under the ``reject`` policy.  The
    message always carries the constraint name and a rewrite hint.
    """


class HandlerError(MonitorError):
    """One or more violation handlers raised during dispatch.

    Every registered handler still runs for every violation — a raising
    handler can neither mask the step's report nor starve handlers
    registered after it.  The collected failures are re-raised as one
    exception after dispatch completes.

    Attributes:
        report: the :class:`~repro.core.violations.StepReport` whose
            dispatch failed (the verdicts are valid; only reactions
            failed).
        failures: list of ``(violation, exception)`` pairs, in dispatch
            order.
    """

    def __init__(self, report, failures):
        first = failures[0][1] if failures else None
        super().__init__(
            f"{len(failures)} violation handler call(s) failed "
            f"(first: {first!r}); step report: {report!r}"
        )
        self.report = report
        self.failures = list(failures)


class LintError(MonitorError):
    """A constraint was rejected by static analysis in strict mode.

    Raised by :meth:`Monitor.add_constraint` (and checker construction)
    when ``strict=True`` and the linter reports at least one
    error-severity diagnostic for the constraint being registered.

    Attributes:
        diagnostics: the :class:`repro.lint.Diagnostic` list that
            caused the rejection (errors first).
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class TelemetryError(MonitorError):
    """An SLO spec or health snapshot is malformed.

    Raised when parsing an SLO document (:func:`repro.obs.load_slo_file`)
    or validating/merging a health snapshot
    (:func:`repro.obs.validate_health`, :func:`repro.obs.merge_health`)
    encounters an unknown indicator, an out-of-range target, mismatched
    snapshot versions, or histograms with incompatible bucket bounds.
    """


class HistoryError(ReproError):
    """A history is malformed (non-increasing timestamps, schema drift)."""


class IngestError(ReproError):
    """The ingestion frontier was misconfigured or misused.

    Raised for invalid watermark/lateness/queue parameters and for
    driving an :class:`~repro.ingest.IngestPipeline` incorrectly — not
    for bad *data*, which is dead-lettered and counted instead.
    """


class SourceUnavailable(IngestError):
    """A source failed transiently; polling it again may succeed.

    Raised by a :class:`~repro.ingest.Source` when its backing feed is
    momentarily unreachable, and re-raised by
    :class:`~repro.ingest.RetryingSource` once its retry budget (and
    deadline) is exhausted.
    """


class CircuitOpenError(SourceUnavailable):
    """A circuit breaker is refusing polls after repeated failures.

    Raised immediately (no retry, no sleep) while the breaker's cooldown
    is running — the fast-fail half of the retry/backoff story.
    """
