"""Shape tests for experiment series.

The experiments' claims are *shapes* — "flat in history length",
"grows linearly", "crossover then divergence".  This module turns those
into assertions: least-squares slope fitting (in log-log space for
growth-order claims) plus tolerance-based flatness checks, so the
benchmark suite fails if a code change breaks a claim rather than just
printing different numbers.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y = slope * x + intercept``.

    Raises:
        ValueError: with fewer than two points or zero x-variance.
    """
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("x values are constant")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x


def growth_order(xs: Sequence[float], ys: Sequence[float]) -> float:
    """The exponent ``k`` of the best fit ``y ~ x^k`` (log-log slope).

    ``k ≈ 0`` means flat, ``k ≈ 1`` linear, ``k ≈ 2`` quadratic.  Zero
    or negative values are clamped to a small epsilon before the log.
    """
    eps = 1e-12
    log_xs = [math.log(max(x, eps)) for x in xs]
    log_ys = [math.log(max(y, eps)) for y in ys]
    slope, _ = linear_fit(log_xs, log_ys)
    return slope


def is_flat(
    ys: Sequence[float], tolerance_ratio: float = 3.0
) -> bool:
    """Whether a positive series stays within a max/min ratio.

    The right flatness notion for tuple counts and step times, which
    fluctuate with the data but must not trend with the swept
    parameter.
    """
    positive = [y for y in ys if y > 0]
    if not positive:
        return True
    return max(positive) / min(positive) <= tolerance_ratio


def crossover_index(
    first: Sequence[float], second: Sequence[float]
) -> Optional[int]:
    """First index from which ``first`` stays <= ``second``.

    Returns None if ``first`` never permanently drops below ``second``.
    """
    if len(first) != len(second):
        raise ValueError("series lengths differ")
    for i in range(len(first)):
        if all(a <= b for a, b in zip(first[i:], second[i:])):
            return i
    return None
