"""Cross-constraint planner: sharing, subsumption, and state bounds.

A constraint *set* is more analyzable than its constraints one by one:

* **Shared subformulas** — the bounded-history encoding maintains one
  auxiliary relation per temporal subformula, so two constraints whose
  temporal subtrees coincide *up to variable renaming* can share a
  single auxiliary state.  :func:`build_plan` hash-conses every
  temporal subformula of every constraint's violation kernel into
  rename-equivalence classes (:func:`canonical_key` generalises the
  linter's whole-constraint canonicalisation to arbitrary subtrees)
  and reports the sharing map the incremental checker exploits with
  ``Monitor(share_subformulas=True)``.

* **Static cost/memory bounds** — every class carries the
  :class:`~repro.core.bounds.NodeCost` model (estimated valuations ×
  window bound), so the plan predicts per-constraint auxiliary state
  before a single event is processed, and can be gated with a state
  budget.

* **Subsumption** — a constraint whose violation condition is a
  θ-instance-superset of another's is redundant (every violation it
  reports, the other reports too), in the spirit of simplified
  integrity checking à la Martinenghi.  :func:`find_subsumptions`
  detects such pairs syntactically (sound, incomplete).

The result is a deterministic, versioned ``repro-plan/1`` document
(:class:`Plan`), surfaced by lint codes RTC013–RTC016
(:mod:`repro.lint.sharing`) and the ``repro plan`` CLI subcommand.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.bounds import (
    DEFAULT_RELATION_SIZE,
    NodeCost,
    clock_horizon,
    has_unbounded_operator,
    node_cost,
)
from repro.core.checker import Constraint
from repro.core.formulas import (
    Aggregate,
    And,
    Atom,
    Comparison,
    Const,
    Formula,
    Not,
    Or,
    Since,
    Term,
    Var,
    _Quantifier,
)
from repro.core.normalize import canonical_variables, canonicalize_variant
from repro.core.paths import FormulaPath, walk_with_paths
from repro.errors import ReproError

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "canonical_variables",
    "canonicalize_subformula",
    "canonical_key",
    "ClassMember",
    "SharingClass",
    "build_classes",
    "theta_subsumes",
    "Subsumption",
    "find_subsumptions",
    "ConstraintPlan",
    "Plan",
    "build_plan",
]

#: Version tag of the plan JSON document.
PLAN_SCHEMA_VERSION = "repro-plan/1"

#: Conjunct-count cap above which the θ-subsumption search is skipped
#: (the backtracking matcher is exponential in the worst case).
MAX_SUBSUMPTION_CONJUNCTS = 8


# ----------------------------------------------------------------------
# canonicalisation (rename-equivalence of subformulas)
# ----------------------------------------------------------------------

#: Re-exported for planner users; the implementation lives in
#: :mod:`repro.core.normalize` so the incremental checker can share it
#: without a circular import.
canonicalize_subformula = canonicalize_variant


def canonical_key(formula: Formula) -> str:
    """The rename-equivalence class key of ``formula`` (its canonical
    string).  Hash-consing on this key groups subformulas that differ
    only in variable names."""
    return str(canonicalize_subformula(formula)[0])


# ----------------------------------------------------------------------
# sharing classes
# ----------------------------------------------------------------------

class ClassMember:
    """One occurrence of an equivalence class inside one constraint."""

    __slots__ = ("constraint", "path", "node", "mapping")

    def __init__(
        self,
        constraint: str,
        path: FormulaPath,
        node: Formula,
        mapping: Dict[str, str],
    ):
        self.constraint = constraint
        self.path = path
        self.node = node
        #: original variable (free or bound) -> canonical ``vN`` name
        self.mapping = mapping

    def location(self, root: Formula) -> str:
        """Human-readable breadcrumb of this occurrence."""
        return self.path.render(root)

    def __repr__(self) -> str:
        return f"ClassMember({self.constraint!r}, {self.node})"


class SharingClass:
    """One rename-equivalence class of temporal subformulas."""

    __slots__ = ("key", "representative", "members", "cost")

    def __init__(
        self,
        key: str,
        representative: Formula,
        members: List[ClassMember],
        cost: NodeCost,
    ):
        self.key = key
        #: the canonical alpha-variant all members rename into
        self.representative = representative
        self.members = members
        self.cost = cost

    @property
    def constraints(self) -> List[str]:
        """Sorted distinct owning constraint names."""
        return sorted({m.constraint for m in self.members})

    @property
    def distinct_nodes(self) -> int:
        """Structurally distinct member nodes (the checker's natural
        dedup unit; > 1 means sharing needs the rename fan-out)."""
        return len({m.node for m in self.members})

    @property
    def shared(self) -> bool:
        """Whether more than one constraint owns this class."""
        return len({m.constraint for m in self.members}) > 1

    @property
    def needs_rename(self) -> bool:
        """Whether members are rename-variants rather than structurally
        identical (structural duplicates are deduplicated by the
        checker even without ``share_subformulas``)."""
        return self.distinct_nodes > 1

    @property
    def saved_evaluations_per_step(self) -> int:
        """Operand evaluations per step that shared maintenance saves:
        every structurally distinct node beyond the first."""
        return (self.distinct_nodes - 1) * self.cost.evals_per_step

    @property
    def saved_tuples(self) -> int:
        """Predicted auxiliary tuples saved by maintaining the class
        once instead of once per structurally distinct node."""
        return (self.distinct_nodes - 1) * self.cost.tuple_bound

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able, deterministic description of the class."""
        return {
            "canonical": self.key,
            "operator": type(self.representative).__name__.upper(),
            "members": [
                {"constraint": m.constraint,
                 "node": str(m.node),
                 "path": list(m.path.steps)}
                for m in sorted(
                    self.members,
                    key=lambda m: (m.constraint, m.path.steps),
                )
            ],
            "constraints": self.constraints,
            "distinct_nodes": self.distinct_nodes,
            "shared": self.shared,
            "needs_rename": self.needs_rename,
            "cost": {
                "valuations": self.cost.valuations,
                "tuple_bound": self.cost.tuple_bound,
                "evals_per_step": self.cost.evals_per_step,
                "bounded": self.cost.bounded,
            },
            "saved_evaluations_per_step": self.saved_evaluations_per_step,
            "saved_tuples": self.saved_tuples,
        }

    def __repr__(self) -> str:
        return (
            f"SharingClass({self.key!r}, members={len(self.members)}, "
            f"constraints={len(self.constraints)})"
        )


def build_classes(
    constraints: Sequence[Constraint],
    relation_sizes: Optional[Mapping[str, int]] = None,
    default_relation_size: int = DEFAULT_RELATION_SIZE,
) -> List[SharingClass]:
    """Hash-cons all temporal subformulas into rename-equivalence
    classes, sorted by canonical key (deterministic)."""
    classes: Dict[str, SharingClass] = {}
    for constraint in constraints:
        kernel = constraint.violation_formula
        for path, node in walk_with_paths(kernel):
            if not node.is_temporal:
                continue
            representative, mapping = canonicalize_subformula(node)
            key = str(representative)
            entry = classes.get(key)
            if entry is None:
                entry = SharingClass(
                    key,
                    representative,
                    [],
                    node_cost(
                        representative, relation_sizes,
                        default_relation_size,
                    ),
                )
                classes[key] = entry
            entry.members.append(
                ClassMember(constraint.name, path, node, mapping)
            )
    return [classes[key] for key in sorted(classes)]


# ----------------------------------------------------------------------
# θ-subsumption (Martinenghi-style redundancy detection)
# ----------------------------------------------------------------------

#: substitution image: a variable or a constant, keyed structurally
_TermKey = Tuple[str, Any]
_Subst = Dict[str, _TermKey]


def _term_key(term: Term) -> _TermKey:
    if isinstance(term, Var):
        return ("var", term.name)
    if isinstance(term, Const):
        return ("const", term.value)
    raise TypeError(f"unknown term: {type(term).__name__}")


def _match_term(
    general: Term, specific: Term, subst: _Subst
) -> Optional[_Subst]:
    """Extend ``subst`` so that ``general``σ = ``specific``; None if
    impossible.  Constants only match equal constants; variables bind
    consistently across the whole conjunct set."""
    if isinstance(general, Const):
        if isinstance(specific, Const) and general.value == specific.value:
            return subst
        return None
    if not isinstance(general, Var):
        return None
    target = _term_key(specific)
    bound = subst.get(general.name)
    if bound is not None:
        return subst if bound == target else None
    extended = dict(subst)
    extended[general.name] = target
    return extended


def _match_binders(
    general: Sequence[str], specific: Sequence[str], subst: _Subst
) -> Optional[_Subst]:
    """Pair bound-variable lists positionally (variable-to-variable)."""
    if len(general) != len(specific):
        return None
    current: Optional[_Subst] = subst
    for g, s in zip(general, specific):
        if current is None:
            return None
        current = _match_term(Var(g), Var(s), current)
    return current


def _match(
    general: Formula, specific: Formula, subst: _Subst
) -> Iterator[_Subst]:
    """All substitutions σ extending ``subst`` with ``general``σ
    structurally equal to ``specific`` (syntactic θ-matching)."""
    if type(general) is not type(specific):
        return
    if isinstance(general, Atom):
        assert isinstance(specific, Atom)
        if (general.relation != specific.relation
                or len(general.terms) != len(specific.terms)):
            return
        current: Optional[_Subst] = subst
        for g, s in zip(general.terms, specific.terms):
            current = _match_term(g, s, current) if current is not None \
                else None
            if current is None:
                return
        yield current
        return
    if isinstance(general, Comparison):
        assert isinstance(specific, Comparison)
        if general.op != specific.op:
            return
        left = _match_term(general.left, specific.left, subst)
        if left is None:
            return
        full = _match_term(general.right, specific.right, left)
        if full is not None:
            yield full
        return
    if isinstance(general, Not):
        assert isinstance(specific, Not)
        yield from _match(general.operand, specific.operand, subst)
        return
    if isinstance(general, (And, Or)):
        assert isinstance(specific, (And, Or))
        if len(general.operands) != len(specific.operands):
            return
        states = [subst]
        for g, s in zip(general.operands, specific.operands):
            states = [
                extended
                for state in states
                for extended in _match(g, s, state)
            ]
            if not states:
                return
        yield from states
        return
    if isinstance(general, _Quantifier):
        assert isinstance(specific, _Quantifier)
        paired = _match_binders(
            general.variables, specific.variables, subst
        )
        if paired is None:
            return
        yield from _match(general.operand, specific.operand, paired)
        return
    if isinstance(general, Aggregate):
        assert isinstance(specific, Aggregate)
        if general.op != specific.op:
            return
        paired = _match_term(
            Var(general.result), Var(specific.result), subst
        )
        if paired is None:
            return
        paired = _match_binders(general.over, specific.over, paired)
        if paired is None:
            return
        yield from _match(general.body, specific.body, paired)
        return
    # temporal operators: intervals must agree exactly
    interval = getattr(general, "interval", None)
    if interval is not None and interval != getattr(specific, "interval",
                                                   None):
        return
    if isinstance(general, Since):
        assert isinstance(specific, Since)
        for state in _match(general.left, specific.left, subst):
            yield from _match(general.right, specific.right, state)
        return
    children_g = general.children()
    children_s = specific.children()
    if len(children_g) != len(children_s):
        return
    states = [subst]
    for g, s in zip(children_g, children_s):
        states = [
            extended
            for state in states
            for extended in _match(g, s, state)
        ]
        if not states:
            return
    yield from states


def _conjuncts(kernel: Formula) -> List[Formula]:
    if isinstance(kernel, And):
        return list(kernel.operands)
    return [kernel]


def theta_subsumes(general: Formula, specific: Formula) -> bool:
    """Whether ``general``'s conjuncts θ-match into ``specific``'s.

    Both arguments are violation kernels.  If true, every violation of
    the *specific* kernel is (a projection of) a violation of the
    *general* one, so the constraint owning ``specific`` is redundant
    next to the one owning ``general``.  Syntactic and therefore
    incomplete, but sound.
    """
    general_parts = _conjuncts(general)
    specific_parts = _conjuncts(specific)
    if (len(general_parts) > MAX_SUBSUMPTION_CONJUNCTS
            or len(specific_parts) > MAX_SUBSUMPTION_CONJUNCTS):
        return False

    def search(index: int, subst: _Subst) -> bool:
        if index == len(general_parts):
            return True
        for candidate in specific_parts:
            for extended in _match(
                general_parts[index], candidate, subst
            ):
                if search(index + 1, extended):
                    return True
        return False

    return search(0, {})


class Subsumption:
    """One detected redundancy: ``subsumed`` is implied by ``by``."""

    __slots__ = ("subsumed", "by")

    def __init__(self, subsumed: str, by: str):
        self.subsumed = subsumed
        self.by = by

    def to_dict(self) -> Dict[str, str]:
        """JSON-able ``{"subsumed": ..., "by": ...}`` pair."""
        return {"subsumed": self.subsumed, "by": self.by}

    def __repr__(self) -> str:
        return f"Subsumption({self.subsumed!r} by {self.by!r})"


def find_subsumptions(
    constraints: Sequence[Constraint],
) -> List[Subsumption]:
    """All ordered pairs where one constraint makes another redundant.

    Exact rename-duplicates (equal canonical kernels) are *not*
    reported — they are the linter's RTC009 business; this reports
    proper subsumptions only.
    """
    out: List[Subsumption] = []
    keys = {c.name: canonical_key(c.violation_formula)
            for c in constraints}
    for specific in constraints:
        for general in constraints:
            if general.name == specific.name:
                continue
            if keys[general.name] == keys[specific.name]:
                continue  # exact duplicate: RTC009 territory
            if theta_subsumes(
                general.violation_formula, specific.violation_formula
            ):
                out.append(Subsumption(specific.name, general.name))
    return out


# ----------------------------------------------------------------------
# the plan document
# ----------------------------------------------------------------------

class ConstraintPlan:
    """Per-constraint static summary inside a plan."""

    __slots__ = (
        "name", "temporal_nodes", "horizon", "unbounded", "tuple_bound",
    )

    def __init__(
        self,
        name: str,
        temporal_nodes: int,
        horizon: Optional[int],
        unbounded: bool,
        tuple_bound: int,
    ):
        self.name = name
        self.temporal_nodes = temporal_nodes
        #: clock lookback in clock units (None = unbounded)
        self.horizon = horizon
        #: whether any ONCE/SINCE window is infinite
        self.unbounded = unbounded
        #: predicted auxiliary tuples across the constraint's own nodes
        self.tuple_bound = tuple_bound

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able per-constraint summary."""
        return {
            "name": self.name,
            "temporal_nodes": self.temporal_nodes,
            "horizon": self.horizon,
            "unbounded": self.unbounded,
            "tuple_bound": self.tuple_bound,
        }


class Plan:
    """The full ``repro-plan/1`` analysis of one constraint set."""

    def __init__(
        self,
        constraints: List[ConstraintPlan],
        classes: List[SharingClass],
        subsumptions: List[Subsumption],
        skipped: List[Tuple[str, str]],
    ):
        self.constraints = constraints
        self.classes = classes
        self.subsumptions = subsumptions
        #: ``(name, reason)`` for constraints the planner cannot
        #: analyze (e.g. unsafe formulas rejected by compilation)
        self.skipped = skipped

    # -- sharing summary ----------------------------------------------

    @property
    def total_nodes(self) -> int:
        """Temporal subformula occurrences across all constraints."""
        return sum(len(c.members) for c in self.classes)

    @property
    def distinct_nodes(self) -> int:
        """Structurally distinct temporal nodes (pre-rename dedup)."""
        return sum(c.distinct_nodes for c in self.classes)

    @property
    def shared_nodes(self) -> int:
        """Structurally distinct nodes beyond one per class — the
        auxiliary states rename-sharing eliminates."""
        return sum(c.distinct_nodes - 1 for c in self.classes)

    @property
    def dedup_ratio(self) -> float:
        """Distinct auxiliary states with sharing over without
        (1.0 = nothing shared, smaller is better)."""
        if not self.distinct_nodes:
            return 1.0
        return len(self.classes) / self.distinct_nodes

    @property
    def saved_evaluations_per_step(self) -> int:
        """Total operand evaluations per step sharing saves."""
        return sum(c.saved_evaluations_per_step for c in self.classes)

    @property
    def saved_tuples(self) -> int:
        """Total predicted auxiliary tuples sharing saves."""
        return sum(c.saved_tuples for c in self.classes)

    def sharing_map(self) -> Dict[str, List[str]]:
        """Canonical key -> sorted owning constraints, shared classes
        only (the map ``Monitor(share_subformulas=True)`` realises)."""
        return {
            c.key: c.constraints for c in self.classes if c.shared
        }

    def to_dict(self) -> Dict[str, Any]:
        """The deterministic ``repro-plan/1`` document."""
        return {
            "version": PLAN_SCHEMA_VERSION,
            "constraints": [c.to_dict() for c in self.constraints],
            "skipped": [
                {"name": name, "reason": reason}
                for name, reason in self.skipped
            ],
            "classes": [c.to_dict() for c in self.classes],
            "sharing": {
                "classes": len(self.classes),
                "total_nodes": self.total_nodes,
                "distinct_nodes": self.distinct_nodes,
                "shared_nodes": self.shared_nodes,
                "dedup_ratio": round(self.dedup_ratio, 4),
                "saved_evaluations_per_step":
                    self.saved_evaluations_per_step,
                "saved_tuples": self.saved_tuples,
                "map": self.sharing_map(),
            },
            "subsumptions": [s.to_dict() for s in self.subsumptions],
        }

    def render_text(self) -> str:
        """Human-readable plan summary (deterministic)."""
        lines: List[str] = []
        lines.append(
            f"plan: {len(self.constraints)} constraint(s), "
            f"{self.total_nodes} temporal node(s), "
            f"{len(self.classes)} equivalence class(es)"
        )
        for entry in self.constraints:
            horizon = ("unbounded" if entry.horizon is None
                       else str(entry.horizon))
            lines.append(
                f"  constraint {entry.name}: "
                f"{entry.temporal_nodes} temporal node(s), "
                f"horizon {horizon}, "
                f"predicted tuples <= {entry.tuple_bound}"
                + (" (unbounded window)" if entry.unbounded else "")
            )
        for name, reason in self.skipped:
            lines.append(f"  skipped {name}: {reason}")
        shared = [c for c in self.classes if c.shared]
        if shared:
            lines.append(f"shared classes ({len(shared)}):")
            for cls in shared:
                lines.append(
                    f"  {cls.key}  owners={','.join(cls.constraints)} "
                    f"nodes={cls.distinct_nodes} "
                    f"tuple_bound={cls.cost.tuple_bound} "
                    f"saves {cls.saved_evaluations_per_step} eval(s)/step"
                )
        else:
            lines.append("shared classes: none")
        lines.append(
            f"sharing: {self.shared_nodes} auxiliary state(s) saved, "
            f"dedup ratio {self.dedup_ratio:.2f}, "
            f"~{self.saved_evaluations_per_step} operand eval(s)/step and "
            f"~{self.saved_tuples} tuple(s) saved"
        )
        if self.subsumptions:
            for sub in self.subsumptions:
                lines.append(
                    f"subsumption: {sub.subsumed!r} is implied by "
                    f"{sub.by!r} — monitoring both is redundant"
                )
        else:
            lines.append("subsumptions: none")
        return "\n".join(lines)


def _compile(
    name: str, formula: Union[str, Formula]
) -> Tuple[Optional[Constraint], str]:
    try:
        return Constraint(name, formula), ""
    except ReproError as exc:
        return None, str(exc)


def build_plan(
    constraints: Sequence[Tuple[str, Union[str, Formula]]],
    relation_sizes: Optional[Mapping[str, int]] = None,
    default_relation_size: int = DEFAULT_RELATION_SIZE,
) -> Plan:
    """Analyze a constraint set into a :class:`Plan`.

    Args:
        constraints: ``(name, formula)`` pairs (text or AST).
        relation_sizes: optional per-relation cardinality hints for the
            valuation estimates (active-domain sizes).
        default_relation_size: hint for relations not listed.

    Constraints that fail compilation (unsafe formulas, parse-level
    defects) are excluded from the analysis and listed under
    ``skipped`` with the reason — the linter proper reports them.
    """
    compiled: List[Constraint] = []
    skipped: List[Tuple[str, str]] = []
    for name, formula in constraints:
        constraint, reason = _compile(name, formula)
        if constraint is None:
            skipped.append((name, reason))
        else:
            compiled.append(constraint)
    classes = build_classes(
        compiled, relation_sizes, default_relation_size
    )
    entries: List[ConstraintPlan] = []
    for constraint in compiled:
        kernel = constraint.violation_formula
        nodes = list(kernel.temporal_subformulas())
        bound = sum(
            node_cost(
                node, relation_sizes, default_relation_size
            ).tuple_bound
            for node in nodes
        )
        entries.append(ConstraintPlan(
            constraint.name,
            temporal_nodes=len(nodes),
            horizon=clock_horizon(kernel),
            unbounded=has_unbounded_operator(kernel),
            tuple_bound=bound,
        ))
    return Plan(
        entries, classes, find_subsumptions(compiled), skipped
    )
