"""ASCII bar charts for experiment series.

The paper-reproduction workflow is terminal-first: every experiment's
"figure" is regenerated as a monospace bar chart next to its table in
``benchmarks/results/``, so shape changes are visible in a diff without
any plotting stack.
"""

from __future__ import annotations

from typing import Sequence

BAR = "█"
HALF = "▌"


def bar_chart(
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 42,
    title: str = "",
    unit: str = "",
) -> str:
    """A horizontal bar chart, linearly scaled to the maximum value.

    Args:
        labels: row labels (rendered with ``str``).
        values: non-negative magnitudes, one per label.
        width: maximum bar width in characters.
        title: optional heading line.
        unit: suffix shown after each value.

    Returns:
        The chart as a multi-line string.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values differ in length")
    if not labels:
        return title
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        if value < 0:
            raise ValueError("bar values must be non-negative")
        if peak == 0:
            bar = ""
        else:
            cells = value / peak * width
            bar = BAR * int(cells)
            if cells - int(cells) >= 0.5:
                bar += HALF
        shown = (
            f"{value:.4g}" if isinstance(value, float) else str(value)
        )
        lines.append(
            f"{str(label).rjust(label_width)} | {bar} {shown}{unit}"
        )
    return "\n".join(lines)


def series_chart(
    xs: Sequence[object],
    series: Sequence[tuple],
    width: int = 42,
    title: str = "",
) -> str:
    """Several named series as stacked bar charts sharing an x-axis.

    ``series`` is a list of ``(name, values)`` pairs; each series is
    scaled independently (shapes matter here, not cross-series
    magnitudes).
    """
    parts = []
    if title:
        parts.append(title)
    for name, values in series:
        parts.append(bar_chart(xs, values, width=width, title=f"- {name}"))
    return "\n".join(parts)
