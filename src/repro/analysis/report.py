"""Plain-text experiment tables.

The benchmark harness prints its results as aligned monospace tables —
the same rows recorded in EXPERIMENTS.md — so a reader can diff a rerun
against the committed numbers without any plotting stack.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell) -> str:
    """Render one table cell."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.001 or abs(value) >= 100_000:
            return f"{value:.2e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table.

    Numbers are right-aligned, text left-aligned; a rule separates the
    header.  Returns the table as a string (callers print it).
    """
    rendered: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def align(cell: str, i: int, numeric: bool) -> str:
        return cell.rjust(widths[i]) if numeric else cell.ljust(widths[i])

    numeric_cols = [
        all(
            _is_numberish(row[i])
            for row in rendered
            if i < len(row) and row[i] != "-"
        )
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(align(h, i, numeric_cols[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(
                align(cell, i, numeric_cols[i]) for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def _is_numberish(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def ratio(numerator: float, denominator: float) -> Optional[float]:
    """Safe ratio (None when the denominator is zero)."""
    if denominator == 0:
        return None
    return numerator / denominator


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
) -> None:
    """Print an aligned table (convenience wrapper)."""
    print()
    print(format_table(headers, rows, title=title))
    print()
