"""Experiment instrumentation, report formatting, and static planning."""

from repro.analysis.ascii_plot import bar_chart, series_chart
from repro.analysis.metrics import RunMetrics, measure_run, space_of
from repro.analysis.plan import (
    PLAN_SCHEMA_VERSION,
    ClassMember,
    ConstraintPlan,
    Plan,
    SharingClass,
    Subsumption,
    build_classes,
    build_plan,
    canonical_key,
    canonicalize_subformula,
    find_subsumptions,
    theta_subsumes,
)
from repro.analysis.report import format_table, print_table, ratio
from repro.analysis.shapes import (
    crossover_index,
    growth_order,
    is_flat,
    linear_fit,
)

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "ClassMember",
    "ConstraintPlan",
    "Plan",
    "RunMetrics",
    "SharingClass",
    "Subsumption",
    "bar_chart",
    "build_classes",
    "build_plan",
    "canonical_key",
    "canonicalize_subformula",
    "crossover_index",
    "find_subsumptions",
    "format_table",
    "growth_order",
    "is_flat",
    "linear_fit",
    "measure_run",
    "print_table",
    "ratio",
    "series_chart",
    "space_of",
    "theta_subsumes",
]
