"""Experiment instrumentation and report formatting."""

from repro.analysis.ascii_plot import bar_chart, series_chart
from repro.analysis.metrics import RunMetrics, measure_run, space_of
from repro.analysis.report import format_table, print_table, ratio
from repro.analysis.shapes import (
    crossover_index,
    growth_order,
    is_flat,
    linear_fit,
)

__all__ = [
    "RunMetrics",
    "bar_chart",
    "crossover_index",
    "format_table",
    "growth_order",
    "is_flat",
    "linear_fit",
    "measure_run",
    "print_table",
    "ratio",
    "series_chart",
    "space_of",
]
