"""Instrumentation for the experiments.

Wraps a checker run with per-step wall-clock timing and space sampling,
returning a :class:`RunMetrics` the benchmark harness turns into the
tables recorded in EXPERIMENTS.md.  "Space" is measured in *stored
tuples*, the unit of the paper's claims: auxiliary-relation entries for
the incremental/active checkers, retained history tuples for the naive
checker — deliberately not bytes, which would measure the Python
runtime rather than the algorithm.
"""

from __future__ import annotations

import statistics
import time
from typing import List, Sequence

from repro.core.violations import RunReport


def space_of(checker) -> int:
    """The checker's current stored-tuple count, engine-agnostic.

    Every engine (and :class:`~repro.core.monitor.Monitor`, via its
    built checker) exposes the uniform ``space_tuples()`` hook; the
    legacy per-engine method names are probed as a fallback so
    third-party checkers that predate the hook stay measurable.
    """
    probe = getattr(checker, "space_tuples", None)
    if probe is None:
        # a Monitor façade measures its underlying engine
        inner = getattr(checker, "checker", None)
        if inner is not None:
            probe = getattr(inner, "space_tuples", None)
    if probe is not None:
        return probe()
    for legacy in ("aux_tuple_count", "stored_tuples"):
        method = getattr(checker, legacy, None)
        if method is not None:
            return method()
    raise TypeError(f"cannot measure space of {type(checker).__name__}")


class RunMetrics:
    """Per-step timings and space samples of one checker run."""

    def __init__(
        self,
        step_seconds: Sequence[float],
        space_samples: Sequence[int],
        report: RunReport,
    ):
        self.step_seconds = list(step_seconds)
        self.space_samples = list(space_samples)
        self.report = report

    @property
    def steps(self) -> int:
        """Number of steps measured."""
        return len(self.step_seconds)

    @property
    def total_seconds(self) -> float:
        """Total checking time over the run."""
        return sum(self.step_seconds)

    @property
    def mean_step_seconds(self) -> float:
        """Mean per-step checking time."""
        return self.total_seconds / max(1, self.steps)

    @property
    def peak_space(self) -> int:
        """Maximum stored tuples observed at any step."""
        return max(self.space_samples, default=0)

    @property
    def final_space(self) -> int:
        """Stored tuples after the last step."""
        return self.space_samples[-1] if self.space_samples else 0

    def tail_mean_step_seconds(self, fraction: float = 0.25) -> float:
        """Mean step time over the last ``fraction`` of the run.

        The interesting number for growth detection: a checker whose
        cost grows with history length has a tail mean well above its
        overall mean.
        """
        k = max(1, int(len(self.step_seconds) * fraction))
        tail = self.step_seconds[-k:]
        return sum(tail) / len(tail)

    def median_step_seconds(self) -> float:
        """Median per-step checking time (robust to GC noise)."""
        return statistics.median(self.step_seconds) if self.step_seconds else 0.0

    def __repr__(self) -> str:
        return (
            f"RunMetrics({self.steps} steps, "
            f"total {self.total_seconds * 1e3:.2f} ms, "
            f"peak space {self.peak_space})"
        )


def measure_run(checker, stream, registry=None, warmup=0) -> RunMetrics:
    """Drive ``checker`` through ``stream``, measuring every step.

    Args:
        checker: any stepping engine.
        stream: ``(time, transaction)`` pairs.
        registry: optional :class:`repro.obs.metrics.MetricsRegistry`;
            when given, every per-step sample is also emitted into the
            same metric families runtime instrumentation uses
            (``repro_step_seconds`` histogram, ``repro_aux_tuples_total``
            gauge, labelled by engine), so benchmark measurements and
            live telemetry share one pipeline and one naming scheme.
        warmup: number of leading steps to run *unmeasured*.  Warmup
            steps still advance the checker (and their violations stay
            in the returned report — verdicts are not a perf figure),
            but their samples are excluded from the step/space series
            **and from the registry**, so cold-start allocations never
            leak into histogram buckets.
    """
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    step_seconds: List[float] = []
    space_samples: List[int] = []
    step_hist = space_gauge = None
    if registry is not None:
        from repro.obs.instrument import AUX_TUPLES_TOTAL, STEP_SECONDS

        label = getattr(checker, "engine_label", type(checker).__name__)
        step_hist = registry.histogram(
            STEP_SECONDS, help="End-to-end step time", engine=label
        )
        space_gauge = registry.gauge(
            AUX_TUPLES_TOTAL,
            help="Total stored tuples (engine space measure)",
            engine=label,
        )
    report = RunReport()
    remaining_warmup = warmup
    for when, txn in stream:
        if remaining_warmup > 0:
            remaining_warmup -= 1
            report.add(checker.step(when, txn))
            continue
        started = time.perf_counter()
        report.add(checker.step(when, txn))
        elapsed = time.perf_counter() - started
        step_seconds.append(elapsed)
        space = space_of(checker)
        space_samples.append(space)
        if step_hist is not None:
            step_hist.observe(elapsed)
            space_gauge.set(space)
    return RunMetrics(step_seconds, space_samples, report)
