"""Instrumentation for the experiments.

Wraps a checker run with per-step wall-clock timing and space sampling,
returning a :class:`RunMetrics` the benchmark harness turns into the
tables recorded in EXPERIMENTS.md.  "Space" is measured in *stored
tuples*, the unit of the paper's claims: auxiliary-relation entries for
the incremental/active checkers, retained history tuples for the naive
checker — deliberately not bytes, which would measure the Python
runtime rather than the algorithm.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, List, Optional, Sequence

from repro.core.violations import RunReport


def space_of(checker) -> int:
    """The checker's current stored-tuple count, engine-agnostic."""
    if hasattr(checker, "aux_tuple_count"):
        return checker.aux_tuple_count()
    if hasattr(checker, "stored_tuples"):
        return checker.stored_tuples()
    raise TypeError(f"cannot measure space of {type(checker).__name__}")


class RunMetrics:
    """Per-step timings and space samples of one checker run."""

    def __init__(
        self,
        step_seconds: Sequence[float],
        space_samples: Sequence[int],
        report: RunReport,
    ):
        self.step_seconds = list(step_seconds)
        self.space_samples = list(space_samples)
        self.report = report

    @property
    def steps(self) -> int:
        """Number of steps measured."""
        return len(self.step_seconds)

    @property
    def total_seconds(self) -> float:
        """Total checking time over the run."""
        return sum(self.step_seconds)

    @property
    def mean_step_seconds(self) -> float:
        """Mean per-step checking time."""
        return self.total_seconds / max(1, self.steps)

    @property
    def peak_space(self) -> int:
        """Maximum stored tuples observed at any step."""
        return max(self.space_samples, default=0)

    @property
    def final_space(self) -> int:
        """Stored tuples after the last step."""
        return self.space_samples[-1] if self.space_samples else 0

    def tail_mean_step_seconds(self, fraction: float = 0.25) -> float:
        """Mean step time over the last ``fraction`` of the run.

        The interesting number for growth detection: a checker whose
        cost grows with history length has a tail mean well above its
        overall mean.
        """
        k = max(1, int(len(self.step_seconds) * fraction))
        tail = self.step_seconds[-k:]
        return sum(tail) / len(tail)

    def median_step_seconds(self) -> float:
        """Median per-step checking time (robust to GC noise)."""
        return statistics.median(self.step_seconds) if self.step_seconds else 0.0

    def __repr__(self) -> str:
        return (
            f"RunMetrics({self.steps} steps, "
            f"total {self.total_seconds * 1e3:.2f} ms, "
            f"peak space {self.peak_space})"
        )


def measure_run(checker, stream) -> RunMetrics:
    """Drive ``checker`` through ``stream``, measuring every step."""
    step_seconds: List[float] = []
    space_samples: List[int] = []
    report = RunReport()
    for when, txn in stream:
        started = time.perf_counter()
        report.add(checker.step(when, txn))
        step_seconds.append(time.perf_counter() - started)
        space_samples.append(space_of(checker))
    return RunMetrics(step_seconds, space_samples, report)
