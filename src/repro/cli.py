"""Command-line interface.

Three subcommands::

    repro-check check    --schema s.json --constraints c.txt --history h.jsonl
    repro-check generate --workload library --length 200 --seed 1 --out DIR
    repro-check analyze  --constraints c.txt

``check`` replays a JSONL update stream against a constraint file and
reports violations (exit status 1 if any).  ``generate`` materialises a
workload into the on-disk format ``check`` consumes.  ``analyze``
prints each constraint's compilation profile — safety verdict, clock
horizon, temporal node counts — without running anything.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.report import format_table
from repro.core.bounds import profile
from repro.core.checker import Constraint
from repro.core.monitor import ENGINES, Monitor
from repro.core.parser import parse_constraints
from repro.db.storage import dump_schema, dump_stream, load_schema, load_stream
from repro.errors import ReproError
from repro.workloads import (
    library_workload,
    orders_workload,
    payments_workload,
    random_workload,
    sensors_workload,
)

WORKLOADS = {
    "library": library_workload,
    "orders": orders_workload,
    "payments": payments_workload,
    "sensors": sensors_workload,
    "random": random_workload,
}


def build_arg_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for doc generation/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Real-time integrity constraint checking "
        "(Chomicki, PODS 1992 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser(
        "check", help="check a history against constraints"
    )
    check.add_argument(
        "--schema", default=None,
        help="schema JSON file (required unless --resume-from)",
    )
    check.add_argument(
        "--constraints", default=None,
        help="constraint text file (required unless --resume-from)",
    )
    check.add_argument(
        "--history", required=True, help="JSONL update stream"
    )
    check.add_argument(
        "--engine", choices=ENGINES, default="incremental",
        help="checking engine (default: incremental)",
    )
    check.add_argument(
        "--max-violations", type=int, default=20,
        help="stop printing after this many violations",
    )
    check.add_argument(
        "--quiet", action="store_true", help="exit status only"
    )
    check.add_argument(
        "--resume-from", default=None,
        help="checkpoint file to resume monitoring from "
             "(constraints come from the checkpoint; incremental only)",
    )
    check.add_argument(
        "--save-checkpoint", default=None,
        help="write a checkpoint after processing the stream "
             "(incremental engine only)",
    )

    generate = commands.add_parser(
        "generate", help="materialise a workload to disk"
    )
    generate.add_argument(
        "--workload", choices=sorted(WORKLOADS), required=True
    )
    generate.add_argument("--length", type=int, default=100)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--violation-rate", type=float, default=0.05,
        help="misbehaviour rate for domain workloads",
    )
    generate.add_argument("--out", required=True, help="output directory")

    analyze = commands.add_parser(
        "analyze", help="print constraint compilation profiles"
    )
    analyze.add_argument("--constraints", required=True)
    analyze.add_argument(
        "--verbose", action="store_true",
        help="full per-constraint compilation report",
    )
    return parser


def _command_check(args: argparse.Namespace) -> int:
    stream = load_stream(args.history)
    if args.resume_from:
        monitor = Monitor.resume(args.resume_from)
    else:
        if not args.schema or not args.constraints:
            raise ReproError(
                "--schema and --constraints are required unless "
                "--resume-from is given"
            )
        schema = load_schema(args.schema)
        monitor = Monitor(schema, engine=args.engine)
        monitor.add_constraints_text(Path(args.constraints).read_text())
    report = monitor.run(stream)
    if args.save_checkpoint:
        monitor.save(args.save_checkpoint)
    if args.quiet:
        return 0 if report.ok else 1
    print(
        f"checked {len(report)} states with "
        f"{len(monitor.constraints)} constraint(s) "
        f"[engine: {args.engine}]"
    )
    if report.ok:
        print("no violations")
        return 0
    rows = []
    for violation in report.violations[: args.max_violations]:
        witnesses = "; ".join(
            ", ".join(f"{k}={v!r}" for k, v in w.items()) or "(closed)"
            for w in violation.witness_dicts()[:3]
        )
        rows.append(
            [violation.constraint, violation.time, violation.index, witnesses]
        )
    print(
        format_table(
            ["constraint", "time", "state", "witnesses"],
            rows,
            title=f"{report.violation_count} violation(s)",
        )
    )
    remaining = report.violation_count - args.max_violations
    if remaining > 0:
        print(f"... and {remaining} more")
    return 1


def _command_generate(args: argparse.Namespace) -> int:
    factory = WORKLOADS[args.workload]
    if args.workload == "random":
        workload = factory()
    else:
        workload = factory(violation_rate=args.violation_rate)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    dump_schema(workload.schema, out / "schema.json")
    dump_stream(
        workload.stream(args.length, seed=args.seed), out / "history.jsonl"
    )
    constraint_text = "\n".join(
        f"{c.name}: {c.formula};" for c in workload.constraints
    )
    (out / "constraints.txt").write_text(constraint_text + "\n")
    print(
        f"wrote {args.workload} workload ({args.length} transitions, "
        f"seed {args.seed}) to {out}/"
    )
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    text = Path(args.constraints).read_text()
    rows = []
    for name, formula in parse_constraints(text):
        try:
            constraint = Constraint(name, formula)
        except ReproError as exc:
            rows.append([name, "UNSAFE", None, None, None, str(exc)[:60]])
            continue
        if args.verbose:
            from repro.core.explain import explain

            print(explain(constraint))
            print()
            continue
        prof = profile(constraint.violation_formula)
        horizon = "*" if prof.horizon is None else prof.horizon
        rows.append(
            [
                name,
                "ok",
                prof.temporal_nodes,
                prof.temporal_depth,
                horizon,
                str(formula)[:60],
            ]
        )
    if rows or not args.verbose:
        print(
            format_table(
                ["constraint", "status", "nodes", "depth", "horizon",
                 "formula"],
                rows,
            )
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_arg_parser().parse_args(argv)
    try:
        if args.command == "check":
            return _command_check(args)
        if args.command == "generate":
            return _command_generate(args)
        return _command_analyze(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
