"""Command-line interface.

Thirteen subcommands::

    repro-check check    --schema s.json --constraints c.txt --history h.jsonl
    repro-check ingest   --schema s.json --constraints c.txt --source a.jsonl
    repro-check lint     --constraints c.txt [--schema s.json] [--format json]
    repro-check plan     --constraints c.txt [--schema s.json] [--format json]
    repro-check generate --workload library --length 200 --seed 1 --out DIR
    repro-check analyze  --constraints c.txt [--trace t.jsonl]
    repro-check stats    --trace t.jsonl [--percentiles]
    repro-check health   SNAPSHOT [SNAPSHOT ...] [--merge-out h.json]
    repro-check state    inspect|watch|top|bound-check --schema ... --history ...
    repro-check bench    --all --json [--profile short|full]
    repro-check perf     --check benchmarks/baselines [--candidate DIR]
    repro-check recover  --journal DIR [--history h.jsonl]
    repro-check scrub    DIR [--repair] [--format json]

``check`` replays a JSONL update stream against a constraint file and
reports violations (exit status 1 if any); ``--trace``/``--metrics``
attach runtime observability (:mod:`repro.obs`) and write a JSONL span
trace / a metrics dump (Prometheus text, or JSON for ``.json`` paths).
Before monitoring, the constraint set is linted and any diagnostics
are printed (``--no-lint`` opts out).  ``lint`` runs the same static
analyses (:mod:`repro.lint`) standalone: text or ``--format json``
output, exit status mirroring the worst severity (2 errors, 1
warnings, 0 clean/advisory) — see ``docs/linting.md``.  ``plan`` runs
the cross-constraint planner (:mod:`repro.analysis.plan`) standalone:
shared-subformula classes, θ-subsumption redundancies, and static
state bounds as a ``repro-plan/1`` document (``--format json``) or a
text summary, with the planner-backed diagnostics RTC013–RTC016 and
the same severity exit convention (``--state-budget``/``--shard-key``
arm the gated rules; ``--relation-size rel=N`` tunes the cost model).
``check --share-subformulas`` opts the incremental engine into the
sharing the plan predicts.
``generate`` materialises a workload into the on-disk format ``check``
consumes.  ``analyze`` prints each constraint's compilation profile —
safety verdict, clock horizon, temporal node counts — and, given a
trace, joins in the observed per-constraint runtime figures.  ``stats``
summarises a trace: step/evaluate latencies per constraint and an
ASCII step-latency histogram (``--percentiles`` adds p50/p90/p99).
``bench`` runs the paper's experiments through the structured runner
in ``benchmarks/_experiments.py``, regenerating ``results/eN.txt`` and
(with ``--json``) the machine-readable ``BENCH_<exp>.json`` artifacts.
``perf`` compares a candidate run against committed baselines and
exits non-zero when a paper *shape* breaks (timing deltas warn only,
or gate with ``--strict``).  ``recover`` restores a crashed ``check
--journal`` run from its checkpoint + journal directory and optionally
continues over the remaining history (see ``docs/robustness.md``).
``scrub`` verifies every checksum in a journal directory (shard trees
included) and exits 0 clean / 1 corruption found / 2 unrepairable;
``--repair`` truncates torn tails, promotes fallback generations, and
re-checkpoints through a full recovery so generation redundancy is
restored (see :mod:`repro.store`).

``check`` grows a fault boundary: ``--fault-policy skip|quarantine``
keeps monitoring through malformed lines, schema violations, and clock
faults (``--quarantine-log`` dead-letters them as JSONL);
``--step-deadline`` sheds non-urgent constraint evaluations when a step
blows its budget; ``--journal DIR`` makes the run crash-recoverable.

``ingest`` hardens the front of that boundary (:mod:`repro.ingest`):
it reads *arrival* files — JSONL deliveries that may be out of order,
duplicated, clock-skewed per source, or outright garbage — reorders
them behind a watermark frontier, and checks the reconstructed stream,
dead-lettering anything excluded (late/duplicate/invalid/shed) to the
quarantine log.  ``check --tolerate-disorder`` (implied by
``--watermark``) applies the same frontier to a mildly disordered
history file instead of aborting on the first clock fault.
``generate --arrivals`` writes a seeded perturbation of the workload
(``arrivals.jsonl`` + an ``ingest.json`` ground-truth manifest) for
exercising all of this end to end — see ``docs/robustness.md``.

Event-time telemetry (:mod:`repro.obs.telemetry`) rides ``check`` and
``ingest``: ``--slo FILE`` evaluates declarative SLOs with burn-rate
alerts during the run, ``--health FILE`` writes a versioned, mergeable
health snapshot afterwards, and the ``health`` subcommand validates,
folds, and renders snapshot files from N runs or shards (exit status 1
when any merged SLO budget is exhausted) — see
``docs/observability.md``.

State observability (:mod:`repro.obs.statewatch`) rides ``check`` and
``ingest`` too: ``--statewatch`` accounts the auxiliary relations per
temporal subformula against their analytic bounds and prints any
bound/leak alerts, ``--flight FILE`` adds a flight recorder dumping a
``repro-flight/1`` black-box artifact on violation/fault/budget
incidents, and ``--state-out FILE`` writes the final ``repro-state/1``
snapshot.  The ``state`` subcommand replays a history under the
observatory standalone: ``inspect`` (full accounting), ``watch``
(running totals), ``top`` (heavy-hitter valuations), ``bound-check``
(exit 1 on any analytic-bound breach).  ``health render SNAP...``
renders health *or* state snapshots individually (``--format json``
for machine consumption).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.report import format_table
from repro.core.bounds import profile
from repro.core.checker import Constraint
from repro.core.monitor import ENGINES, Monitor
from repro.core.parser import parse_constraints
from repro.db.storage import dump_schema, dump_stream, load_schema, load_stream
from repro.errors import ReproError
from repro.workloads import (
    library_workload,
    orders_workload,
    payments_workload,
    random_workload,
    sensors_workload,
)

WORKLOADS = {
    "library": library_workload,
    "orders": orders_workload,
    "payments": payments_workload,
    "sensors": sensors_workload,
    "random": random_workload,
}


def build_arg_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for doc generation/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Real-time integrity constraint checking "
        "(Chomicki, PODS 1992 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser(
        "check", help="check a history against constraints"
    )
    check.add_argument(
        "--schema", default=None,
        help="schema JSON file (required unless --resume-from)",
    )
    check.add_argument(
        "--constraints", default=None,
        help="constraint text file (required unless --resume-from)",
    )
    check.add_argument(
        "--history", required=True, help="JSONL update stream"
    )
    check.add_argument(
        "--engine", choices=ENGINES, default="incremental",
        help="checking engine (default: incremental)",
    )
    check.add_argument(
        "--share-subformulas", action="store_true",
        help="maintain rename-equivalent temporal subformulas once "
             "across constraints (incremental engine only)",
    )
    check.add_argument(
        "--max-violations", type=int, default=20,
        help="stop printing after this many violations",
    )
    check.add_argument(
        "--quiet", action="store_true", help="exit status only"
    )
    check.add_argument(
        "--resume-from", default=None,
        help="checkpoint file to resume monitoring from "
             "(constraints come from the checkpoint; incremental only)",
    )
    check.add_argument(
        "--save-checkpoint", default=None,
        help="write a checkpoint after processing the stream "
             "(incremental engine only)",
    )
    check.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a structured JSONL span trace of the run",
    )
    check.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write a metrics dump (Prometheus text; JSON if the "
             "file ends in .json)",
    )
    check.add_argument(
        "--fault-policy", default=None,
        choices=("fail_fast", "skip", "quarantine"),
        help="what to do with faulty stream records (default: "
             "fail_fast, i.e. abort on the first fault)",
    )
    check.add_argument(
        "--quarantine-log", default=None, metavar="FILE",
        help="dead-letter JSONL file for quarantined records "
             "(implies --fault-policy quarantine)",
    )
    check.add_argument(
        "--step-deadline", type=float, default=None, metavar="SECONDS",
        help="per-step evaluation budget; blown budgets shed "
             "non-urgent constraints and mark the step degraded",
    )
    check.add_argument(
        "--urgent", action="append", default=None, metavar="NAME",
        help="constraint never shed under --step-deadline (repeatable)",
    )
    check.add_argument(
        "--journal", default=None, metavar="DIR",
        help="journal every applied step under DIR with periodic "
             "checkpoints, making the run recoverable via 'recover' "
             "(incremental engine only)",
    )
    check.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="auto-checkpoint cadence for --journal (default: 64)",
    )
    check.add_argument(
        "--no-lint", action="store_true",
        help="skip the pre-monitoring lint pass over the constraints",
    )
    check.add_argument(
        "--tolerate-disorder", action="store_true",
        help="reorder out-of-order history records behind a watermark "
             "instead of aborting (implies --fault-policy quarantine "
             "unless one is given)",
    )
    check.add_argument(
        "--watermark", type=int, default=None, metavar="W",
        help="disorder bound, in clock units, for --tolerate-disorder "
             "(giving it implies the flag; default: 0)",
    )
    check.add_argument(
        "--max-lateness", type=int, default=None, metavar="L",
        help="refuse salvageable events trailing the watermark "
             "frontier by more than L (default: salvage whenever "
             "order allows)",
    )
    check.add_argument(
        "--retry", type=int, default=None, metavar="N",
        help="retry budget for transiently unavailable sources "
             "(capped jittered exponential backoff)",
    )
    check.add_argument(
        "--skew", action="append", default=None, metavar="NAME=DELTA",
        help="per-source clock offset subtracted on arrival "
             "(repeatable)",
    )
    check.add_argument(
        "--slo", default=None, metavar="FILE",
        help="SLO spec file (repro-slo/1 JSON); enables event-time "
             "telemetry, evaluates burn-rate alert rules during the "
             "run, and prints fired alerts and budget state",
    )
    check.add_argument(
        "--health", default=None, metavar="FILE",
        help="write a mergeable health snapshot (repro-health/1 JSON) "
             "after the run; enables event-time telemetry",
    )
    check.add_argument(
        "--statewatch", action="store_true",
        help="enable the state observatory: per-subformula auxiliary "
             "state accounting with bound-conformance and leak alerts "
             "printed after the run",
    )
    check.add_argument(
        "--flight", default=None, metavar="FILE",
        help="flight-recorder artifact path (repro-flight/1 JSONL), "
             "dumped on violation, fault, or budget exhaustion "
             "(implies --statewatch)",
    )
    check.add_argument(
        "--state-out", default=None, metavar="FILE",
        help="write the final state snapshot (repro-state/1 JSON) "
             "after the run (implies --statewatch)",
    )

    ingest = commands.add_parser(
        "ingest",
        help="reorder unordered arrival feeds behind a watermark "
             "and check the reconstructed stream",
    )
    ingest.add_argument(
        "--schema", required=True, help="schema JSON file"
    )
    ingest.add_argument(
        "--constraints", required=True, help="constraint text file"
    )
    ingest.add_argument(
        "--source", action="append", required=True, metavar="[NAME=]FILE",
        help="arrivals JSONL feed; records may carry a per-record "
             "\"source\" tag, untagged ones get NAME (repeatable)",
    )
    ingest.add_argument(
        "--engine", choices=ENGINES, default="incremental",
        help="checking engine (default: incremental)",
    )
    ingest.add_argument(
        "--watermark", type=int, default=0, metavar="W",
        help="disorder bound, in clock units (default: 0 — arrivals "
             "expected in order)",
    )
    ingest.add_argument(
        "--max-lateness", type=int, default=None, metavar="L",
        help="refuse salvageable events trailing the frontier by "
             "more than L",
    )
    ingest.add_argument(
        "--skew", action="append", default=None, metavar="NAME=DELTA",
        help="per-source clock offset subtracted on arrival "
             "(repeatable)",
    )
    ingest.add_argument(
        "--retry", type=int, default=None, metavar="N",
        help="retry budget for transiently unavailable sources",
    )
    ingest.add_argument(
        "--queue-capacity", type=int, default=1024, metavar="N",
        help="bound of the ingest queue (default: 1024)",
    )
    ingest.add_argument(
        "--backpressure", default="block",
        choices=("block", "shed-oldest", "shed-newest"),
        help="full-queue policy (default: block)",
    )
    ingest.add_argument(
        "--fault-policy", default=None,
        choices=("skip", "quarantine"),
        help="step-boundary fault policy for records that clear "
             "ingest but fail checking (default: quarantine)",
    )
    ingest.add_argument(
        "--quarantine-log", default=None, metavar="FILE",
        help="dead-letter JSONL file for excluded arrivals and "
             "quarantined records",
    )
    ingest.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a structured JSONL span trace of the run",
    )
    ingest.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write a metrics dump (Prometheus text; JSON if the "
             "file ends in .json)",
    )
    ingest.add_argument(
        "--slo", default=None, metavar="FILE",
        help="SLO spec file (repro-slo/1 JSON); enables event-time "
             "telemetry and burn-rate alerts",
    )
    ingest.add_argument(
        "--health", default=None, metavar="FILE",
        help="write a mergeable health snapshot (repro-health/1 JSON) "
             "after the run; enables event-time telemetry",
    )
    ingest.add_argument(
        "--statewatch", action="store_true",
        help="enable the state observatory (see 'check --statewatch')",
    )
    ingest.add_argument(
        "--flight", default=None, metavar="FILE",
        help="flight-recorder artifact path (implies --statewatch)",
    )
    ingest.add_argument(
        "--state-out", default=None, metavar="FILE",
        help="write the final state snapshot (repro-state/1 JSON) "
             "after the run (implies --statewatch)",
    )
    ingest.add_argument(
        "--max-violations", type=int, default=20,
        help="stop printing after this many violations",
    )
    ingest.add_argument(
        "--quiet", action="store_true", help="exit status only"
    )

    for sub in (check, ingest):
        sub.add_argument(
            "--shards", type=int, default=None, metavar="N",
            help="partition the run across N supervised shard workers "
                 "(requires --shard-key; incremental engine only)",
        )
        sub.add_argument(
            "--shard-key", default=None, metavar="ATTR",
            help="schema attribute that keys the partition "
                 "(required with --shards)",
        )
        sub.add_argument(
            "--shard-chaos", default=None, metavar="SPEC",
            help="inject seeded worker faults into the sharded run: "
                 "'kills=K[,stalls=S][,seed=N]' (smoke tests; without "
                 "a journal, crashed shards tombstone and degrade "
                 "instead of recovering)",
        )
        sub.add_argument(
            "--shard-transport", default="inline",
            choices=("inline", "process"),
            help="worker transport for --shards (default: inline)",
        )
        sub.add_argument(
            "--shard-unkeyed", default="reject",
            choices=("reject", "broadcast"),
            help="policy for constraints touching no keyed relation "
                 "(default: reject with a diagnostic)",
        )

    lint = commands.add_parser(
        "lint", help="statically analyse a constraint set"
    )
    lint.add_argument(
        "--constraints", default=None,
        help="constraint text file (required unless --list-rules)",
    )
    lint.add_argument(
        "--schema", default=None,
        help="schema JSON file; enables relation/arity/type rules",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--disable", action="append", default=None, metavar="RULE",
        help="disable a rule by code (RTC004) or name "
             "(unsafe-formula); repeatable",
    )
    lint.add_argument(
        "--granularity", type=int, default=1, metavar="G",
        help="clock granularity for interval reachability (RTC006)",
    )
    lint.add_argument(
        "--require-bounded", action="store_true",
        help="treat unbounded past windows (RTC007) as errors",
    )
    lint.add_argument(
        "--urgent", action="append", default=None, metavar="NAME",
        help="urgent-set entry to validate against the constraint "
             "set (RTC011); repeatable",
    )
    lint.add_argument(
        "--journal", action="store_true",
        help="declare that the deployment journals steps (RTC011)",
    )
    lint.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="declared checkpoint cadence to validate (RTC011)",
    )
    lint.add_argument(
        "--state-budget", type=int, default=None, metavar="N",
        help="auxiliary-state tuple budget; enables RTC015",
    )
    lint.add_argument(
        "--shard-key", default=None, metavar="ATTR",
        help="deployment shard-key attribute; enables RTC016 "
             "(requires --schema)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )

    plan = commands.add_parser(
        "plan",
        help="cross-constraint analysis: sharing, subsumption, bounds",
    )
    plan.add_argument(
        "--constraints", required=True,
        help="constraint text file",
    )
    plan.add_argument(
        "--schema", default=None,
        help="schema JSON file; enables shard-admission checks",
    )
    plan.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text); json emits the "
             "repro-plan/1 document",
    )
    plan.add_argument(
        "--state-budget", type=int, default=None, metavar="N",
        help="auxiliary-state tuple budget; enables RTC015",
    )
    plan.add_argument(
        "--shard-key", default=None, metavar="ATTR",
        help="deployment shard-key attribute; enables RTC016 "
             "(requires --schema)",
    )
    plan.add_argument(
        "--relation-size", action="append", default=None,
        metavar="REL=N",
        help="cardinality hint for one relation's active domain; "
             "repeatable",
    )
    plan.add_argument(
        "--default-relation-size", type=int, default=None, metavar="N",
        help="cardinality hint for relations without an explicit "
             "--relation-size (default: 64)",
    )

    recover = commands.add_parser(
        "recover", help="restore a crashed --journal run and continue"
    )
    recover.add_argument(
        "--journal", required=True, metavar="DIR",
        help="journal directory written by 'check --journal'",
    )
    recover.add_argument(
        "--history", default=None, metavar="FILE",
        help="full JSONL history; records after the recovered point "
             "are replayed to finish the interrupted run",
    )
    recover.add_argument(
        "--fault-policy", default=None,
        choices=("fail_fast", "skip", "quarantine"),
        help="fault policy for the continued run (as in 'check')",
    )
    recover.add_argument(
        "--max-violations", type=int, default=20,
        help="stop printing after this many violations",
    )
    recover.add_argument(
        "--quiet", action="store_true", help="exit status only"
    )

    scrub = commands.add_parser(
        "scrub",
        help="verify a durable journal directory's checksums; "
             "--repair fixes what it finds",
    )
    scrub.add_argument(
        "directory", metavar="DIR",
        help="journal directory written by 'check --journal' "
             "(a sharded journal root is walked recursively)",
    )
    scrub.add_argument(
        "--repair", action="store_true",
        help="apply the repairs the scrub proposes (truncate torn "
             "tails, drop damaged spares, promote the fallback "
             "generation), then re-checkpoint through a full recovery",
    )
    scrub.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    scrub.add_argument(
        "--quiet", action="store_true", help="exit status only"
    )

    generate = commands.add_parser(
        "generate", help="materialise a workload to disk"
    )
    generate.add_argument(
        "--workload", choices=sorted(WORKLOADS), required=True
    )
    generate.add_argument("--length", type=int, default=100)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--violation-rate", type=float, default=0.05,
        help="misbehaviour rate for domain workloads",
    )
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument(
        "--arrivals", action="store_true",
        help="also write a seeded delivery perturbation of the "
             "history (arrivals.jsonl + ingest.json manifest) for "
             "the 'ingest' subcommand",
    )
    generate.add_argument(
        "--chaos-seed", type=int, default=0, metavar="SEED",
        help="seed for the delivery perturbation (default: 0)",
    )
    generate.add_argument(
        "--chaos-watermark", type=int, default=8, metavar="W",
        help="disorder bound of the perturbation (default: 8)",
    )
    generate.add_argument(
        "--duplicate-rate", type=float, default=0.1, metavar="RATE",
        help="fraction of arrivals replayed (default: 0.1)",
    )
    generate.add_argument(
        "--late-events", type=int, default=0, metavar="N",
        help="events deliberately held back past the watermark "
             "(default: 0; needs --chaos-watermark >= 1)",
    )
    generate.add_argument(
        "--sources", type=int, default=2, metavar="N",
        help="sources the stream is scattered over (default: 2)",
    )
    generate.add_argument(
        "--max-skew", type=int, default=0, metavar="S",
        help="maximum per-source clock skew (default: 0)",
    )

    analyze = commands.add_parser(
        "analyze", help="print constraint compilation profiles"
    )
    analyze.add_argument("--constraints", required=True)
    analyze.add_argument(
        "--verbose", action="store_true",
        help="full per-constraint compilation report",
    )
    analyze.add_argument(
        "--trace", default=None, metavar="FILE",
        help="JSONL trace from 'check --trace'; adds observed "
             "per-constraint runtime columns",
    )

    stats = commands.add_parser(
        "stats", help="summarise a JSONL trace from 'check --trace'"
    )
    stats.add_argument(
        "--trace", required=True, metavar="FILE",
        help="JSONL trace written by 'check --trace'",
    )
    stats.add_argument(
        "--width", type=int, default=42,
        help="bar width of the latency histogram",
    )
    stats.add_argument(
        "--percentiles", action="store_true",
        help="report p50/p90/p99 latency columns from the trace spans",
    )
    stats.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="JSON metrics dump from 'check --metrics x.json'; adds "
             "event-time stage latency and frontier-lag sections when "
             "the run had telemetry enabled",
    )

    health = commands.add_parser(
        "health",
        help="validate, merge, and render health snapshots "
             "(repro-health/1 JSON from 'check --health')",
    )
    health.add_argument(
        "snapshots", nargs="+", metavar="SNAPSHOT",
        help="health snapshot file(s); several fold into one as if "
             "a single run had produced them.  The first operand may "
             "be the word 'render': then each following file — a "
             "repro-health/1 or repro-state/1 snapshot — is rendered "
             "individually (no merging, no budget gating, exit 0)",
    )
    health.add_argument(
        "--merge-out", default=None, metavar="FILE",
        help="write the merged snapshot as JSON",
    )
    health.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout rendering (default: text)",
    )
    health.add_argument(
        "--quiet", action="store_true", help="exit status only"
    )

    state = commands.add_parser(
        "state",
        help="replay a history under the state observatory: inspect "
             "auxiliary state, watch it grow, rank heavy hitters, or "
             "gate on analytic bounds",
    )
    state.add_argument(
        "mode", choices=("inspect", "watch", "top", "bound-check"),
        help="inspect: final per-subformula accounting snapshot; "
             "watch: running per-step totals; top: heavy-hitter "
             "valuations per subformula; bound-check: exit 1 if any "
             "subformula ever exceeded its analytic tuple bound",
    )
    state.add_argument(
        "--schema", required=True, help="schema JSON file"
    )
    state.add_argument(
        "--constraints", required=True, help="constraint text file"
    )
    state.add_argument(
        "--history", required=True, help="JSONL update stream"
    )
    state.add_argument(
        "--engine", choices=ENGINES, default="incremental",
        help="checking engine (default: incremental)",
    )
    state.add_argument(
        "--every", type=int, default=1, metavar="N",
        help="watch-mode print cadence in steps (default: 1)",
    )
    state.add_argument(
        "--top-k", type=int, default=8, metavar="K",
        help="heavy-hitter valuations reported per subformula "
             "(default: 8)",
    )
    state.add_argument(
        "--sample-every", type=int, default=1, metavar="N",
        help="deep-sample cadence in steps — byte sizes, sketches "
             "(default: 1; production wiring uses 8)",
    )
    state.add_argument(
        "--flight", default=None, metavar="FILE",
        help="also record a flight-recorder artifact "
             "(repro-flight/1 JSONL)",
    )
    state.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the final state snapshot (repro-state/1 JSON)",
    )
    state.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout rendering (default: text)",
    )

    bench = commands.add_parser(
        "bench", help="run the paper's experiments (structured runner)"
    )
    bench.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    bench.add_argument(
        "-e", "--experiment", action="append", default=None,
        metavar="EXP", help="experiment id (e1..e12); repeatable",
    )
    bench.add_argument(
        "--profile", choices=("short", "full"), default="full",
        help="sweep profile (default: full; CI smoke uses short)",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="also write a BENCH_<exp>.json artifact per experiment",
    )
    bench.add_argument(
        "--metrics", action="store_true",
        help="embed a per-run metrics-registry dump in each artifact",
    )
    bench.add_argument(
        "--out", default=None, metavar="DIR",
        help="output directory (default: <bench-dir>/results)",
    )
    bench.add_argument(
        "--bench-dir", default=None, metavar="DIR",
        help="directory holding the bench_e*.py experiments "
             "(default: ./benchmarks, or the repo checkout's)",
    )
    bench.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any shape expectation fails",
    )

    perf = commands.add_parser(
        "perf", help="compare benchmark artifacts against baselines"
    )
    perf.add_argument(
        "--check", required=True, metavar="DIR",
        help="baseline directory of committed BENCH_*.json artifacts",
    )
    perf.add_argument(
        "--candidate", default=None, metavar="DIR",
        help="candidate artifact directory (default: run the baseline "
             "experiments fresh)",
    )
    perf.add_argument(
        "--profile", choices=("short", "full"), default="short",
        help="sweep profile for fresh candidate runs (default: short)",
    )
    perf.add_argument(
        "--noise", type=float, default=0.25,
        help="multiplicative noise band for series deltas "
             "(default: 0.25)",
    )
    perf.add_argument(
        "--out", default=None, metavar="DIR",
        help="keep fresh candidate artifacts here (default: temp dir)",
    )
    perf.add_argument(
        "--bench-dir", default=None, metavar="DIR",
        help="directory holding the bench_e*.py experiments",
    )
    perf.add_argument(
        "--strict", action="store_true",
        help="also exit non-zero on timing regressions (not just "
             "broken shapes)",
    )
    return parser


def _build_instrumentation(args):
    """Tracer/registry wiring for ``check --trace/--metrics``."""
    if not (args.trace or args.metrics):
        return None, None, None
    from repro.obs import MetricsRegistry, MonitorInstrumentation, Tracer

    tracer = Tracer() if args.trace else None
    registry = MetricsRegistry() if args.metrics else None
    return MonitorInstrumentation(tracer, registry), tracer, registry


def _parse_shard_chaos(spec: str, shards: int, steps: int):
    """Parse ``kills=K[,stalls=S][,seed=N]`` into a chaos plan."""
    from repro.resilience import plan_shard_chaos

    values = {"kills": 2, "stalls": 0, "seed": 0}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, raw = part.partition("=")
        if key not in values or not raw:
            raise ReproError(
                f"bad --shard-chaos component {part!r}; expected "
                f"'kills=K[,stalls=S][,seed=N]'"
            )
        try:
            values[key] = int(raw)
        except ValueError:
            raise ReproError(
                f"--shard-chaos {key} must be an int, got {raw!r}"
            ) from None
    return plan_shard_chaos(shards, steps, **values)


def _check_shard_flags(args, tolerant: bool = False) -> None:
    """Reject flag combinations the sharded path cannot honour."""
    if args.shards < 1:
        raise ReproError(f"--shards must be >= 1, got {args.shards}")
    if not args.shard_key:
        raise ReproError("--shards requires --shard-key")
    if args.engine != "incremental":
        raise ReproError(
            "--shards supports only the incremental engine "
            "(each shard worker is one incremental checker)"
        )
    unsupported = [
        ("--trace", args.trace),
        ("--slo", args.slo),
        ("--statewatch", args.statewatch),
        ("--flight", args.flight),
        ("--state-out", args.state_out),
        ("--resume-from", getattr(args, "resume_from", None)),
        ("--save-checkpoint", getattr(args, "save_checkpoint", None)),
    ]
    for flag, value in unsupported:
        if value:
            raise ReproError(
                f"{flag} is not available with --shards; per-worker "
                f"observability lives in the shard journals, and "
                f"recovery goes through the shard manifest "
                f"('recover' on the journal root)"
            )
    if args.health and args.shard_transport != "inline":
        raise ReproError(
            "--health with --shards requires the inline transport"
        )


def _build_sharded_monitor(args, schema, steps: int, journal_root=None):
    """A :class:`~repro.shard.ShardedMonitor` from CLI flags."""
    from repro.shard import ShardedMonitor

    chaos = None
    if args.shard_chaos:
        chaos = _parse_shard_chaos(args.shard_chaos, args.shards, steps)
    instrumentation, tracer, registry = _build_instrumentation(args)
    monitor = ShardedMonitor(
        schema,
        key=args.shard_key,
        shards=args.shards,
        journal_root=journal_root,
        checkpoint_every=(
            getattr(args, "checkpoint_every", None) or 64
        ),
        on_unkeyed=args.shard_unkeyed,
        transport=args.shard_transport,
        chaos=chaos,
        instrumentation=instrumentation,
        fault_policy=args.fault_policy,
        quarantine_log=args.quarantine_log,
    )
    monitor.add_constraints_text(Path(args.constraints).read_text())
    if getattr(args, "step_deadline", None) is not None:
        monitor.set_step_deadline(
            args.step_deadline, urgent=tuple(args.urgent or ())
        )
    return monitor, registry


def _print_shard_summary(monitor) -> None:
    summary = monitor.supervisor.summary()
    acct = monitor.accounting()
    print(
        f"shards: {summary['shards']} ({summary['transport']}), "
        f"crashes: {summary['crashes']}, "
        f"respawns: {summary['respawns']}, "
        f"stall kills: {summary['stall_kills']}, "
        f"replayed: {summary['replayed_steps']}, "
        f"tombstoned: {summary['tombstoned'] or 'none'}"
    )
    print(
        f"accounting: fed {acct['steps_fed']} = "
        f"{acct['verdicts']} verdict(s) + "
        f"{acct['degraded']} degraded + {acct['shed']} shed"
    )


def _write_sharded_health(monitor, args) -> None:
    if not getattr(args, "health", None):
        return
    import json as _json

    path = Path(args.health)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(_json.dumps(monitor.health(), indent=2, sort_keys=True))


def _command_check_sharded(args: argparse.Namespace) -> int:
    tolerant = bool(
        args.tolerate_disorder
        or args.watermark is not None
        or args.max_lateness is not None
        or args.skew
        or args.retry is not None
    )
    if tolerant:
        raise ReproError(
            "--shards does not combine with the disorder-tolerant "
            "check flags; use 'ingest --shards' for unordered feeds"
        )
    if not args.schema or not args.constraints:
        raise ReproError("--shards requires --schema and --constraints")
    _check_shard_flags(args)
    if args.shard_chaos and args.fault_policy is None:
        # chaos without a policy would raise on the first tombstone
        # alert; quarantine keeps the degraded-mode ledger visible
        args.fault_policy = "quarantine"
    schema = load_schema(args.schema)
    if not args.no_lint:
        lint_report = _lint_constraint_file(
            args.constraints, schema=schema,
            urgent=args.urgent or (),
            journal=bool(args.journal),
            checkpoint_every=args.checkpoint_every,
        )
        if lint_report and not args.quiet:
            print(f"lint ({len(lint_report)} diagnostic(s)):")
            print(lint_report.render_text())
    _require_file(args.history, "--history")
    stream = list(load_stream(args.history))
    monitor, registry = _build_sharded_monitor(
        args, schema, steps=len(stream), journal_root=args.journal
    )
    try:
        report = monitor.run(stream)
    finally:
        monitor.close()
        if (
            monitor.resilience is not None
            and monitor.resilience.quarantine is not None
        ):
            monitor.resilience.quarantine.close()
    if registry is not None:
        from repro.obs import write_metrics

        write_metrics(registry, args.metrics)
    _write_sharded_health(monitor, args)
    if args.quiet:
        return 0 if report.ok else 1
    print(
        f"checked {len(report)} states with "
        f"{len(monitor.constraints)} constraint(s) "
        f"[sharded x{args.shards}, key: {args.shard_key}]"
    )
    _print_shard_summary(monitor)
    _print_resilience_summary(monitor, args.quarantine_log)
    if report.ok:
        print("no violations")
        return 0
    _print_violations(report, args.max_violations)
    return 1


def _run_monitor_stream(monitor: Monitor, history):
    """Drive ``monitor`` over a history file.

    With a non-fail-fast fault policy, the file is read *leniently*:
    undecodable lines are routed through the monitor's fault boundary
    (counted, quarantined) instead of aborting the read, and decodable
    records flow on so one bad line costs one step, not the run.
    """
    _require_file(history, "--history")
    resilience = monitor.resilience
    if resilience is None or resilience.policy.value == "fail_fast":
        return monitor.run(load_stream(history))
    from repro.core.violations import RunReport
    from repro.db.storage import StreamFault, iter_stream_lenient

    report = RunReport()
    for item in iter_stream_lenient(history):
        if isinstance(item, StreamFault):
            report.add(
                monitor.record_fault(
                    "decode",
                    f"line {item.lineno}: {item.reason}",
                    payload=item.line,
                )
            )
        else:
            report.add(monitor.step(item[0], item[1]))
    return report


def _print_resilience_summary(monitor: Monitor, quarantine_path) -> None:
    resilience = monitor.resilience
    if resilience is None:
        return
    summary = resilience.summary()
    faults = summary["faults"]
    if not faults and not summary["degraded_steps"]:
        return
    parts = [f"{count} {kind}" for kind, count in faults.items()]
    line = (
        f"faults: {', '.join(parts) if parts else 'none'} "
        f"(policy: {summary['policy']}, skipped {summary['skipped']} "
        f"step(s))"
    )
    if summary["quarantined"]:
        line += f"; quarantined {summary['quarantined']} record(s)"
        if quarantine_path:
            line += f" -> {quarantine_path}"
    if summary["degraded_steps"]:
        line += f"; degraded {summary['degraded_steps']} step(s)"
    print(line)


def _enable_cli_telemetry(monitor: Monitor, args) -> None:
    """Arm event-time telemetry when ``--slo``/``--health`` ask for it."""
    slo = getattr(args, "slo", None)
    if slo is None and getattr(args, "health", None) is None:
        return
    if slo is not None:
        _require_file(slo, "--slo")
    monitor.enable_telemetry(slo=slo)


def _enable_cli_statewatch(monitor: Monitor, args) -> None:
    """Arm the state observatory for ``--statewatch/--flight``."""
    if not (
        getattr(args, "statewatch", False)
        or getattr(args, "flight", None)
        or getattr(args, "state_out", None)
    ):
        return
    monitor.enable_statewatch(flight=getattr(args, "flight", None))


def _print_state_summary(monitor: Monitor, flight_path=None) -> None:
    watch = monitor.statewatch
    if watch is None:
        return
    checker = monitor.checker
    report = watch.bound_report(checker)
    total = sum(entry["tuples"] for entry in report.values())
    print(
        f"state: {total} aux tuple(s) across {len(report)} temporal "
        f"node(s) after {watch.steps_observed} step(s)"
    )
    for label, entry in report.items():
        verdict = (
            "within bound" if entry["within"]
            else f"OVER BOUND ({entry['breaches']} breach step(s))"
        )
        print(
            f"  {label}: {entry['tuples']} tuple(s), "
            f"{entry['valuations']} valuation(s), bound "
            f"{entry['bound']} -> {verdict}"
        )
    for alert in watch.alerts:
        print(f"state alert [{alert.severity}]: {alert!r}")
    flight = watch.flight
    if flight is not None and flight.dump_count:
        print(
            f"flight: {flight.dump_count} dump(s), last reason "
            f"{flight.last_reason!r} -> {flight_path or flight.path}"
        )
    if flight is not None and flight.last_error is not None:
        print(
            f"warning: flight recorder could not write "
            f"{flight.path}: {flight.last_error}",
            file=sys.stderr,
        )


def _write_state_snapshot(monitor: Monitor, args) -> None:
    path = getattr(args, "state_out", None)
    if not path:
        return
    from repro.obs import write_state

    try:
        write_state(monitor.statewatch.snapshot(monitor.checker), path)
    except OSError as exc:
        raise ReproError(f"cannot write state snapshot: {exc}") from exc


def _write_health_snapshot(monitor: Monitor, args) -> None:
    path = getattr(args, "health", None)
    if not path:
        return
    from repro.obs import write_health

    try:
        write_health(monitor.health(), path)
    except OSError as exc:
        raise ReproError(f"cannot write health snapshot: {exc}") from exc


def _print_slo_summary(monitor: Monitor) -> None:
    telemetry = monitor.telemetry
    if telemetry is None or telemetry.slo is None:
        return
    engine = telemetry.slo
    for alert in engine.alerts:
        print(
            f"slo alert [{alert.severity}]: {alert.slo} burning "
            f"{alert.burn_rate:.1f}x over {alert.window} step(s) "
            f"(fired at step {alert.step})"
        )
    for entry in engine.summary():
        total = entry["good"] + entry["bad"]
        print(
            f"slo {entry['name']}: {entry['state']} "
            f"(budget {entry['budget_remaining'] * 100:.1f}% remaining, "
            f"{entry['bad']}/{total} bad step(s))"
        )


def _require_file(path, flag: str) -> None:
    """Fail with a clean diagnostic before a lazy reader tracebacks."""
    if not Path(path).is_file():
        raise ReproError(f"cannot read {flag} {path}: no such file")


def _parse_skews(specs) -> Optional[dict]:
    """``--skew NAME=DELTA`` occurrences into a per-source offset map."""
    if not specs:
        return None
    skews = {}
    for spec in specs:
        name, sep, delta = spec.partition("=")
        if not sep or not name:
            raise ReproError(f"--skew wants NAME=DELTA, got {spec!r}")
        try:
            skews[name] = int(delta)
        except ValueError as exc:
            raise ReproError(
                f"--skew delta must be an integer: {spec!r}"
            ) from exc
    return skews


def _parse_source_spec(spec: str, index: int):
    """``--source [NAME=]FILE`` into ``(name, path)``.

    The prefix is only treated as a name when it looks like one (no
    path separators), so ``--source data/a=b.jsonl`` stays a path.
    """
    name, sep, path = spec.partition("=")
    if sep and name and "/" not in name and "\\" not in name:
        return name, path
    return f"feed{index}", spec


def _feed_history(monitor: Monitor, args: argparse.Namespace):
    """Drive ``check --tolerate-disorder`` through the ingest frontier."""
    from repro.db.storage import read_arrivals
    from repro.ingest import IterableSource

    _require_file(args.history, "--history")
    source = IterableSource(
        read_arrivals(args.history), name="history", multiplexed=True
    )
    return monitor.feed(
        [source],
        watermark=args.watermark or 0,
        max_lateness=args.max_lateness,
        skew=_parse_skews(args.skew),
        retry=args.retry,
    )


def _print_ingest_summary(monitor: Monitor, quarantine_path=None) -> None:
    pipeline = monitor.ingest
    if pipeline is None:
        return
    summary = pipeline.summary()
    reorder = summary["reorder"]
    queue = summary["queue"]
    arrivals = (
        reorder["accepted"] + reorder["late"]
        + reorder["duplicates"] + reorder["invalid"]
    )
    line = (
        f"ingest: {arrivals} arrival(s) from "
        f"{len(summary['sources'])} source(s) -> {reorder['emitted']} "
        f"ordered state(s) (watermark {reorder['watermark']})"
    )
    excluded = [
        f"{reorder[key]} {key}"
        for key in ("late", "duplicates", "invalid")
        if reorder[key]
    ]
    if queue["shed"]:
        excluded.append(f"{queue['shed']} shed")
    if excluded:
        line += "; excluded: " + ", ".join(excluded)
        if quarantine_path:
            line += f" -> {quarantine_path}"
    if reorder["merges"]:
        line += f"; {reorder['merges']} same-time merge(s)"
    if reorder["forced"]:
        line += f"; {reorder['forced']} forced emission(s)"
    if summary["retries"]:
        line += f"; {summary['retries']} source retry(ies)"
    if summary["dead_sources"]:
        line += (
            f"; dead source(s): {', '.join(summary['dead_sources'])}"
        )
    print(line)


def _print_violations(report, max_violations: int) -> None:
    rows = []
    for violation in report.violations[:max_violations]:
        witnesses = "; ".join(
            ", ".join(f"{k}={v!r}" for k, v in w.items()) or "(closed)"
            for w in violation.witness_dicts()[:3]
        )
        rows.append(
            [violation.constraint, violation.time, violation.index, witnesses]
        )
    print(
        format_table(
            ["constraint", "time", "state", "witnesses"],
            rows,
            title=f"{report.violation_count} violation(s)",
        )
    )
    remaining = report.violation_count - max_violations
    if remaining > 0:
        print(f"... and {remaining} more")


def _lint_constraint_file(
    constraints_path,
    schema=None,
    config=None,
    urgent: Sequence[str] = (),
    journal: bool = False,
    checkpoint_every: Optional[int] = None,
):
    """Lint a constraint file plus optional monitor configuration.

    The one code path shared by the ``lint`` subcommand and the
    pre-monitoring pass of ``check``.
    """
    from repro.lint import Linter

    linter = Linter(schema, config)
    report, parsed = linter.lint_text(Path(constraints_path).read_text())
    if urgent or checkpoint_every is not None:
        names = [name for name, _formula in parsed]
        report = report.extend(linter.lint_monitor_config(
            names, urgent=urgent, journal=journal,
            checkpoint_every=checkpoint_every,
        ).diagnostics)
    return report


def _command_lint(args: argparse.Namespace) -> int:
    from repro.lint import RULES, LintConfig

    if args.list_rules:
        print(format_table(
            ["code", "name", "severity", "description"],
            [[r.code, r.name, str(r.default_severity), r.description]
             for r in RULES],
        ))
        return 0
    if not args.constraints:
        raise ReproError("--constraints is required unless --list-rules")
    try:
        config = LintConfig.build(
            disable=args.disable or (),
            clock_granularity=args.granularity,
            require_bounded=args.require_bounded,
            state_budget=args.state_budget,
            shard_key=args.shard_key,
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    schema = load_schema(args.schema) if args.schema else None
    report = _lint_constraint_file(
        args.constraints,
        schema=schema,
        config=config,
        urgent=args.urgent or (),
        journal=args.journal,
        checkpoint_every=args.checkpoint_every,
    )
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return report.exit_code


#: Lint codes owned by the planner-backed rules.
_PLAN_CODES = frozenset({"RTC013", "RTC014", "RTC015", "RTC016"})


def _parse_relation_sizes(specs) -> dict:
    """Parse repeated ``--relation-size REL=N`` hints."""
    sizes: dict = {}
    for spec in specs or ():
        name, sep, value = spec.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ReproError(
                f"--relation-size expects REL=N, got {spec!r}"
            )
        try:
            count = int(value)
        except ValueError:
            raise ReproError(
                f"--relation-size {spec!r}: {value!r} is not an integer"
            ) from None
        if count < 1:
            raise ReproError(
                f"--relation-size {spec!r}: size must be >= 1"
            )
        sizes[name] = count
    return sizes


def _command_plan(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.plan import build_plan
    from repro.core.bounds import DEFAULT_RELATION_SIZE
    from repro.lint import LintConfig, Linter, LintReport

    try:
        config = LintConfig.build(
            state_budget=args.state_budget,
            shard_key=args.shard_key,
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    schema = load_schema(args.schema) if args.schema else None
    relation_sizes = _parse_relation_sizes(args.relation_size)
    default_size = (
        args.default_relation_size
        if args.default_relation_size is not None
        else DEFAULT_RELATION_SIZE
    )
    if default_size < 1:
        raise ReproError("--default-relation-size must be >= 1")
    linter = Linter(schema, config)
    try:
        constraints_text = Path(args.constraints).read_text()
    except OSError as exc:
        raise ReproError(
            f"cannot read constraints {args.constraints}: {exc}"
        ) from exc
    full_report, parsed = linter.lint_text(constraints_text)
    report = LintReport(
        [d for d in full_report if d.code in _PLAN_CODES]
    )
    plan = build_plan(parsed, relation_sizes, default_size)
    if args.format == "json":
        document = plan.to_dict()
        document["diagnostics"] = [d.to_dict() for d in report]
        print(json.dumps(document, indent=2))
    else:
        print(plan.render_text())
        if report:
            print(f"diagnostics ({len(report)}):")
            print(report.render_text())
    return report.exit_code


def _command_check(args: argparse.Namespace) -> int:
    if args.shards is not None:
        return _command_check_sharded(args)
    if args.shard_key or args.shard_chaos:
        raise ReproError(
            "--shard-key/--shard-chaos require --shards"
        )
    tolerant = bool(
        args.tolerate_disorder
        or args.watermark is not None
        or args.max_lateness is not None
        or args.skew
        or args.retry is not None
    )
    if tolerant and not args.fault_policy and not args.quarantine_log:
        # disorder tolerance is pointless if the first surviving fault
        # aborts the run; default the step boundary to quarantine too
        args.fault_policy = "quarantine"
    instrumentation, tracer, registry = _build_instrumentation(args)
    if args.resume_from:
        monitor = Monitor.resume(args.resume_from)
        monitor.instrument(instrumentation)
        if args.fault_policy or args.quarantine_log:
            monitor._configure_fault_policy(
                args.fault_policy, args.quarantine_log
            )
        if args.step_deadline is not None:
            monitor._configure_deadline(
                args.step_deadline, args.urgent or ()
            )
    else:
        if not args.schema or not args.constraints:
            raise ReproError(
                "--schema and --constraints are required unless "
                "--resume-from is given"
            )
        schema = load_schema(args.schema)
        if not args.no_lint:
            lint_report = _lint_constraint_file(
                args.constraints,
                schema=schema,
                urgent=args.urgent or (),
                journal=bool(args.journal),
                checkpoint_every=args.checkpoint_every,
            )
            if lint_report and not args.quiet:
                print(f"lint ({len(lint_report)} diagnostic(s)):")
                print(lint_report.render_text())
        monitor = Monitor(
            schema,
            engine=args.engine,
            instrumentation=instrumentation,
            fault_policy=args.fault_policy,
            quarantine_log=args.quarantine_log,
            step_deadline=args.step_deadline,
            urgent=args.urgent or (),
            share_subformulas=args.share_subformulas,
        )
        monitor.add_constraints_text(Path(args.constraints).read_text())
    _enable_cli_telemetry(monitor, args)
    _enable_cli_statewatch(monitor, args)
    if args.journal:
        monitor.enable_journal(
            args.journal,
            checkpoint_every=(
                args.checkpoint_every
                if args.checkpoint_every is not None else 64
            ),
        )
    try:
        if tolerant:
            report = _feed_history(monitor, args)
        else:
            report = _run_monitor_stream(monitor, args.history)
    finally:
        if monitor.journal is not None:
            monitor.journal.close()
        if (
            monitor.resilience is not None
            and monitor.resilience.quarantine is not None
        ):
            monitor.resilience.quarantine.close()
    if args.save_checkpoint:
        monitor.save(args.save_checkpoint)
    try:
        if tracer is not None:
            tracer.dump_jsonl(args.trace)
        if registry is not None:
            from repro.obs import write_metrics

            write_metrics(registry, args.metrics)
    except OSError as exc:
        raise ReproError(f"cannot write telemetry: {exc}") from exc
    _write_health_snapshot(monitor, args)
    _write_state_snapshot(monitor, args)
    if args.quiet:
        return 0 if report.ok else 1
    print(
        f"checked {len(report)} states with "
        f"{len(monitor.constraints)} constraint(s) "
        f"[engine: {args.engine}]"
    )
    _print_ingest_summary(monitor, args.quarantine_log)
    _print_resilience_summary(monitor, args.quarantine_log)
    _print_slo_summary(monitor)
    _print_state_summary(monitor, args.flight)
    if report.ok:
        print("no violations")
        return 0
    _print_violations(report, args.max_violations)
    return 1


def _command_ingest(args: argparse.Namespace) -> int:
    from repro.db.storage import read_arrivals
    from repro.ingest import IterableSource

    sharded = args.shards is not None
    if not sharded and (args.shard_key or args.shard_chaos):
        raise ReproError(
            "--shard-key/--shard-chaos require --shards"
        )
    schema = load_schema(args.schema)
    tracer = None
    if sharded:
        args.fault_policy = args.fault_policy or "quarantine"
        _check_shard_flags(args)
        arrivals = 0
        for index, spec in enumerate(args.source):
            _, path = _parse_source_spec(spec, index)
            _require_file(path, "--source")
            with open(path) as fh:
                arrivals += sum(1 for _ in fh)
        monitor, registry = _build_sharded_monitor(
            args, schema, steps=arrivals
        )
    else:
        instrumentation, tracer, registry = _build_instrumentation(args)
        monitor = Monitor(
            schema,
            engine=args.engine,
            instrumentation=instrumentation,
            fault_policy=args.fault_policy or "quarantine",
            quarantine_log=args.quarantine_log,
        )
        monitor.add_constraints_text(Path(args.constraints).read_text())
        _enable_cli_telemetry(monitor, args)
        _enable_cli_statewatch(monitor, args)
    sources = []
    for index, spec in enumerate(args.source):
        name, path = _parse_source_spec(spec, index)
        _require_file(path, "--source")
        sources.append(IterableSource(
            read_arrivals(path, default_source=name),
            name=name, multiplexed=True,
        ))
    try:
        report = monitor.feed(
            sources,
            watermark=args.watermark,
            max_lateness=args.max_lateness,
            skew=_parse_skews(args.skew),
            retry=args.retry,
            queue_capacity=args.queue_capacity,
            backpressure=args.backpressure,
        )
    finally:
        if sharded:
            monitor.close()
        if (
            monitor.resilience is not None
            and monitor.resilience.quarantine is not None
        ):
            monitor.resilience.quarantine.close()
    try:
        if tracer is not None:
            tracer.dump_jsonl(args.trace)
        if registry is not None:
            from repro.obs import write_metrics

            write_metrics(registry, args.metrics)
    except OSError as exc:
        raise ReproError(f"cannot write telemetry: {exc}") from exc
    if sharded:
        _write_sharded_health(monitor, args)
    else:
        _write_health_snapshot(monitor, args)
        _write_state_snapshot(monitor, args)
    if args.quiet:
        return 0 if report.ok else 1
    engine_note = (
        f"sharded x{args.shards}, key: {args.shard_key}"
        if sharded else f"engine: {args.engine}"
    )
    print(
        f"checked {len(report)} states with "
        f"{len(monitor.constraints)} constraint(s) "
        f"[{engine_note}]"
    )
    _print_ingest_summary(monitor, args.quarantine_log)
    if sharded:
        _print_shard_summary(monitor)
    _print_resilience_summary(monitor, args.quarantine_log)
    if not sharded:
        _print_slo_summary(monitor)
        _print_state_summary(monitor, args.flight)
    if report.ok:
        print("no violations")
        return 0
    _print_violations(report, args.max_violations)
    return 1


def _command_health(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        load_health,
        merge_health,
        render_health_text,
        write_health,
    )

    if args.snapshots and args.snapshots[0] == "render":
        return _render_snapshots(args)
    docs = [load_health(path) for path in args.snapshots]
    merged = merge_health(docs)
    if args.merge_out:
        try:
            write_health(merged, args.merge_out)
        except OSError as exc:
            raise ReproError(
                f"cannot write merged snapshot: {exc}"
            ) from exc
    exhausted = [
        entry["name"] for entry in merged["slo"]
        if entry["state"] == "exhausted"
    ]
    if not args.quiet:
        if args.format == "json":
            print(json.dumps(merged, indent=2, sort_keys=True))
        else:
            if len(docs) > 1:
                print(f"merged {len(docs)} snapshot(s)")
            print(render_health_text(merged))
    if exhausted:
        if not args.quiet:
            print(
                f"FAIL: SLO budget(s) exhausted: {', '.join(exhausted)}",
                file=sys.stderr,
            )
        return 1
    return 0


def _render_snapshots(args: argparse.Namespace) -> int:
    """``health render SNAP...``: render snapshots without merging.

    Accepts both ``repro-health/1`` and ``repro-state/1`` documents —
    the two snapshot families share the same render discipline — and
    never gates on budget state (always exit 0).
    """
    import json

    from repro.obs import (
        STATE_VERSION,
        load_health,
        render_health_text,
        render_state_text,
        validate_state,
    )

    paths = args.snapshots[1:]
    if not paths:
        raise ReproError("health render wants at least one snapshot file")
    for path in paths:
        _require_file(path, "snapshot")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ReproError(
                f"cannot read snapshot {path}: {exc}"
            ) from exc
        if isinstance(raw, dict) and raw.get("version") == STATE_VERSION:
            doc, render = validate_state(raw), render_state_text
        else:
            doc, render = load_health(path), render_health_text
        if args.quiet:
            continue
        if args.format == "json":
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print(render(doc))
    return 0


def _command_state(args: argparse.Namespace) -> int:
    import json

    from repro.obs import render_state_text, write_state

    schema = load_schema(args.schema)
    monitor = Monitor(schema, engine=args.engine)
    monitor.add_constraints_text(Path(args.constraints).read_text())
    watch = monitor.enable_statewatch(
        sample_every=args.sample_every,
        top_k=args.top_k,
        flight=args.flight,
    )
    _require_file(args.history, "--history")
    if args.every < 1:
        raise ReproError("--every must be >= 1")
    violations = 0
    for time, txn in load_stream(args.history):
        report = monitor.step(time, txn)
        violations += len(report.violations)
        if args.mode == "watch" and watch.steps_observed % args.every == 0:
            checker = monitor.checker
            print(
                f"t={time} step={watch.steps_observed}: "
                f"{checker.aux_tuple_count()} aux tuple(s), "
                f"{checker.aux_valuation_count()} valuation(s), "
                f"{sum(watch.bound_breaches.values())} breach step(s)"
            )
    snapshot = watch.snapshot(monitor.checker)
    if args.out:
        try:
            write_state(snapshot, args.out)
        except OSError as exc:
            raise ReproError(
                f"cannot write state snapshot: {exc}"
            ) from exc
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    elif args.mode == "top":
        hitters = snapshot["heavy_hitters"]
        if not any(hitters.values()):
            print("no heavy hitters (no auxiliary valuations sampled)")
        for label, entries in hitters.items():
            if not entries:
                continue
            print(f"node {label}:")
            for entry in entries[: args.top_k]:
                shown = ", ".join(repr(v) for v in entry["valuation"])
                print(
                    f"  ({shown}): weight {entry['weight']} "
                    f"(error <= {entry['error']})"
                )
    elif args.mode == "bound-check":
        for label, entry in snapshot["bounds"].items():
            verdict = (
                "within bound" if entry["within"]
                else f"OVER BOUND ({entry['breaches']} breach step(s))"
            )
            print(
                f"{label}: {entry['tuples']} tuple(s) vs bound "
                f"{entry['bound']} -> {verdict}"
            )
    else:
        print(render_state_text(snapshot))
    if args.mode == "watch" and violations:
        print(f"{violations} violation(s) during replay")
    if args.mode == "bound-check":
        breached = sum(watch.bound_breaches.values())
        if breached:
            print(
                f"FAIL: analytic bound exceeded on {breached} step(s)",
                file=sys.stderr,
            )
            return 1
        print("all temporal nodes stayed within their analytic bounds")
    return 0


def _command_recover(args: argparse.Namespace) -> int:
    monitor, result = Monitor.recover(args.journal)
    if args.fault_policy:
        monitor._configure_fault_policy(args.fault_policy, None)
    if not args.quiet:
        print(
            f"recovered from {args.journal}: checkpoint at "
            f"t={result.checkpoint_time}, replayed "
            f"{result.journal_entries} journal record(s), "
            f"now at t={monitor.now}"
        )
    # replayed violations were already reported before the crash; the
    # verdict covers only states checked for the first time here
    if not args.history:
        if monitor.journal is not None:
            monitor.journal.close()
        return 0
    _require_file(args.history, "--history")
    resumed_at = monitor.now
    from repro.core.violations import RunReport

    continued = RunReport()
    for t, txn in load_stream(args.history):
        if resumed_at is not None and t <= resumed_at:
            continue  # already covered by checkpoint + journal
        continued.add(monitor.step(t, txn))
    if monitor.journal is not None:
        monitor.journal.close()
    if not args.quiet:
        print(
            f"continued over {len(continued)} remaining state(s) "
            f"from {args.history}"
        )
    if args.quiet:
        return 0 if continued.ok else 1
    if continued.ok:
        print("no new violations")
        return 0
    _print_violations(continued, args.max_violations)
    return 1


def _command_scrub(args: argparse.Namespace) -> int:
    import json

    from repro.core.persist import RunJournal
    from repro.core.persist import recover as _recover
    from repro.errors import RecoveryError
    from repro.store import (
        SYNC_FORCE,
        find_store_directories,
        repair_tree,
        scrub_tree,
    )

    root = Path(args.directory)
    if not root.is_dir():
        raise ReproError(f"scrub: no such directory: {root}")
    stores = find_store_directories(root)
    if not stores:
        raise ReproError(
            f"scrub: no durable store under {root} (expected the "
            f"checkpoint/segment layout written by 'check --journal')"
        )

    report = scrub_tree(root)
    payload = {"scrub": report.to_dict()}
    if not args.quiet and args.format == "text":
        print(
            f"scrub {root}: {report.files_checked} file(s), "
            f"{report.records_verified} record(s) verified, "
            f"{len(report.findings)} finding(s)"
        )
        for finding in report.findings:
            print(
                f"  {finding.path}: {finding.kind} — {finding.detail} "
                f"(repair: {finding.repair})"
            )
    if report.clean:
        if not args.quiet and args.format == "text":
            print("clean")
        if args.format == "json":
            print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not args.repair:
        if args.format == "json":
            print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if report.repairable else 2

    repair = repair_tree(root)
    payload["repair"] = repair.to_dict()
    if not args.quiet and args.format == "text":
        for path, action in repair.actions:
            print(f"  repaired {path}: {action}")
        for finding in repair.unrepaired:
            print(f"  UNREPAIRED {finding.path}: {finding.kind}")

    # file-level surgery done; re-checkpoint through a full recovery so
    # the directory regains its generation redundancy (a promoted
    # fallback leaves no spare until the next checkpoint commits)
    recovered = []
    failures = []
    for directory in stores:
        try:
            result = _recover(directory)
            journal = RunJournal(directory, sync=SYNC_FORCE)
            try:
                journal.attach(result.checker)
            finally:
                journal.close()
            recovered.append(
                {
                    "directory": str(directory),
                    "checkpoint_time": result.checkpoint_time,
                    "journal_entries": result.journal_entries,
                    "torn_records": result.torn_records,
                }
            )
        except (RecoveryError, ReproError) as exc:
            failures.append({"directory": str(directory), "error": str(exc)})
    payload["recovered"] = recovered
    payload["failures"] = failures

    ok = repair.complete and not failures
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif not args.quiet:
        for entry in recovered:
            print(
                f"  re-checkpointed {entry['directory']}: recovered to "
                f"t={entry['checkpoint_time']}, replayed "
                f"{entry['journal_entries']} record(s)"
            )
        for entry in failures:
            print(f"  FAILED {entry['directory']}: {entry['error']}")
        print("repaired" if ok else "unrepairable damage remains")
    return 0 if ok else 2


def _command_generate(args: argparse.Namespace) -> int:
    factory = WORKLOADS[args.workload]
    if args.workload == "random":
        workload = factory()
    else:
        workload = factory(violation_rate=args.violation_rate)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    dump_schema(workload.schema, out / "schema.json")
    stream = list(workload.stream(args.length, seed=args.seed))
    dump_stream(stream, out / "history.jsonl")
    constraint_text = "\n".join(
        f"{c.name}: {c.formula};" for c in workload.constraints
    )
    (out / "constraints.txt").write_text(constraint_text + "\n")
    print(
        f"wrote {args.workload} workload ({args.length} transitions, "
        f"seed {args.seed}) to {out}/"
    )
    if args.arrivals:
        import json

        from repro.db.storage import dump_arrivals
        from repro.resilience import plan_ingest_chaos

        try:
            plan = plan_ingest_chaos(
                stream,
                seed=args.chaos_seed,
                watermark=args.chaos_watermark,
                duplicate_rate=args.duplicate_rate,
                late_events=args.late_events,
                sources=args.sources,
                max_skew=args.max_skew,
            )
        except ValueError as exc:
            raise ReproError(str(exc)) from exc
        dump_arrivals(plan.arrivals, out / "arrivals.jsonl")
        (out / "ingest.json").write_text(
            json.dumps(plan.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(
            f"wrote perturbed delivery ({len(plan.arrivals)} "
            f"arrival(s), watermark {plan.watermark}, "
            f"{len(plan.expected_late)} late, "
            f"{plan.expected_duplicates} replay(s)) to "
            f"{out}/arrivals.jsonl (+ ingest.json manifest)"
        )
    # generated sets must be lint-clean; surface anything that is not
    lint_report = workload.lint()
    if lint_report.warnings or lint_report.errors:
        print(f"lint ({len(lint_report)} diagnostic(s)):")
        print(lint_report.render_text())
        return lint_report.exit_code
    return 0


def _constraint_trace_stats(events) -> dict:
    """Per-constraint observed figures from ``evaluate`` spans."""
    stats: dict = {}
    for event in events:
        if event.get("name") != "evaluate":
            continue
        entry = stats.setdefault(
            event.get("constraint"),
            {
                "evals": 0, "seconds": 0.0, "max": 0.0,
                "violations": 0, "durations": [],
            },
        )
        entry["evals"] += 1
        entry["seconds"] += event.get("duration", 0.0)
        entry["max"] = max(entry["max"], event.get("duration", 0.0))
        entry["violations"] += event.get("violations", 0)
        entry["durations"].append(event.get("duration", 0.0))
    return stats


def _load_trace(path) -> list:
    """Read a JSONL trace, mapping I/O and parse failures to ReproError."""
    from repro.obs import read_trace

    try:
        return read_trace(path)
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read trace {path}: {exc}") from exc


def _command_analyze(args: argparse.Namespace) -> int:
    text = Path(args.constraints).read_text()
    observed = {}
    if args.trace:
        observed = _constraint_trace_stats(_load_trace(args.trace))
    rows = []
    for name, formula in parse_constraints(text):
        try:
            constraint = Constraint(name, formula)
        except ReproError as exc:
            rows.append([name, "UNSAFE", None, None, None, str(exc)[:60]])
            continue
        if args.verbose:
            from repro.core.explain import explain

            print(explain(constraint))
            print()
            continue
        prof = profile(constraint.violation_formula)
        horizon = "*" if prof.horizon is None else prof.horizon
        row = [
            name,
            "ok",
            prof.temporal_nodes,
            prof.temporal_depth,
            horizon,
            str(formula)[:60],
        ]
        if args.trace:
            entry = observed.get(name)
            row += (
                [
                    entry["evals"],
                    round(entry["seconds"] / entry["evals"] * 1e6, 1),
                    entry["violations"],
                ]
                if entry
                else [0, None, None]
            )
        rows.append(row)
    if rows or not args.verbose:
        headers = ["constraint", "status", "nodes", "depth", "horizon",
                   "formula"]
        if args.trace:
            headers += ["evals", "mean us", "violations"]
        print(format_table(headers, rows))
    return 0


def _format_seconds(seconds: float) -> str:
    """Human-scale duration for histogram bucket labels."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:g}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:g}ms"
    return f"{seconds:g}s"


def _json_hist_quantile(entry: dict, q: float):
    """Quantile estimate from a JSON-dump histogram series entry."""
    count = entry.get("count", 0)
    if not count:
        return None
    rank = q * count
    previous = 0
    last_finite = None
    for bucket in entry.get("buckets", []):
        bound = bucket["le"]
        if bound == "+Inf":
            break
        last_finite = bound
        if bucket["count"] >= rank and bucket["count"] > previous:
            return bound
        previous = bucket["count"]
    return last_finite


def _print_event_time_sections(path, percentiles: bool) -> None:
    """Event-time stage/lag tables from a JSON metrics dump."""
    import json

    from repro.obs.telemetry import EVENT_FRONTIER_LAG, STAGE_FAMILIES

    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ReproError(
            f"cannot read metrics dump {path} (need the .json form): {exc}"
        ) from exc
    families = {f.get("name"): f for f in doc.get("metrics", [])}
    quantiles = (0.5, 0.9, 0.99) if percentiles else (0.5, 0.95)
    rows = []
    for stage, family_name in STAGE_FAMILIES.items():
        family = families.get(family_name)
        if family is None or not family.get("series"):
            continue
        entry = family["series"][0]
        if not entry.get("count"):
            continue
        row = [stage, entry["count"],
               round(entry["sum"] / entry["count"] * 1e6, 1)]
        for q in quantiles:
            bound = _json_hist_quantile(entry, q)
            row.append(None if bound is None else round(bound * 1e6, 1))
        rows.append(row)
    if rows:
        print()
        print(format_table(
            ["stage", "events", "mean us"]
            + [f"p{int(q * 100)} us" for q in quantiles],
            rows,
            title="event-time stage latency (arrival -> verdict)",
        ))
    lag = families.get(EVENT_FRONTIER_LAG)
    if lag is not None and lag.get("series"):
        entry = lag["series"][0]
        if entry.get("count"):
            parts = [
                f"p{int(q * 100)} {_json_hist_quantile(entry, q)}"
                for q in quantiles
            ]
            print(
                f"\nwatermark frontier lag: {', '.join(parts)} "
                f"clock unit(s) over {entry['count']} sample(s)"
            )


def _command_stats(args: argparse.Namespace) -> int:
    from repro.analysis.ascii_plot import bar_chart
    from repro.obs import DEFAULT_LATENCY_BUCKETS, percentile

    events = _load_trace(args.trace)
    if not events:
        # an empty trace is a valid (if dull) run record, not an error
        print(f"no spans recorded in {args.trace}")
        return 0
    steps = [e for e in events if e.get("name") == "step"]
    if not steps:
        print(f"no step spans in {args.trace}")
        return 0
    durations = sorted(e.get("duration", 0.0) for e in steps)
    total = sum(durations)
    engines = sorted({e.get("engine") for e in steps if e.get("engine")})
    violations = sum(e.get("violations", 0) for e in steps)
    quantiles = (50, 90, 99) if args.percentiles else (50, 95)
    print(
        format_table(
            ["steps", "engine", "total ms", "mean us"]
            + [f"p{q} us" for q in quantiles]
            + ["max us", "violating steps"],
            [[
                len(durations),
                ",".join(engines) or "-",
                round(total * 1e3, 2),
                round(total / len(durations) * 1e6, 1),
            ] + [
                round(percentile(durations, q) * 1e6, 1) for q in quantiles
            ] + [
                round(durations[-1] * 1e6, 1),
                sum(1 for e in steps if e.get("violations", 0)),
            ]],
            title=f"trace summary ({violations} violation(s) reported)",
        )
    )

    per_constraint = _constraint_trace_stats(events)
    if per_constraint:
        headers = ["constraint", "evals", "mean us"]
        if args.percentiles:
            headers += [f"p{q} us" for q in (50, 90, 99)]
        headers += ["max us", "violations"]
        rows = []
        for name, entry in sorted(per_constraint.items()):
            row = [
                name,
                entry["evals"],
                round(entry["seconds"] / entry["evals"] * 1e6, 1),
            ]
            if args.percentiles:
                row += [
                    round(percentile(entry["durations"], q) * 1e6, 1)
                    for q in (50, 90, 99)
                ]
            row += [round(entry["max"] * 1e6, 1), entry["violations"]]
            rows.append(row)
        print()
        print(
            format_table(
                headers,
                rows,
                title="per-constraint evaluation",
            )
        )

    # fixed-bucket latency histogram over the non-empty range
    counts = [0] * (len(DEFAULT_LATENCY_BUCKETS) + 1)
    for duration in durations:
        for i, bound in enumerate(DEFAULT_LATENCY_BUCKETS):
            if duration <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    labels = [
        "<=" + _format_seconds(b) for b in DEFAULT_LATENCY_BUCKETS
    ] + [">" + _format_seconds(DEFAULT_LATENCY_BUCKETS[-1])]
    populated = [i for i, c in enumerate(counts) if c]
    lo, hi = populated[0], populated[-1]
    print()
    print(
        bar_chart(
            labels[lo:hi + 1],
            counts[lo:hi + 1],
            width=args.width,
            title="step latency distribution",
        )
    )
    if args.metrics:
        _print_event_time_sections(args.metrics, args.percentiles)
    return 0


def _find_bench_dir(override: Optional[str]) -> Path:
    """Locate the directory holding ``_experiments.py`` + bench modules."""
    candidates = (
        [Path(override)]
        if override
        else [
            Path.cwd() / "benchmarks",
            Path(__file__).resolve().parents[2] / "benchmarks",
        ]
    )
    for candidate in candidates:
        if (candidate / "_experiments.py").is_file():
            return candidate.resolve()
    raise ReproError(
        "cannot locate the benchmarks directory "
        "(run from the repo root or pass --bench-dir)"
    )


def _bench_runner(bench_dir: Path):
    """Import ``benchmarks/_experiments.py`` as the experiment runner."""
    import importlib

    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    module = importlib.import_module("_experiments")
    loaded = Path(getattr(module, "__file__", "")).resolve().parent
    if loaded != bench_dir:
        raise ReproError(
            f"a different _experiments module is already loaded "
            f"(from {loaded}); cannot run {bench_dir}"
        )
    return module


def _experiment_order(ids) -> List[str]:
    """Experiment ids in numeric order (e1, e2, ..., e12)."""
    def key(exp: str):
        digits = "".join(ch for ch in exp if ch.isdigit())
        return (int(digits) if digits else 0, exp)

    return sorted(ids, key=key)


def _command_bench(args: argparse.Namespace) -> int:
    bench_dir = _find_bench_dir(args.bench_dir)
    runner = _bench_runner(bench_dir)
    known = _experiment_order(runner.EXPERIMENTS)
    if args.all:
        selected = known
    elif args.experiment:
        unknown = [e for e in args.experiment if e not in runner.EXPERIMENTS]
        if unknown:
            raise ReproError(
                f"unknown experiment(s): {', '.join(unknown)} "
                f"(known: {', '.join(known)})"
            )
        selected = _experiment_order(set(args.experiment))
    else:
        raise ReproError(
            f"pass --all or -e <exp> (known: {', '.join(known)})"
        )
    out_dir = Path(args.out) if args.out else bench_dir / "results"
    failures = []
    for exp in selected:
        recorder = runner.run_experiment(
            exp,
            profile=args.profile,
            out_dir=out_dir,
            json_artifact=args.json,
            metrics=args.metrics,
        )
        written = f"{out_dir / (exp + '.txt')}"
        if args.json:
            from repro.obs.bench import artifact_path

            written += f", {artifact_path(out_dir, exp)}"
        print(f"[{exp}] {recorder.title} -> {written}")
        for failure in recorder.failures():
            failures.append((exp, failure))
            print(
                f"[{exp}] SHAPE FAILED: {failure['name']} "
                f"({failure.get('detail', '')})"
            )
    print(
        f"ran {len(selected)} experiment(s), profile={args.profile}, "
        f"{len(failures)} shape failure(s)"
    )
    if failures and args.strict:
        return 1
    return 0


def _command_perf(args: argparse.Namespace) -> int:
    from repro.obs.bench import read_artifact_dir
    from repro.obs.regress import compare_dirs, format_report

    baseline_dir = Path(args.check)
    try:
        baselines = read_artifact_dir(baseline_dir)
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read baselines: {exc}") from exc
    if not baselines:
        raise ReproError(f"no BENCH_*.json artifacts in {baseline_dir}")

    if args.candidate:
        candidate_dir = Path(args.candidate)
    else:
        import tempfile

        bench_dir = _find_bench_dir(args.bench_dir)
        runner = _bench_runner(bench_dir)
        candidate_dir = Path(
            args.out or tempfile.mkdtemp(prefix="repro-perf-")
        )
        for exp in _experiment_order(baselines):
            if exp not in runner.EXPERIMENTS:
                print(f"note: no experiment module for baseline {exp}")
                continue
            print(f"[{exp}] running candidate sweep ({args.profile}) ...")
            runner.run_experiment(
                exp,
                profile=args.profile,
                out_dir=candidate_dir,
                json_artifact=True,
            )
    try:
        comparisons, notes = compare_dirs(
            baseline_dir, candidate_dir, noise=args.noise
        )
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot compare artifacts: {exc}") from exc
    print(format_report(comparisons, notes))
    broken = [c.experiment for c in comparisons if c.shape_broken]
    regressed = [c.experiment for c in comparisons if c.regressions]
    if broken:
        print(
            f"\nFAIL: paper shape(s) broken in {', '.join(broken)}",
            file=sys.stderr,
        )
        return 1
    if regressed:
        message = f"timing regression(s) in {', '.join(regressed)}"
        if args.strict:
            print(f"\nFAIL: {message}", file=sys.stderr)
            return 1
        print(f"\nwarning: {message} (within shape bounds; not gating)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_arg_parser().parse_args(argv)
    try:
        if args.command == "check":
            return _command_check(args)
        if args.command == "ingest":
            return _command_ingest(args)
        if args.command == "lint":
            return _command_lint(args)
        if args.command == "plan":
            return _command_plan(args)
        if args.command == "generate":
            return _command_generate(args)
        if args.command == "stats":
            return _command_stats(args)
        if args.command == "health":
            return _command_health(args)
        if args.command == "state":
            return _command_state(args)
        if args.command == "bench":
            return _command_bench(args)
        if args.command == "perf":
            return _command_perf(args)
        if args.command == "recover":
            return _command_recover(args)
        if args.command == "scrub":
            return _command_scrub(args)
        return _command_analyze(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
