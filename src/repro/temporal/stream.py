"""Update streams: the input shape of the incremental checker.

An update stream is a sequence of ``(timestamp, transaction)`` pairs
with strictly increasing timestamps.  :class:`UpdateStream` is a thin
validated container offering the handful of manipulations the
workloads, benchmarks, and tests need (concatenation, slicing, time
shifting, replay to a history).
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
    overload,
)

from repro.db.database import DatabaseState
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.errors import HistoryError
from repro.temporal.clock import Timestamp, validate_successor
from repro.temporal.history import History

TimedTransaction = Tuple[Timestamp, Transaction]


def merge_streams(*streams: "UpdateStream") -> "UpdateStream":
    """Merge independently produced streams into one, by time.

    Transactions landing on the same timestamp are composed with
    net-effect semantics (:meth:`repro.db.transactions.Transaction.merged`),
    in argument order — the multi-source shape of real monitoring,
    where each subsystem reports its own updates.  Sources that touch
    the same tuple with opposite intent therefore never *conflict*:
    the later source in argument order wins (insert-then-delete nets
    to a delete, delete-then-insert to an insert).  Called with no
    arguments, the merge is the empty stream.
    """
    merged: Dict[Timestamp, Transaction] = {}
    for stream in streams:
        for t, txn in stream:
            if t in merged:
                merged[t] = merged[t].merged(txn)
            else:
                merged[t] = txn
    return UpdateStream(sorted(merged.items()))


class UpdateStream:
    """A validated, immutable sequence of timed transactions."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[TimedTransaction] = ()):
        validated: List[TimedTransaction] = []
        previous: Optional[Timestamp] = None
        for t, txn in items:
            validate_successor(previous, t)
            if not isinstance(txn, Transaction):
                raise HistoryError(
                    f"stream element at t={t} is not a Transaction"
                )
            validated.append((t, txn))
            previous = t
        self._items = tuple(validated)

    @property
    def length(self) -> int:
        """Number of transitions."""
        return len(self._items)

    @property
    def span(self) -> int:
        """Clock distance between first and last transition (0 if short)."""
        if len(self._items) < 2:
            return 0
        return self._items[-1][0] - self._items[0][0]

    @property
    def total_changes(self) -> int:
        """Sum of transaction sizes (inserted + deleted tuples)."""
        return sum(txn.size for _, txn in self._items)

    def concat(self, other: "UpdateStream") -> "UpdateStream":
        """Concatenate; ``other`` must start after this stream ends."""
        return UpdateStream(list(self._items) + list(other._items))

    def shifted(self, delta: int) -> "UpdateStream":
        """Shift every timestamp by ``delta`` (result must stay >= 0)."""
        return UpdateStream((t + delta, txn) for t, txn in self._items)

    def prefix(self, n: int) -> "UpdateStream":
        """The first ``n`` transitions."""
        return UpdateStream(self._items[:n])

    def replay(
        self,
        schema: DatabaseSchema,
        initial: Optional[DatabaseState] = None,
    ) -> History:
        """Materialise the history this stream produces from ``initial``."""
        return History.replay(schema, self._items, initial=initial)

    def final_state(
        self,
        schema: DatabaseSchema,
        initial: Optional[DatabaseState] = None,
    ) -> DatabaseState:
        """Apply all transactions and return only the final state."""
        state = initial if initial is not None else DatabaseState.empty(schema)
        for _, txn in self._items:
            state = state.apply(txn)
        return state

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[TimedTransaction]:
        return iter(self._items)

    @overload
    def __getitem__(self, index: int) -> TimedTransaction: ...

    @overload
    def __getitem__(self, index: slice) -> "UpdateStream": ...

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[TimedTransaction, "UpdateStream"]:
        if isinstance(index, slice):
            # a slice of a valid stream is only valid when it keeps
            # the original order; extended slices (negative step) are
            # re-validated by the constructor and rejected there
            return UpdateStream(self._items[index])
        return self._items[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UpdateStream) and self._items == other._items

    def __repr__(self) -> str:
        if not self._items:
            return "UpdateStream(empty)"
        return (
            f"UpdateStream({len(self._items)} txns, "
            f"t={self._items[0][0]}..{self._items[-1][0]})"
        )
