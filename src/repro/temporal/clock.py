"""The discrete real-time clock of the paper's history model.

Timestamps are non-negative integers.  Successive database states carry
*strictly increasing* timestamps, but arbitrary gaps are allowed — this
is what makes the logic *metric* (real-time) rather than merely
step-counting: ``ONCE[0,14] borrowed(b)`` talks about 14 clock units,
not 14 state transitions.

:class:`Clock` is a tiny mutable helper that enforces monotonicity for
code that produces streams; checkers validate timestamps independently.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TimeError

#: A point on the discrete time axis.
Timestamp = int


def validate_timestamp(t: object) -> Timestamp:
    """Check that ``t`` is a legal timestamp and return it.

    Raises:
        TimeError: if ``t`` is not a non-negative integer.
    """
    if isinstance(t, bool) or not isinstance(t, int):
        raise TimeError(f"timestamp must be an int, got {t!r}")
    if t < 0:
        raise TimeError(f"timestamp must be non-negative, got {t}")
    return t


def validate_successor(previous: Optional[Timestamp], t: Timestamp) -> Timestamp:
    """Check strict monotonicity of ``t`` after ``previous``; return ``t``."""
    validate_timestamp(t)
    if previous is not None and t <= previous:
        raise TimeError(
            f"clock moved backwards: {t} follows {previous}"
        )
    return t


class Clock:
    """A strictly increasing discrete clock.

    Example::

        clock = Clock(start=0)
        t0 = clock.now          # 0
        t1 = clock.advance(5)   # 5
        t2 = clock.tick()       # 6
    """

    __slots__ = ("_now",)

    def __init__(self, start: Timestamp = 0):
        self._now = validate_timestamp(start)

    @property
    def now(self) -> Timestamp:
        """The current time."""
        return self._now

    def tick(self) -> Timestamp:
        """Advance by one unit and return the new time."""
        return self.advance(1)

    def advance(self, delta: int) -> Timestamp:
        """Advance by ``delta`` (>= 1) units and return the new time.

        Raises:
            TimeError: if ``delta`` < 1 (the clock must strictly advance).
        """
        if not isinstance(delta, int) or isinstance(delta, bool) or delta < 1:
            raise TimeError(f"clock must advance by a positive int, got {delta!r}")
        self._now += delta
        return self._now

    def advance_to(self, t: Timestamp) -> Timestamp:
        """Jump forward to absolute time ``t`` (> now) and return it."""
        validate_successor(self._now, t)
        self._now = t
        return self._now

    def __repr__(self) -> str:
        return f"Clock(now={self._now})"
