"""Materialised database histories.

A :class:`History` is the paper's central semantic object: a finite
sequence of database states, each with a strictly increasing timestamp.
The reference semantics (:mod:`repro.core.semantics`) and the naive
baseline checker evaluate formulas directly over a ``History``; the
incremental checker never materialises one — demonstrating the paper's
point is precisely the gap between the two.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.db.database import DatabaseState
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.errors import HistoryError
from repro.temporal.clock import Timestamp, validate_successor


class Snapshot:
    """One element of a history: a timestamp and a database state."""

    __slots__ = ("time", "state")

    def __init__(self, time: Timestamp, state: DatabaseState):
        self.time = time
        self.state = state

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Snapshot)
            and self.time == other.time
            and self.state == other.state
        )

    def __repr__(self) -> str:
        return f"Snapshot(t={self.time}, {self.state!r})"


class History:
    """An append-only timestamped sequence of database states."""

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema
        self._snapshots: List[Snapshot] = []
        self._evaluator = None  # lazy HistoryEvaluator for query()

    @classmethod
    def replay(
        cls,
        schema: DatabaseSchema,
        stream: Iterable[Tuple[Timestamp, Transaction]],
        initial: Optional[DatabaseState] = None,
        start_time: Optional[Timestamp] = None,
    ) -> "History":
        """Materialise a history by replaying an update stream.

        Args:
            schema: the database schema.
            stream: ``(timestamp, transaction)`` pairs, times increasing.
            initial: optional state preceding the stream; when given, it
                is recorded as the first snapshot at ``start_time``
                (default 0) and the stream's transactions apply on top.
                When omitted, the first stream element produces the first
                snapshot starting from the empty state.
            start_time: timestamp for ``initial``.

        Returns:
            The fully materialised history.
        """
        history = cls(schema)
        state = initial if initial is not None else DatabaseState.empty(schema)
        if initial is not None:
            history.append(0 if start_time is None else start_time, state)
        for t, txn in stream:
            state = state.apply(txn)
            history.append(t, state)
        return history

    def append(self, time: Timestamp, state: DatabaseState) -> Snapshot:
        """Append a snapshot; the timestamp must exceed the last one."""
        if state.schema != self.schema:
            raise HistoryError("snapshot state does not match history schema")
        previous = self._snapshots[-1].time if self._snapshots else None
        validate_successor(previous, time)
        snap = Snapshot(time, state)
        self._snapshots.append(snap)
        # future-operator answers at old snapshots can change when the
        # history grows, so the lazy query evaluator is rebuilt
        self._evaluator = None
        return snap

    def append_transaction(
        self, time: Timestamp, txn: Transaction
    ) -> Snapshot:
        """Apply ``txn`` to the latest state and append the result.

        On an empty history the transaction applies to the empty state.
        """
        base = (
            self._snapshots[-1].state
            if self._snapshots
            else DatabaseState.empty(self.schema)
        )
        return self.append(time, base.apply(txn))

    @property
    def length(self) -> int:
        """Number of snapshots."""
        return len(self._snapshots)

    @property
    def is_empty(self) -> bool:
        """Whether no snapshot has been recorded yet."""
        return not self._snapshots

    @property
    def last(self) -> Snapshot:
        """The most recent snapshot.

        Raises:
            HistoryError: on an empty history.
        """
        if not self._snapshots:
            raise HistoryError("history is empty")
        return self._snapshots[-1]

    def time_at(self, index: int) -> Timestamp:
        """Timestamp of the snapshot at ``index``."""
        return self._snapshots[index].time

    def state_at(self, index: int) -> DatabaseState:
        """Database state of the snapshot at ``index``."""
        return self._snapshots[index].state

    def span(self) -> int:
        """Clock span ``last.time - first.time`` (0 for short histories)."""
        if len(self._snapshots) < 2:
            return 0
        return self._snapshots[-1].time - self._snapshots[0].time

    def query(self, formula, at: Optional[int] = None):
        """Time-travel query: satisfying valuations at a snapshot.

        Evaluates a formula (text in the constraint syntax, or a
        :class:`~repro.core.formulas.Formula`) at snapshot index ``at``
        (default: the latest), with full temporal-operator support —
        including the future operators, interpreted over the
        materialised part of the history.

        Returns:
            A :class:`~repro.db.algebra.Table` over the formula's free
            variables (zero-column truth table for closed formulas).
        """
        from repro.core.normalize import normalize
        from repro.core.parser import parse
        from repro.core.semantics import HistoryEvaluator

        if isinstance(formula, str):
            formula = parse(formula)
        kernel = normalize(formula)
        if self._evaluator is None:
            self._evaluator = HistoryEvaluator(self)
        index = self.length - 1 if at is None else at
        return self._evaluator.table_at(kernel, index)

    def to_stream(self) -> List[Tuple[Timestamp, Transaction]]:
        """Recover the update stream whose replay (from empty) yields me."""
        stream: List[Tuple[Timestamp, Transaction]] = []
        previous = DatabaseState.empty(self.schema)
        for snap in self._snapshots:
            stream.append((snap.time, previous.diff(snap.state)))
            previous = snap.state
        return stream

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[Snapshot]:
        return iter(self._snapshots)

    def __getitem__(self, index: int) -> Snapshot:
        return self._snapshots[index]

    def __repr__(self) -> str:
        if not self._snapshots:
            return "History(empty)"
        return (
            f"History({len(self._snapshots)} states, "
            f"t={self._snapshots[0].time}..{self._snapshots[-1].time})"
        )
