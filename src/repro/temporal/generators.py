"""Seeded random history/stream generators.

Used by the property-based tests and as the substrate of the parametric
random workload.  Everything is driven by an explicit
:class:`random.Random` instance so that test failures and benchmark
configurations are reproducible from a seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.db.database import DatabaseState
from repro.db.schema import DatabaseSchema, RelationSchema
from repro.db.transactions import Transaction
from repro.db.types import Row, Value
from repro.temporal.clock import Timestamp
from repro.temporal.stream import UpdateStream


class StreamGenerator:
    """Generates random update streams against a schema.

    Each transition inserts and deletes a few random tuples drawn from a
    small value universe, and advances the clock by a random gap.  Small
    universes maximise tuple collisions across time, which is what makes
    temporal formulas take interesting truth values.

    Args:
        schema: the database schema to generate against.
        universe: value pool per domain position; defaults to small
            integer ranges so generated rows collide across states.
        max_inserts: max tuples inserted per transition per relation.
        max_deletes: max tuples deleted per transition per relation.
        max_gap: max clock advance per transition (min 1).
        seed: RNG seed.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        universe: Optional[Sequence[Value]] = None,
        max_inserts: int = 3,
        max_deletes: int = 2,
        max_gap: int = 4,
        seed: int = 0,
    ):
        if max_gap < 1:
            raise ValueError("max_gap must be >= 1")
        self.schema = schema
        self.universe: List[Value] = list(
            universe if universe is not None else range(4)
        )
        self.max_inserts = max_inserts
        self.max_deletes = max_deletes
        self.max_gap = max_gap
        self.rng = random.Random(seed)

    def random_row(self, rel: RelationSchema) -> Row:
        """A random row for ``rel`` drawn from the universe.

        The universe is assumed compatible with every attribute domain
        (the default integer universe works with INT and ANY columns).
        """
        return tuple(
            self.rng.choice(self.universe) for _ in range(rel.arity)
        )

    def random_transaction(self, current: DatabaseState) -> Transaction:
        """A random transaction valid against ``current``.

        Deletions are drawn from tuples actually present, so the stream
        exercises genuine state shrinkage, not just growth.
        """
        inserts: Dict[str, Set[Row]] = {}
        deletes: Dict[str, Set[Row]] = {}
        for rel_schema in self.schema:
            name = rel_schema.name
            n_ins = self.rng.randint(0, self.max_inserts)
            if n_ins:
                inserts[name] = {
                    self.random_row(rel_schema) for _ in range(n_ins)
                }
            existing = list(current.relation(name).rows)
            n_del = min(self.rng.randint(0, self.max_deletes), len(existing))
            if n_del:
                chosen = set(self.rng.sample(existing, n_del))
                chosen -= inserts.get(name, set())
                if chosen:
                    deletes[name] = chosen
        return Transaction(inserts, deletes)

    def stream(
        self, length: int, start_time: Timestamp = 0
    ) -> UpdateStream:
        """Generate a stream of ``length`` random transitions."""
        items: List[Tuple[Timestamp, Transaction]] = []
        state = DatabaseState.empty(self.schema)
        t = start_time + self.rng.randint(0, self.max_gap - 1)
        for _ in range(length):
            txn = self.random_transaction(state)
            state = state.apply(txn)
            items.append((t, txn))
            t += self.rng.randint(1, self.max_gap)
        return UpdateStream(items)


def random_schema(
    rng: random.Random,
    n_relations: int = 2,
    max_arity: int = 2,
) -> DatabaseSchema:
    """A random schema ``p0, p1, ...`` with arities in ``1..max_arity``."""
    rels = [
        RelationSchema(
            f"p{i}",
            [f"a{j}" for j in range(rng.randint(1, max_arity))],
        )
        for i in range(n_relations)
    ]
    return DatabaseSchema(rels)
