"""Time substrate: clocks, histories, update streams, and generators."""

from repro.temporal.clock import (
    Clock,
    Timestamp,
    validate_successor,
    validate_timestamp,
)
from repro.temporal.generators import StreamGenerator, random_schema
from repro.temporal.history import History, Snapshot
from repro.temporal.stream import TimedTransaction, UpdateStream, merge_streams

__all__ = [
    "Clock",
    "History",
    "Snapshot",
    "StreamGenerator",
    "TimedTransaction",
    "Timestamp",
    "UpdateStream",
    "merge_streams",
    "random_schema",
    "validate_successor",
    "validate_timestamp",
]
