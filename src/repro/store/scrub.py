"""Scrub & repair: offline integrity verification of store directories.

``scrub`` is the strict counterpart of the store's lenient ``load``:
it verifies *every* frame of *every* durable file — both checkpoint
generations, every retained segment, every cold row and generation
digest — and reports each problem as a finding with the repair action
that would fix it.  ``repair`` applies exactly those actions:

==========================  =====================================
finding                     repair
==========================  =====================================
damaged segment frame       truncate to the last valid record
damaged current checkpoint  promote the previous generation
missing current checkpoint  promote the fsynced temp (a crash
                            landed between the two renames) or
                            the previous generation
damaged cold generation     current's: promote the previous
                            generation; prev's: unlink the spare
                            checkpoint (redundancy only)
stale artifact (temp file,  unlink
segment past retention)
damaged prev checkpoint     unlink (redundancy only; current is
                            intact)
both generations damaged    **unrepairable** — findings keep
                            ``repair="none"``
==========================  =====================================

File-level repair restores a loadable store; the CLI's
``repro scrub --repair`` then re-checkpoints through a full recovery,
which restores the redundancy (fresh current + previous generations)
that a promotion consumed.

Shard trees are handled by :func:`scrub_tree` / :func:`repair_tree`:
every store directory found under a root (the supervisor's layout —
one subdirectory per shard) is scrubbed and the reports merged.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import StoreCorruption, StoreError
from repro.store.base import RepairReport, ScrubFinding, ScrubReport
from repro.store.record import SegmentScan, scan_segment
from repro.store.segment import (
    CHECKPOINT_NAME,
    COLD_NAME,
    PREV_CHECKPOINT_NAME,
    RETAIN_GENERATIONS,
    SEGMENT_GLOB,
    list_segments,
    segment_epoch,
)

PathLike = Union[str, Path]

TMP_CHECKPOINT_NAME = CHECKPOINT_NAME + ".tmp"


def is_store_directory(directory: PathLike) -> bool:
    """Whether a directory holds (at least the remains of) a store."""
    directory = Path(directory)
    if not directory.is_dir():
        return False
    for name in (CHECKPOINT_NAME, PREV_CHECKPOINT_NAME,
                 TMP_CHECKPOINT_NAME, COLD_NAME):
        if (directory / name).exists():
            return True
    return any(directory.glob(SEGMENT_GLOB))


def find_store_directories(root: PathLike) -> List[Path]:
    """Every store directory at or below ``root`` (shard trees)."""
    root = Path(root)
    found = []
    if is_store_directory(root):
        found.append(root)
    if root.is_dir():
        for child in sorted(root.rglob("*")):
            if child.is_dir() and is_store_directory(child):
                found.append(child)
    return found


class _CheckpointProbe:
    """One checkpoint file's strict verification outcome."""

    __slots__ = ("path", "exists", "scan", "meta", "cold_error")

    def __init__(self, path: Path):
        self.path = path
        self.exists = path.exists()
        self.scan: Optional[SegmentScan] = None
        self.meta: Optional[dict] = None
        self.cold_error: Optional[StoreCorruption] = None
        if not self.exists:
            return
        self.scan = scan_segment(path)
        if self.scan.clean and self.scan.records:
            meta = self.scan.records[0]
            if isinstance(meta.get("epoch"), int) and "document" in meta:
                self.meta = meta

    @property
    def frame_ok(self) -> bool:
        return self.meta is not None

    @property
    def usable(self) -> bool:
        """Frame verifies *and* its cold generation (if any) does."""
        return self.frame_ok and self.cold_error is None

    @property
    def damage_kind(self) -> str:
        if not self.exists:
            return "missing"
        if self.scan is not None and self.scan.damage is not None:
            return self.scan.damage.kind
        return "garbled"

    @property
    def damage_detail(self) -> str:
        if not self.exists:
            return "file is missing"
        if self.scan is not None and self.scan.damage is not None:
            return str(self.scan.damage)
        return "no checkpoint record in file"

    def verify_cold(self, directory: Path) -> int:
        """Check this checkpoint's cold generation; rows verified."""
        if not self.frame_ok:
            return 0
        cold_meta = self.meta.get("cold") or {}
        if not cold_meta:
            return 0
        from repro.store.sqlite import ColdAnchorStore, sqlite_available

        if not sqlite_available():  # pragma: no cover - stdlib absent
            self.cold_error = StoreCorruption(
                "cold tier referenced but sqlite3 is unavailable",
                kind="garbled", path=directory / COLD_NAME,
            )
            return 0
        try:
            with ColdAnchorStore(directory / COLD_NAME) as cold:
                rows = cold.read_generation(
                    self.meta["epoch"], expected=cold_meta
                )
            return sum(len(v) for v in rows.values())
        except (StoreCorruption, StoreError) as exc:
            self.cold_error = exc if isinstance(
                exc, StoreCorruption
            ) else StoreCorruption(
                str(exc), kind="garbled", path=directory / COLD_NAME,
            )
            return 0


def _probe(directory: Path) -> Tuple[_CheckpointProbe, _CheckpointProbe]:
    current = _CheckpointProbe(directory / CHECKPOINT_NAME)
    prev = _CheckpointProbe(directory / PREV_CHECKPOINT_NAME)
    return current, prev


def scrub_directory(directory: PathLike) -> ScrubReport:
    """Strictly verify one store directory; never modifies anything."""
    directory = Path(directory)
    report = ScrubReport(directory)

    current, prev = _probe(directory)
    for probe in (current, prev):
        if probe.exists:
            report.files_checked += 1
            if probe.frame_ok:
                report.records_verified += 1
                report.records_verified += probe.verify_cold(directory)

    def other_usable(probe) -> bool:
        return (prev if probe is current else current).usable

    # checkpoint frame damage
    if current.exists and not current.frame_ok:
        report.findings.append(ScrubFinding(
            current.path, current.damage_kind, current.damage_detail,
            repair="fallback" if other_usable(current) else "none",
        ))
    if prev.exists and not prev.frame_ok:
        # prev is redundancy only; losing it never loses state
        report.findings.append(ScrubFinding(
            prev.path, prev.damage_kind, prev.damage_detail,
            repair="unlink" if current.usable else "none",
        ))

    # a missing current checkpoint alongside other artifacts means a
    # crash landed between the checkpoint renames
    tmp_path = directory / TMP_CHECKPOINT_NAME
    if not current.exists and (prev.exists or tmp_path.exists()):
        tmp_scan = scan_segment(tmp_path) if tmp_path.exists() else None
        promotable = tmp_scan is not None and tmp_scan.clean and (
            tmp_scan.records
        )
        report.findings.append(ScrubFinding(
            current.path, "missing",
            "current checkpoint missing (crash between renames?)",
            repair="rebuild" if promotable else (
                "fallback" if prev.usable else "none"
            ),
        ))

    # cold-tier damage: the current generation falls back, but a
    # damaged *prev* generation drops the spare checkpoint instead —
    # promoting prev over a usable current would replace good state
    # with the very generation whose cold rows failed verification
    if current.frame_ok and current.cold_error is not None:
        report.findings.append(ScrubFinding(
            directory / COLD_NAME, current.cold_error.kind,
            str(current.cold_error),
            repair="fallback" if prev.usable else "none",
        ))
    if prev.frame_ok and prev.cold_error is not None:
        report.findings.append(ScrubFinding(
            prev.path, prev.cold_error.kind,
            f"cold generation unreadable ({prev.cold_error}); "
            f"the previous checkpoint is redundancy only",
            repair="unlink" if current.usable else "none",
        ))

    # journal segments: every frame of every retained segment
    chosen_epoch = None
    if current.usable:
        chosen_epoch = current.meta["epoch"]
    elif prev.usable:
        chosen_epoch = prev.meta["epoch"]
    horizon = (
        None if chosen_epoch is None
        else chosen_epoch - (RETAIN_GENERATIONS - 1)
    )
    for path in list_segments(directory):
        report.files_checked += 1
        scan = scan_segment(path)
        report.records_verified += len(scan.records)
        if not scan.clean:
            report.findings.append(ScrubFinding(
                path, scan.damage.kind, str(scan.damage),
                repair="truncate",
            ))
        if horizon is not None and segment_epoch(path) < horizon:
            report.findings.append(ScrubFinding(
                path, "stale",
                f"segment predates retention horizon {horizon} "
                f"(crash between rotate and unlink?)",
                repair="unlink",
            ))

    # a leftover checkpoint temp file (crash before its rename); only
    # stale when the current checkpoint committed
    if tmp_path.exists() and current.exists:
        report.files_checked += 1
        report.findings.append(ScrubFinding(
            tmp_path, "stale",
            "leftover checkpoint temp file (crash before rename?)",
            repair="unlink",
        ))

    return report


def repair_directory(directory: PathLike) -> RepairReport:
    """Apply the repair action of every finding in one directory.

    Returns a report whose :attr:`~RepairReport.complete` is False when
    any finding is unrepairable (both checkpoint generations damaged).
    File-level only: callers should follow up with recover +
    re-checkpoint to restore generation redundancy.
    """
    directory = Path(directory)
    scrub = scrub_directory(directory)
    actions: List[Tuple[Path, str]] = []
    unrepaired: List[ScrubFinding] = []
    torn = 0
    for finding in scrub.findings:
        if finding.repair == "truncate":
            scan = scan_segment(finding.path)
            with open(finding.path, "r+b") as fh:
                fh.truncate(scan.valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
            torn += scan.dropped_lines
            actions.append((
                finding.path,
                f"truncated to last valid record "
                f"({scan.valid_bytes} byte(s), "
                f"{scan.dropped_lines} record(s) lost)",
            ))
        elif finding.repair == "unlink":
            finding.path.unlink(missing_ok=True)
            actions.append((finding.path, "unlinked stale/damaged file"))
        elif finding.repair == "rebuild":
            os.replace(directory / TMP_CHECKPOINT_NAME,
                       directory / CHECKPOINT_NAME)
            actions.append((
                directory / CHECKPOINT_NAME,
                "promoted fsynced checkpoint temp file",
            ))
        elif finding.repair == "fallback":
            prev_path = directory / PREV_CHECKPOINT_NAME
            os.replace(prev_path, directory / CHECKPOINT_NAME)
            actions.append((
                directory / CHECKPOINT_NAME,
                "promoted previous checkpoint generation",
            ))
        else:
            unrepaired.append(finding)
    return RepairReport(directory, actions=actions,
                        unrepaired=unrepaired, torn_records=torn)


def scrub_tree(root: PathLike) -> ScrubReport:
    """Scrub every store directory under ``root``, merged into one
    report (``files_checked == 0`` when nothing store-like exists)."""
    root = Path(root)
    merged = ScrubReport(root)
    for directory in find_store_directories(root):
        merged.merge(scrub_directory(directory))
    return merged


def repair_tree(root: PathLike) -> RepairReport:
    """Repair every store directory under ``root``; merged report."""
    root = Path(root)
    merged = RepairReport(root)
    for directory in find_store_directories(root):
        child = repair_directory(directory)
        merged.actions.extend(child.actions)
        merged.unrepaired.extend(child.unrepaired)
        merged.torn_records += child.torn_records
    return merged
