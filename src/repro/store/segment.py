"""The durable backend: checksummed segment WAL with atomic rotation.

Directory layout::

    <dir>/checkpoint.json        # current checkpoint (one framed record)
    <dir>/checkpoint.prev.json   # previous generation (fallback)
    <dir>/wal-00000003.log       # journal segment for epoch 3 (active)
    <dir>/wal-00000002.log       # retained previous segment
    <dir>/cold.sqlite            # optional cold anchor tier
    <dir>/journal.lock           # single-writer guard (pid + start token)

Every record — journal step *and* checkpoint — is one framed line
(:mod:`repro.store.record`): magic + length prefix + blake2s checksum,
so any torn write or bit flip is detected on read.  Segment ``k``
holds the steps applied after checkpoint epoch ``k``.

Checkpoint epoch ``n`` commits through a fixed protocol, each step
crash-safe against the previous one:

1. cold anchor rows for generation ``n`` are written to the SQLite
   tier (a crash here leaves an uncommitted generation the previous
   checkpoint never references);
2. the framed checkpoint is written to a temp file and fsynced, the
   old ``checkpoint.json`` is renamed to ``checkpoint.prev.json``, the
   temp renamed over ``checkpoint.json``, and the directory fsynced —
   readers only ever see a complete old or complete new checkpoint;
3. segment ``wal-n`` is created (rotation);
4. segments ``<= n-2`` are unlinked and cold generations ``<= n-2``
   vacuumed (retention: two checkpoints + two segments, so a damaged
   current checkpoint can fall back one generation and still replay).

:meth:`SegmentStore.load` is lenient end to end: a damaged journal
frame truncates the logical record stream at the last valid record
(counting ``torn_records``), and a damaged current checkpoint — or one
whose cold generation fails its digest — falls back to the previous
generation.  Strict verification lives in :mod:`repro.store.scrub`.

**Failpoints** make the crash windows testable: each named point can
raise :class:`~repro.resilience.chaos.SimulatedCrash` in-process
(``failpoints={...}``) or hard-kill the process via ``os._exit`` when
the ``REPRO_STORE_FAILPOINT=<name>:<nth>`` environment variable is set
(the real-subprocess crash tests).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import StoreCorruption, StoreError
from repro.store.base import (
    PathLike,
    StateStore,
    StoreSnapshot,
    fsync_dir,
    fsync_file,
)
from repro.store.lock import JournalLock
from repro.store.record import encode_record, scan_segment

#: File names inside a store directory.
CHECKPOINT_NAME = "checkpoint.json"
PREV_CHECKPOINT_NAME = "checkpoint.prev.json"
COLD_NAME = "cold.sqlite"

#: Active/retained journal segments: ``wal-<epoch, zero-padded>.log``.
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"
SEGMENT_GLOB = f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}"

#: Checkpoint generations (and their segments) kept for fallback.
RETAIN_GENERATIONS = 2

#: The named crash windows of the commit protocol, in protocol order.
FAILPOINTS = (
    "record_pre_fsync",
    "record_post_fsync",
    "checkpoint_pre_rename",
    "checkpoint_post_rename",
    "rotate_pre_unlink",
    "rotate_post_unlink",
)

#: ``<name>:<nth>`` — hard-kill the process at the nth hit of a point.
FAILPOINT_ENV = "REPRO_STORE_FAILPOINT"

#: Exit status of an environment-failpoint kill (distinguishable from
#: python crashes in the subprocess tests).
FAILPOINT_EXIT = 37

_env_hits: Dict[str, int] = {}


def segment_name(epoch: int) -> str:
    """File name of the journal segment for a checkpoint epoch."""
    return f"{SEGMENT_PREFIX}{epoch:08d}{SEGMENT_SUFFIX}"


def segment_epoch(path: PathLike) -> int:
    """Parse a segment file name back to its epoch (-1 if malformed)."""
    name = Path(path).name
    if not (name.startswith(SEGMENT_PREFIX)
            and name.endswith(SEGMENT_SUFFIX)):
        return -1
    digits = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    try:
        return int(digits)
    except ValueError:
        return -1


def list_segments(directory: PathLike) -> List[Path]:
    """Every well-named segment file in a store directory, by epoch."""
    return sorted(
        (p for p in Path(directory).glob(SEGMENT_GLOB)
         if segment_epoch(p) >= 0),
        key=segment_epoch,
    )


class SegmentStore(StateStore):
    """Checksummed segment-log durability backend.

    Args:
        directory: the store directory (created if missing).
        sync: ``False`` flush-only, ``True`` fsync at record and
            rotation boundaries (honours ``REPRO_FSYNC=off``), or
            ``"force"`` to fsync unconditionally.
        failpoints: names from :data:`FAILPOINTS` that raise
            ``SimulatedCrash`` when reached (in-process chaos tests).
        lock: take the single-writer lock (disable only for read-only
            inspection; two live writers corrupt the tail).
    """

    durable = True

    def __init__(self, directory: PathLike, sync=False,
                 failpoints: Iterable[str] = (), lock: bool = True):
        unknown = set(failpoints) - set(FAILPOINTS)
        if unknown:
            raise StoreError(
                f"unknown failpoint(s) {sorted(unknown)}; "
                f"known: {list(FAILPOINTS)}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync = sync
        self._failpoints: Set[str] = set(failpoints)
        self._fh = None
        #: torn-tail bytes of the active segment, discovered by a
        #: lenient load: the valid prefix length to truncate to before
        #: the first append, so new records never land behind damage
        self._truncate_tail: Optional[int] = None
        self._epoch = self._discover_epoch()
        self._records_written = 0
        self._checkpoints_written = 0
        self._closed = False
        self._cold = None
        self._lock = JournalLock(self.directory) if lock else None
        if self._lock is not None:
            self._lock.acquire()

    # -- paths ---------------------------------------------------------

    @property
    def checkpoint_path(self) -> Path:
        """The current checkpoint file."""
        return self.directory / CHECKPOINT_NAME

    @property
    def prev_checkpoint_path(self) -> Path:
        """The retained previous-generation checkpoint file."""
        return self.directory / PREV_CHECKPOINT_NAME

    @property
    def cold_path(self) -> Path:
        """The SQLite cold anchor tier (may not exist)."""
        return self.directory / COLD_NAME

    @property
    def journal_path(self) -> Path:
        """The active journal segment (for introspection/tests)."""
        return self.directory / segment_name(max(self._epoch, 0))

    @property
    def epoch(self) -> int:
        """Checkpoint generations committed (-1 before the first)."""
        return self._epoch

    def _discover_epoch(self) -> int:
        """On re-attach, resume numbering after the newest artifact."""
        epochs = [segment_epoch(p) for p in list_segments(self.directory)]
        for path in (self.checkpoint_path, self.prev_checkpoint_path):
            if path.exists():
                scan = scan_segment(path)
                if scan.clean and scan.records:
                    epoch = scan.records[0].get("epoch")
                    if isinstance(epoch, int):
                        epochs.append(epoch)
        return max(epochs) if epochs else -1

    # -- failpoints ----------------------------------------------------

    def _failpoint(self, name: str) -> None:
        if name in self._failpoints:
            from repro.resilience.chaos import SimulatedCrash

            # the simulated process dies here: drop its in-process
            # writer-lock claim (the file stays, as after a real kill)
            # so recovery in this process can steal it like a respawn
            self.abandon()
            raise SimulatedCrash(f"storage failpoint {name}")
        spec = os.environ.get(FAILPOINT_ENV, "")
        if not spec:
            return
        spec_name, _, nth_text = spec.partition(":")
        if spec_name != name:
            return
        try:
            nth = int(nth_text) if nth_text else 1
        except ValueError:
            nth = 1
        _env_hits[name] = _env_hits.get(name, 0) + 1
        if _env_hits[name] >= nth:
            # a hard kill, not an exception: nothing below this frame
            # gets to flush, close, or release locks — exactly a crash
            os._exit(FAILPOINT_EXIT)

    # -- cold tier -----------------------------------------------------

    def _cold_store(self):
        if self._cold is None:
            from repro.store.sqlite import ColdAnchorStore

            self._cold = ColdAnchorStore(self.cold_path)
        return self._cold

    # -- StateStore ----------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError(f"store {self.directory} is closed")

    def _open_segment(self, epoch: int, truncate: bool = False) -> None:
        if self._fh is not None:
            self._fh.close()
        path = self.directory / segment_name(epoch)
        if truncate:
            # rotation starts a fresh segment; any recorded tail
            # damage belonged to the (retained) previous one
            self._truncate_tail = None
        elif self._truncate_tail is not None:
            # a lenient load found a torn tail in this segment: drop
            # the damaged bytes now, or every appended record would be
            # stranded behind them (the next load stops at the first
            # bad frame and would silently discard the new records)
            with open(path, "r+b") as fh:
                fh.truncate(self._truncate_tail)
                fh.flush()
                fsync_file(fh, self.sync)
            self._truncate_tail = None
        mode = "wb" if truncate else "ab"
        self._fh = open(path, mode)

    def append(self, record: dict) -> None:
        """Append one framed journal record to the active segment."""
        self._check_open()
        if self._fh is None:
            self._open_segment(max(self._epoch, 0))
        self._fh.write(encode_record(record))
        self._fh.flush()
        self._failpoint("record_pre_fsync")
        fsync_file(self._fh, self.sync)
        self._failpoint("record_post_fsync")
        self._records_written += 1

    def checkpoint(self, document: dict,
                   cold_rows: Optional[Dict[str, list]] = None) -> None:
        """Commit one checkpoint generation (the 4-step protocol)."""
        self._check_open()
        new_epoch = self._epoch + 1
        cold_rows = dict(cold_rows or {})

        # 1. cold generation first: until step 2 renames the
        # checkpoint, nothing references generation new_epoch
        cold_meta: Dict[str, dict] = {}
        if cold_rows:
            cold_meta = self._cold_store().write_generation(
                new_epoch, cold_rows, sync=self.sync
            )

        # 2. atomic checkpoint: tmp + fsync + rename, keeping the old
        # generation as the fallback
        frame = encode_record({
            "epoch": new_epoch,
            "document": document,
            "cold": cold_meta,
        })
        tmp = self.checkpoint_path.with_name(CHECKPOINT_NAME + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(frame)
            fh.flush()
            fsync_file(fh, self.sync)
        self._failpoint("checkpoint_pre_rename")
        if self.checkpoint_path.is_file():
            os.replace(self.checkpoint_path, self.prev_checkpoint_path)
        os.replace(tmp, self.checkpoint_path)
        fsync_dir(self.directory, self.sync)
        self._failpoint("checkpoint_post_rename")

        # 3. rotate: open the new epoch's segment
        self._open_segment(new_epoch, truncate=True)
        fsync_file(self._fh, self.sync)
        fsync_dir(self.directory, self.sync)
        self._failpoint("rotate_pre_unlink")

        # 4. reclaim everything beyond the retention window
        horizon = new_epoch - (RETAIN_GENERATIONS - 1)
        for path in list_segments(self.directory):
            if segment_epoch(path) < horizon:
                path.unlink()
        if cold_rows or self.cold_path.exists():
            try:
                self._cold_store().vacuum(horizon)
            except StoreError:  # pragma: no cover - sqlite unavailable
                pass
        self._failpoint("rotate_post_unlink")

        self._epoch = new_epoch
        self._checkpoints_written += 1

    def _load_checkpoint(self):
        """The newest *usable* checkpoint: ``(meta, cold_rows,
        fallback)`` or ``None``.

        A candidate is usable when its frame verifies **and** its cold
        generation (if it references one) reads back digest-clean; the
        previous generation is the fallback for either failure.
        """
        for path, fallback in (
            (self.checkpoint_path, False),
            (self.prev_checkpoint_path, True),
        ):
            if not path.exists():
                continue
            scan = scan_segment(path)
            if not scan.clean or not scan.records:
                continue
            meta = scan.records[0]
            if not isinstance(meta.get("epoch"), int) or (
                "document" not in meta
            ):
                continue
            cold_meta = meta.get("cold") or {}
            cold_rows: Dict[str, list] = {}
            if cold_meta:
                try:
                    cold_rows = self._cold_store().read_generation(
                        meta["epoch"], expected=cold_meta
                    )
                except (StoreCorruption, StoreError):
                    continue
            return meta, cold_rows, fallback
        return None

    def load(self) -> StoreSnapshot:
        """Read back the newest recoverable state, leniently."""
        self._check_open()
        loaded = self._load_checkpoint()
        if loaded is None:
            document, cold_rows, epoch, fallback = None, {}, -1, False
        else:
            meta, cold_rows, fallback = loaded
            document, epoch = meta["document"], meta["epoch"]

        # the logical journal: every retained segment at or after the
        # restored epoch, truncated at the first damaged frame
        records: List[dict] = []
        torn = 0
        broken = False
        self._truncate_tail = None
        for path in list_segments(self.directory):
            if segment_epoch(path) < epoch:
                continue  # retained for deeper fallback only
            scan = scan_segment(path)
            if broken:
                # a gap before these records: replaying them against
                # the truncated state would diverge — they are lost too
                torn += len(scan.records) + scan.dropped_lines
                continue
            records.extend(scan.records)
            torn += scan.dropped_lines
            if not scan.clean:
                broken = True
                if path == self.journal_path and self._fh is None:
                    # damage in the segment appends reopen: remember
                    # the valid prefix so the first append truncates
                    # the torn tail instead of writing after it
                    self._truncate_tail = scan.valid_bytes
        return StoreSnapshot(
            document, cold_rows=cold_rows, records=records,
            epoch=epoch, fallback=fallback, torn_records=torn,
        )

    def scrub(self):
        """Strictly verify every durable record in this directory."""
        from repro.store.scrub import scrub_directory

        return scrub_directory(self.directory)

    def repair(self):
        """Apply the file-level repairs scrub prescribes."""
        from repro.store.scrub import repair_directory

        return repair_directory(self.directory)

    def abandon(self) -> None:
        """Simulate a kill: drop the in-process lock claim, nothing else.

        File handles stay open and the lock file stays on disk with
        this process's stamp — exactly the wreckage a killed process
        leaves — but the writer lock no longer counts as held by a
        live instance, so in-process recovery can steal it the way a
        respawned process would.
        """
        if self._lock is not None:
            self._lock.abandon()

    def close(self) -> None:
        """Flush and close the segment; release lock and cold tier."""
        if self._closed:
            return
        self._closed = True
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self._cold is not None:
            self._cold.close()
            self._cold = None
        if self._lock is not None:
            self._lock.release()

    def __repr__(self) -> str:
        return (
            f"SegmentStore({self.directory}, epoch={self._epoch}, "
            f"sync={self.sync!r})"
        )
