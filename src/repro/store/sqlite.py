"""The SQLite cold tier: minimal anchor tuples, out of the checkpoint.

The paper's bounded-history encoding splits auxiliary state sharply:
bounded-window ``ONCE``/``SINCE`` nodes keep at most ``window + 1``
timestamps per valuation (hot, small, touched every step), while
*unbounded* nodes collapse to one minimal anchor per valuation — rows
that are written once and then only read at checkpoint/recovery time.
Keeping those cold anchors inside the JSON checkpoint makes checkpoint
cost grow with total history coverage; spilling them here makes the
hot checkpoint size track only the bounded horizon.

Layout (generational, append-then-vacuum — no in-place updates, so a
crash can never half-overwrite a committed generation):

* ``cold_rows(gen, node, payload, checksum)`` — one row per anchor
  valuation, ``payload`` the canonical JSON ``[valuation, times]``,
  ``checksum`` its blake2s-64;
* ``cold_meta(gen, node, row_count, digest)`` — per node and
  generation, the row count and the digest of the sorted row
  checksums.

The checkpoint frame that references generation ``g`` embeds the same
``cold_meta`` mapping, so the binding is verified in both directions
at load: every row must match its own checksum, the rows of each node
must hash to the digest the checkpoint expects, and no node may be
missing or spurious.  Any mismatch is :class:`StoreCorruption` and the
segment store falls back to the previous generation.

``sqlite3`` is standard library but gated anyway: without it the
store still works, it simply keeps cold rows in the hot checkpoint
(``persist`` only spills when the tier is available).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

try:
    import sqlite3
except ImportError:  # pragma: no cover - stdlib module absent
    sqlite3 = None

from repro.errors import StoreCorruption, StoreError
from repro.store.base import fsync_enabled
from repro.store.record import payload_digest

PathLike = Union[str, Path]


def sqlite_available() -> bool:
    """Whether the cold tier can be used in this interpreter."""
    return sqlite3 is not None


def _node_digest(checksums: List[str]) -> str:
    """Digest of one node's generation: blake2s over sorted row sums."""
    h = hashlib.blake2s(digest_size=8)
    for checksum in sorted(checksums):
        h.update(checksum.encode("ascii"))
    return h.hexdigest()


class ColdAnchorStore:
    """Generational SQLite table of cold anchor rows."""

    def __init__(self, path: PathLike):
        if sqlite3 is None:  # pragma: no cover - stdlib module absent
            raise StoreError(
                "sqlite3 is unavailable in this interpreter; "
                "the cold anchor tier cannot be used"
            )
        self.path = Path(path)
        try:
            self._conn = sqlite3.connect(self.path)
        except sqlite3.Error as exc:
            raise StoreCorruption(
                f"cold tier {self.path} cannot be opened: {exc}",
                kind="garbled", path=self.path,
            ) from None
        try:
            self._conn.executescript(
                """
                CREATE TABLE IF NOT EXISTS cold_rows (
                    gen INTEGER NOT NULL,
                    node TEXT NOT NULL,
                    payload TEXT NOT NULL,
                    checksum TEXT NOT NULL
                );
                CREATE INDEX IF NOT EXISTS cold_rows_gen
                    ON cold_rows (gen, node);
                CREATE TABLE IF NOT EXISTS cold_meta (
                    gen INTEGER NOT NULL,
                    node TEXT NOT NULL,
                    row_count INTEGER NOT NULL,
                    digest TEXT NOT NULL,
                    PRIMARY KEY (gen, node)
                );
                """
            )
        except sqlite3.DatabaseError as exc:
            raise StoreCorruption(
                f"cold tier {self.path} is not a readable database: {exc}",
                kind="garbled", path=self.path,
            ) from None

    def write_generation(self, gen: int, rows: Dict[str, list],
                         sync=False) -> Dict[str, dict]:
        """Write one full cold generation; returns its meta mapping.

        The returned ``{node: {"rows": n, "digest": d}}`` mapping is
        what the checkpoint frame embeds — the cross-file binding that
        lets recovery verify the tier against the checkpoint.
        """
        self._conn.execute(
            "PRAGMA synchronous = %s"
            % ("FULL" if fsync_enabled(sync) else "OFF")
        )
        meta: Dict[str, dict] = {}
        with self._conn:
            # overwrite any half-written attempt at this generation
            # from a crash before the checkpoint rename committed it
            self._conn.execute(
                "DELETE FROM cold_rows WHERE gen = ?", (gen,)
            )
            self._conn.execute(
                "DELETE FROM cold_meta WHERE gen = ?", (gen,)
            )
            for node, anchors in sorted(rows.items()):
                checksums = []
                for anchor in anchors:
                    payload = json.dumps(anchor, sort_keys=True)
                    checksum = payload_digest(payload.encode("ascii"))
                    checksums.append(checksum)
                    self._conn.execute(
                        "INSERT INTO cold_rows (gen, node, payload, "
                        "checksum) VALUES (?, ?, ?, ?)",
                        (gen, node, payload, checksum),
                    )
                meta[node] = {
                    "rows": len(checksums),
                    "digest": _node_digest(checksums),
                }
                self._conn.execute(
                    "INSERT INTO cold_meta (gen, node, row_count, "
                    "digest) VALUES (?, ?, ?, ?)",
                    (gen, node, meta[node]["rows"], meta[node]["digest"]),
                )
        return meta

    def read_generation(self, gen: int,
                        expected: Optional[Dict[str, dict]] = None,
                        ) -> Dict[str, list]:
        """Read one generation back, verifying every checksum.

        Args:
            expected: the meta mapping the referencing checkpoint
                embeds; when given, node set, row counts, and digests
                must all match.

        Raises:
            StoreCorruption: any row whose payload fails its checksum,
                any node whose digest disagrees with ``cold_meta`` or
                with ``expected``, or a node set mismatch.
        """
        try:
            cursor = self._conn.execute(
                "SELECT node, payload, checksum FROM cold_rows "
                "WHERE gen = ? ORDER BY node, payload",
                (gen,),
            )
            raw = cursor.fetchall()
            meta_rows = self._conn.execute(
                "SELECT node, row_count, digest FROM cold_meta "
                "WHERE gen = ?",
                (gen,),
            ).fetchall()
        except sqlite3.DatabaseError as exc:
            raise StoreCorruption(
                f"cold tier {self.path} unreadable at generation "
                f"{gen}: {exc}",
                kind="garbled", path=self.path,
            ) from None
        rows: Dict[str, list] = {}
        checksums: Dict[str, List[str]] = {}
        for node, payload, checksum in raw:
            if payload_digest(payload.encode("ascii")) != checksum:
                raise StoreCorruption(
                    f"cold tier {self.path} gen {gen} node {node}: "
                    f"row checksum mismatch (bit flip or edit)",
                    kind="checksum", path=self.path,
                )
            try:
                anchor = json.loads(payload)
            except ValueError:  # pragma: no cover - digest matched
                raise StoreCorruption(
                    f"cold tier {self.path} gen {gen} node {node}: "
                    f"row payload is not JSON",
                    kind="garbled", path=self.path,
                ) from None
            rows.setdefault(node, []).append(anchor)
            checksums.setdefault(node, []).append(checksum)
        stored_meta = {
            node: {"rows": count, "digest": digest}
            for node, count, digest in meta_rows
        }
        # a node may legitimately have zero anchors this generation:
        # it then appears in the meta but contributes no rows
        for node in set(stored_meta) | set(expected or {}):
            rows.setdefault(node, [])
            checksums.setdefault(node, [])
        for reference, source in (
            (stored_meta, "cold_meta"),
            (expected if expected is not None else stored_meta,
             "the referencing checkpoint"),
        ):
            if set(reference) != set(rows) and (reference or rows):
                raise StoreCorruption(
                    f"cold tier {self.path} gen {gen}: node set "
                    f"disagrees with {source} "
                    f"({sorted(reference)} vs {sorted(rows)})",
                    kind="checksum", path=self.path,
                )
            for node, entry in reference.items():
                found = checksums.get(node, [])
                if (entry.get("rows") != len(found)
                        or entry.get("digest") != _node_digest(found)):
                    raise StoreCorruption(
                        f"cold tier {self.path} gen {gen} node "
                        f"{node}: digest disagrees with {source}",
                        kind="checksum", path=self.path,
                    )
        return rows

    def generations(self) -> List[int]:
        """Generations with any metadata, oldest first."""
        try:
            cursor = self._conn.execute(
                "SELECT DISTINCT gen FROM cold_meta ORDER BY gen"
            )
            return [gen for (gen,) in cursor.fetchall()]
        except sqlite3.DatabaseError as exc:
            raise StoreCorruption(
                f"cold tier {self.path} unreadable: {exc}",
                kind="garbled", path=self.path,
            ) from None

    def vacuum(self, horizon: int) -> int:
        """Drop generations below ``horizon``; returns rows deleted."""
        with self._conn:
            cursor = self._conn.execute(
                "DELETE FROM cold_rows WHERE gen < ?", (horizon,)
            )
            self._conn.execute(
                "DELETE FROM cold_meta WHERE gen < ?", (horizon,)
            )
        return cursor.rowcount

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self) -> str:
        return f"ColdAnchorStore({self.path})"
