"""The in-memory backend: the pre-existing behaviour, behind the seam.

Everything lives in plain Python containers — no files, no fsync, no
locking.  This is the store for tests, ephemeral monitors, and as the
reference implementation the durable backend's property tests compare
against: after any sequence of ``append``/``checkpoint`` calls, a
:class:`~repro.store.segment.SegmentStore` reloaded from disk must
present the same :class:`~repro.store.base.StoreSnapshot` a
``MemoryStore`` holds in RAM.

Records still round-trip through the framed codec
(:func:`~repro.store.record.encode_record`), so a payload that the
durable backend could not serialise fails identically here — the
backends cannot drift on what is storable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import StoreError
from repro.store.base import StateStore, StoreSnapshot
from repro.store.record import decode_record, encode_record


class MemoryStore(StateStore):
    """Checkpoint + journal kept in RAM; vanishes with the process."""

    durable = False

    def __init__(self):
        self._document: Optional[dict] = None
        self._cold_rows: Dict[str, list] = {}
        self._records: List[dict] = []
        self._epoch = -1
        self._records_written = 0
        self._checkpoints_written = 0
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError("store is closed")

    def append(self, record: dict) -> None:
        self._check_open()
        # round-trip the frame so unserialisable payloads fail exactly
        # as they would on the durable backend
        self._records.append(decode_record(encode_record(record)[:-1]))
        self._records_written += 1

    def checkpoint(self, document: dict,
                   cold_rows: Optional[Dict[str, list]] = None) -> None:
        self._check_open()
        self._document = decode_record(encode_record(document)[:-1])
        self._cold_rows = dict(cold_rows or {})
        self._records = []
        self._epoch += 1
        self._checkpoints_written += 1

    def load(self) -> StoreSnapshot:
        self._check_open()
        return StoreSnapshot(
            self._document,
            cold_rows=self._cold_rows,
            records=list(self._records),
            epoch=self._epoch,
        )

    def close(self) -> None:
        self._closed = True

    def __repr__(self) -> str:
        return (
            f"MemoryStore(epoch={self._epoch}, "
            f"{len(self._records)} pending record(s))"
        )
