"""The framed durable-record codec: length prefix + blake2s + version.

Every record the durable store writes — journal steps, checkpoints —
is one self-verifying line::

    rs1 <length> <blake2s-64> <payload>\\n

* ``rs1`` is the format magic + version (rejecting future versions,
  like the checkpoint document's ``FORMAT_VERSION``);
* ``<length>`` is the payload's byte length in decimal — a torn write
  that truncates the line mid-payload is detected by length before the
  checksum is even computed;
* ``<blake2s-64>`` is the 16-hex-digit blake2s digest (``digest_size=8``)
  of the payload bytes — a bit flip anywhere in the payload flips the
  digest with probability ``1 - 2^-64``;
* ``<payload>`` is compact sorted-key JSON (ASCII, no embedded
  newlines), so segment files stay line-oriented and greppable.

The codec never *repairs* anything: :func:`scan_segment` reports the
first damaged frame with its byte offset and classification, and the
store layer decides whether to truncate (recovery, ``scrub --repair``)
or refuse.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import StoreCorruption

#: Magic + format version prefix of every framed record.
STORE_MAGIC = "rs1"

#: Hex digits of the blake2s-64 digest embedded in each frame.
DIGEST_HEX_LEN = 16

PathLike = Union[str, Path]


def payload_digest(payload: bytes) -> str:
    """The 16-hex-digit blake2s-64 digest of a record payload."""
    return hashlib.blake2s(payload, digest_size=8).hexdigest()


def encode_record(record: dict) -> bytes:
    """Frame one JSON-able record as a checksummed line (with newline)."""
    payload = json.dumps(record, sort_keys=True).encode("ascii")
    return (
        f"{STORE_MAGIC} {len(payload)} "
        f"{payload_digest(payload)} ".encode("ascii")
        + payload
        + b"\n"
    )


def decode_record(line: bytes, path: Optional[PathLike] = None,
                  offset: Optional[int] = None) -> dict:
    """Verify and decode one framed line (without its newline).

    Raises:
        StoreCorruption: classified as ``version`` (unknown magic from
            a newer build), ``torn`` (payload shorter than its length
            prefix — a truncated write), ``checksum`` (digest
            mismatch — a bit flip), or ``garbled`` (frame structure or
            JSON unreadable).
    """
    where = f"{path}@{offset}" if path is not None else "record"
    parts = line.split(b" ", 3)
    if not line.startswith(STORE_MAGIC.encode("ascii") + b" "):
        if line[:2] == b"rs" and len(parts) == 4:
            raise StoreCorruption(
                f"{where}: record format {parts[0].decode('ascii', 'replace')!r} "
                f"is newer than this build supports ({STORE_MAGIC!r})",
                kind="version", path=path, offset=offset,
            )
        raise StoreCorruption(
            f"{where}: not a framed record (missing {STORE_MAGIC!r} magic)",
            kind="garbled", path=path, offset=offset,
        )
    if len(parts) != 4:
        raise StoreCorruption(
            f"{where}: truncated frame header",
            kind="torn", path=path, offset=offset,
        )
    _, length_field, digest_field, payload = parts
    try:
        length = int(length_field)
    except ValueError:
        raise StoreCorruption(
            f"{where}: unreadable length prefix "
            f"{length_field.decode('ascii', 'replace')!r}",
            kind="garbled", path=path, offset=offset,
        ) from None
    if len(digest_field) != DIGEST_HEX_LEN:
        raise StoreCorruption(
            f"{where}: malformed digest field",
            kind="garbled", path=path, offset=offset,
        )
    if len(payload) < length:
        raise StoreCorruption(
            f"{where}: payload truncated at {len(payload)}/{length} "
            f"byte(s) (torn write)",
            kind="torn", path=path, offset=offset,
        )
    if len(payload) > length:
        raise StoreCorruption(
            f"{where}: payload overruns its length prefix "
            f"({len(payload)} > {length})",
            kind="garbled", path=path, offset=offset,
        )
    if payload_digest(payload) != digest_field.decode("ascii", "replace"):
        raise StoreCorruption(
            f"{where}: checksum mismatch (bit flip or in-place edit)",
            kind="checksum", path=path, offset=offset,
        )
    try:
        record = json.loads(payload)
    except ValueError as exc:  # pragma: no cover - digest already matched
        raise StoreCorruption(
            f"{where}: checksummed payload is not JSON ({exc})",
            kind="garbled", path=path, offset=offset,
        ) from None
    if not isinstance(record, dict):
        raise StoreCorruption(
            f"{where}: record payload must be an object, "
            f"got {type(record).__name__}",
            kind="garbled", path=path, offset=offset,
        )
    return record


class SegmentScan:
    """Outcome of scanning one segment file leniently.

    Attributes:
        records: the verified records, in file order, up to the first
            damaged frame.
        valid_bytes: byte length of the verified prefix — the truncate
            point ``scrub --repair`` cuts the file back to.
        damage: the :class:`~repro.errors.StoreCorruption` describing
            the first bad frame (``None`` for a clean file).
        dropped_lines: non-empty lines at or after the damage point
            that were not decoded (the records recovery loses).
    """

    __slots__ = ("path", "records", "valid_bytes", "damage",
                 "dropped_lines")

    def __init__(self, path, records, valid_bytes, damage, dropped_lines):
        self.path = Path(path)
        self.records: List[dict] = records
        self.valid_bytes: int = valid_bytes
        self.damage: Optional[StoreCorruption] = damage
        self.dropped_lines: int = dropped_lines

    @property
    def clean(self) -> bool:
        """Whether every frame in the file verified."""
        return self.damage is None

    def __repr__(self) -> str:
        state = "clean" if self.clean else (
            f"damage={self.damage.kind!r}@{self.damage.offset}"
        )
        return (
            f"SegmentScan({self.path.name}, {len(self.records)} "
            f"record(s), {state})"
        )


def scan_segment(path: PathLike) -> SegmentScan:
    """Scan one segment file, stopping at the first damaged frame.

    Never raises for damaged *content* — the classification travels in
    :attr:`SegmentScan.damage` so recovery can truncate-to-last-valid
    and scrub can report.  Only an unreadable file raises ``OSError``
    (the caller maps it to a finding).
    """
    path = Path(path)
    data = path.read_bytes()
    records: List[dict] = []
    offset = 0
    damage: Optional[StoreCorruption] = None
    while offset < len(data):
        newline = data.find(b"\n", offset)
        # a frame without its terminating newline is a torn tail even
        # when the visible bytes verify: the write never completed
        line = data[offset:] if newline < 0 else data[offset:newline]
        if not line.strip():
            offset = len(data) if newline < 0 else newline + 1
            continue
        try:
            record = decode_record(line, path=path, offset=offset)
            if newline < 0:
                raise StoreCorruption(
                    f"{path}@{offset}: frame missing its terminating "
                    f"newline (torn write)",
                    kind="torn", path=path, offset=offset,
                )
        except StoreCorruption as exc:
            damage = exc
            break
        records.append(record)
        offset = newline + 1
    dropped = 0
    if damage is not None:
        dropped = sum(
            1 for tail_line in data[offset:].splitlines() if tail_line.strip()
        )
    return SegmentScan(path, records, offset, damage, dropped)
