"""Single-writer lock for a store directory, safe against PID reuse.

Two live processes appending to one segment log would interleave
frames and corrupt the tail, so every durable store takes this lock on
attach.  The lock file records the owner as a ``(pid, start token)``
pair rather than a bare pid: after a crash the pid may be *reused* by
an unrelated process, and a bare-pid liveness probe would then refuse
to steal a lock whose true owner is long dead (wedging the journal
directory until an operator intervenes).  The start token — on Linux,
the kernel's process start time from ``/proc/<pid>/stat`` — changes
with every reincarnation of a pid, so the stale lock is recognised and
stolen even when the pid is alive again under new management.

The lock is *advisory* and crash-tolerant by design: it is stolen, not
refused, whenever the recorded owner provably no longer exists.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.errors import MonitorError

#: Lock file name inside a journal/store directory.
LOCK_NAME = "journal.lock"

PathLike = Union[str, Path]


def process_start_token(pid: int) -> Optional[str]:
    """A token that distinguishes reincarnations of the same pid.

    On Linux this is field 22 of ``/proc/<pid>/stat`` — the process
    start time in clock ticks since boot, which a recycled pid cannot
    repeat.  Returns ``None`` where no such identity source exists
    (non-Linux, or the process is gone); callers must then fall back
    to pid liveness alone.
    """
    try:
        stat = Path(f"/proc/{pid}/stat").read_bytes()
    except OSError:
        return None
    # the comm field (2) is parenthesised and may contain spaces, so
    # split after its closing paren: fields 3.. follow
    close = stat.rfind(b")")
    if close < 0:  # pragma: no cover - malformed /proc entry
        return None
    fields = stat[close + 1:].split()
    if len(fields) < 20:  # pragma: no cover - malformed /proc entry
        return None
    return fields[19].decode("ascii")  # field 22 overall = starttime


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


class JournalLock:
    """Single-writer guard for a journal/store directory.

    The lock file holds ``{"pid": ..., "token": ...}``.  ``acquire``
    refuses only when the recorded owner is *provably the same live
    process*: the pid is alive **and** its current start token matches
    the recorded one (or no token could be read on either side, the
    conservative fallback).  A dead pid, or a live pid whose token
    mismatches (pid reuse), is stolen.

    Legacy bare-pid lock files (pre-token format) are still read; they
    carry no token, so they are handled with the conservative
    pid-liveness rule they were written under.
    """

    def __init__(self, directory: PathLike):
        self.path = Path(directory) / LOCK_NAME
        self._held = False

    # retained as a hook point for tests that simulate liveness
    _pid_alive = staticmethod(_pid_alive)

    @staticmethod
    def _read_owner(path: Path) -> Tuple[int, Optional[str]]:
        """Parse the lock file into ``(pid, token)``; ``(-1, None)`` if
        unreadable."""
        try:
            text = path.read_text().strip()
        except OSError:
            return -1, None
        if not text:
            return -1, None
        try:
            record = json.loads(text)
        except ValueError:
            record = None
        if isinstance(record, dict):
            pid = record.get("pid")
            token = record.get("token")
            if isinstance(pid, int) and (
                token is None or isinstance(token, str)
            ):
                return pid, token
            return -1, None
        # legacy format: the bare pid as decimal text
        try:
            return int(text), None
        except ValueError:
            return -1, None

    def _owner_is_live(self, pid: int, token: Optional[str]) -> bool:
        """Whether the recorded owner still exists as the same process."""
        if pid <= 0 or not self._pid_alive(pid):
            return False
        if token is None:
            # no recorded identity: conservative pid-liveness rule
            return True
        current = process_start_token(pid)
        if current is None:
            # pid alive but identity unreadable (e.g. it exited between
            # the kill(0) probe and the /proc read, or no /proc): do not
            # steal on ambiguous evidence
            return True
        return current == token

    def acquire(self) -> None:
        """Take the lock, stealing it only from a provably dead owner.

        Raises:
            MonitorError: when a *live* process (same pid **and** same
                start token) holds the lock.
        """
        while not self._held:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                pid, token = self._read_owner(self.path)
                if pid == os.getpid():
                    self._held = True
                    return
                if self._owner_is_live(pid, token):
                    raise MonitorError(
                        f"journal directory {self.path.parent} is "
                        f"locked by live process {pid}; a second "
                        f"writer would corrupt the journal"
                    ) from None
                # dead owner, or a recycled pid with a fresh start
                # token: the lock is stale — steal it
                try:
                    self.path.unlink()
                except FileNotFoundError:  # pragma: no cover - raced
                    pass
                continue
            pid = os.getpid()
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(
                    {"pid": pid, "token": process_start_token(pid)}
                ))
            self._held = True

    def release(self) -> None:
        """Drop the lock (idempotent; only the holder's file is removed)."""
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    @property
    def held(self) -> bool:
        """Whether this instance currently holds the lock."""
        return self._held

    def __repr__(self) -> str:
        state = "held" if self._held else "free"
        return f"JournalLock({self.path}, {state})"
