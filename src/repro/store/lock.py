"""Single-writer lock for a store directory, safe against PID reuse.

Two live processes appending to one segment log would interleave
frames and corrupt the tail, so every durable store takes this lock on
attach.  The lock file records the owner as a ``(pid, start token)``
pair rather than a bare pid: after a crash the pid may be *reused* by
an unrelated process, and a bare-pid liveness probe would then refuse
to steal a lock whose true owner is long dead (wedging the journal
directory until an operator intervenes).  The start token — on Linux,
the kernel's process start time from ``/proc/<pid>/stat`` — changes
with every reincarnation of a pid, so the stale lock is recognised and
stolen even when the pid is alive again under new management.

The lock is *advisory* and crash-tolerant by design: it is stolen, not
refused, whenever the recorded owner provably no longer exists.  Two
details keep the steal itself safe under concurrency:

* the lock file is **published atomically with its content** — the
  owner record is written to a private temp file and hard-linked into
  place, so no contender can ever observe an empty lock and misjudge
  it as stale;
* the steal sequence (re-read the owner, judge liveness, unlink,
  claim) runs inside an ``flock``-ed critical section on a sidecar
  guard file.  Without it, two processes that both judged the *old*
  owner stale would race: the loser of the claim could unlink the
  winner's fresh lock and acquire anyway — two live writers on one
  segment log, exactly what the lock exists to prevent.
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.errors import MonitorError

try:
    import fcntl
except ImportError:  # pragma: no cover - non-unix platform
    fcntl = None

#: Lock file name inside a journal/store directory.
LOCK_NAME = "journal.lock"

#: Sidecar file whose ``flock`` serialises steal attempts.  Persistent
#: and content-free: only its file lock matters.
GUARD_NAME = LOCK_NAME + ".guard"

PathLike = Union[str, Path]

#: Locks held by *this* process, keyed by real path: a second store
#: instance on the same directory must be refused, not treated as a
#: re-acquire — same-pid writers interleave frames just as badly as
#: cross-process ones.
_held_locks: Dict[str, "JournalLock"] = {}


def process_start_token(pid: int) -> Optional[str]:
    """A token that distinguishes reincarnations of the same pid.

    On Linux this is field 22 of ``/proc/<pid>/stat`` — the process
    start time in clock ticks since boot, which a recycled pid cannot
    repeat.  Returns ``None`` where no such identity source exists
    (non-Linux, or the process is gone); callers must then fall back
    to pid liveness alone.
    """
    try:
        stat = Path(f"/proc/{pid}/stat").read_bytes()
    except OSError:
        return None
    # the comm field (2) is parenthesised and may contain spaces, so
    # split after its closing paren: fields 3.. follow
    close = stat.rfind(b")")
    if close < 0:  # pragma: no cover - malformed /proc entry
        return None
    fields = stat[close + 1:].split()
    if len(fields) < 20:  # pragma: no cover - malformed /proc entry
        return None
    return fields[19].decode("ascii")  # field 22 overall = starttime


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


class JournalLock:
    """Single-writer guard for a journal/store directory.

    The lock file holds ``{"pid": ..., "token": ...}``.  ``acquire``
    refuses when the recorded owner is *provably the same live
    process*: the pid is alive **and** its current start token matches
    the recorded one (or no token could be read on either side, the
    conservative fallback) — or when another instance in this very
    process already holds the directory.  A dead pid, or a live pid
    whose token mismatches (pid reuse), is stolen.

    Legacy bare-pid lock files (pre-token format) are still read; they
    carry no token, so they are handled with the conservative
    pid-liveness rule they were written under.
    """

    def __init__(self, directory: PathLike):
        self.path = Path(directory) / LOCK_NAME
        self._key = os.path.realpath(self.path)
        self._held = False

    # retained as a hook point for tests that simulate liveness
    _pid_alive = staticmethod(_pid_alive)

    @property
    def guard_path(self) -> Path:
        """The sidecar file whose ``flock`` serialises steals."""
        return self.path.with_name(GUARD_NAME)

    @staticmethod
    def _read_owner(path: Path) -> Tuple[int, Optional[str]]:
        """Parse the lock file into ``(pid, token)``; ``(-1, None)`` if
        unreadable."""
        try:
            text = path.read_text().strip()
        except OSError:
            return -1, None
        if not text:
            return -1, None
        try:
            record = json.loads(text)
        except ValueError:
            record = None
        if isinstance(record, dict):
            pid = record.get("pid")
            token = record.get("token")
            if isinstance(pid, int) and (
                token is None or isinstance(token, str)
            ):
                return pid, token
            return -1, None
        # legacy format: the bare pid as decimal text
        try:
            return int(text), None
        except ValueError:
            return -1, None

    def _owner_is_live(self, pid: int, token: Optional[str]) -> bool:
        """Whether the recorded owner still exists as the same process."""
        if pid <= 0 or not self._pid_alive(pid):
            return False
        if token is None:
            # no recorded identity: conservative pid-liveness rule
            return True
        current = process_start_token(pid)
        if current is None:
            # pid alive but identity unreadable (e.g. it exited between
            # the kill(0) probe and the /proc read, or no /proc): do not
            # steal on ambiguous evidence
            return True
        return current == token

    def _check_in_process(self) -> None:
        """Refuse when another live instance in this process holds the
        directory — a same-pid second writer is still a second writer."""
        other = _held_locks.get(self._key)
        if other is not None and other is not self and other._held:
            raise MonitorError(
                f"journal directory {self.path.parent} is already "
                f"locked by another store instance in this process; "
                f"a second writer would corrupt the journal"
            )

    def _try_claim(self, candidate: Path) -> bool:
        """Atomically install ``candidate`` as the lock file.

        ``os.link`` publishes the file and its owner record in one
        step (and fails for all but one contender), so a reader can
        never observe a claimed-but-empty lock and misjudge it stale.
        """
        try:
            os.link(candidate, self.path)
            return True
        except FileExistsError:
            return False
        except OSError:  # pragma: no cover - no hardlink support
            # degrade to create-exclusive + write; the brief
            # exists-without-content window is readable as garbage,
            # which contenders treat as stale
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                return False
            with os.fdopen(fd, "wb") as fh:
                fh.write(candidate.read_bytes())
            return True

    @contextlib.contextmanager
    def _steal_guard(self):
        """``flock``-ed critical section for the steal protocol.

        Judge-then-unlink is not atomic on its own: two contenders
        that both judged the same stale owner would otherwise unlink
        whatever lock file is present *now* — including the fresh one
        the first stealer just committed.  Serialising the sequence
        (and re-reading the owner inside it) closes that window.
        """
        if fcntl is None:  # pragma: no cover - non-unix platform
            yield
            return
        fd = os.open(self.guard_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing the fd drops the flock

    def acquire(self) -> None:
        """Take the lock, stealing it only from a provably dead owner.

        Raises:
            MonitorError: when a *live* process (same pid **and** same
                start token) holds the lock, or another instance in
                this process does.
        """
        if self._held:
            return
        self._check_in_process()
        pid = os.getpid()
        candidate = self.path.with_name(
            f"{LOCK_NAME}.{pid}.{id(self):x}.tmp"
        )
        candidate.write_text(json.dumps(
            {"pid": pid, "token": process_start_token(pid)}
        ))
        try:
            while True:
                if self._try_claim(candidate):
                    break
                with self._steal_guard():
                    # re-read under the guard: only one steal sequence
                    # runs at a time, and it judges the lock file as it
                    # is *now*, not as it was before the guard
                    owner_pid, token = self._read_owner(self.path)
                    if owner_pid == pid:
                        self._check_in_process()
                        # our own pid with no live holder instance: a
                        # leftover from a simulated crash — stale
                    elif self._owner_is_live(owner_pid, token):
                        raise MonitorError(
                            f"journal directory {self.path.parent} is "
                            f"locked by live process {owner_pid}; a "
                            f"second writer would corrupt the journal"
                        ) from None
                    try:
                        self.path.unlink()
                    except FileNotFoundError:
                        pass
                    if self._try_claim(candidate):
                        break
                # a guard-less first-attempt creator slipped in between
                # our unlink and claim: loop to judge the new owner
        finally:
            candidate.unlink(missing_ok=True)
        self._held = True
        _held_locks[self._key] = self

    def abandon(self) -> None:
        """Drop in-process ownership *without* touching the lock file.

        Simulates the owner dying (chaos tests): the file stays behind
        exactly as a killed process would leave it, but this instance
        no longer counts as a live in-process holder, so a recovering
        store in the same process steals the lock the way a respawned
        process would.
        """
        if not self._held:
            return
        self._held = False
        if _held_locks.get(self._key) is self:
            del _held_locks[self._key]

    def release(self) -> None:
        """Drop the lock (idempotent; only the holder's file is removed)."""
        if not self._held:
            return
        self._held = False
        if _held_locks.get(self._key) is self:
            del _held_locks[self._key]
        owner_pid, _ = self._read_owner(self.path)
        if owner_pid == os.getpid():
            try:
                self.path.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    @property
    def held(self) -> bool:
        """Whether this instance currently holds the lock."""
        return self._held

    def __repr__(self) -> str:
        state = "held" if self._held else "free"
        return f"JournalLock({self.path}, {state})"
