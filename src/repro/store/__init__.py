"""``repro.store`` — the durable state-store seam.

The checkpoint/journal machinery of :mod:`repro.core.persist` writes
through a :class:`StateStore` backend:

* :class:`MemoryStore` — plain Python containers, nothing durable
  (tests, ephemeral monitors, and the reference the durable backend's
  property tests compare against);
* :class:`SegmentStore` — a checksummed append-only segment WAL with
  atomic checkpoint rotation, a previous-generation fallback, and an
  optional SQLite cold tier for the minimal anchor tuples of
  unbounded ``ONCE``/``SINCE`` state.

Every durable record is framed by :mod:`repro.store.record` — format
magic, length prefix, blake2s-64 checksum — so torn writes and bit
flips are *detected*, and :mod:`repro.store.scrub` turns detection
into repair: truncate-to-last-valid-record, previous-generation
promotion, stale-artifact cleanup.  The ``repro scrub`` CLI subcommand
fronts the same functions.

Fsync discipline is three-valued (``False`` / ``True`` / ``"force"``)
with a ``REPRO_FSYNC=off`` escape hatch honoured only by ``True`` —
see :func:`fsync_enabled`.
"""

from repro.store.base import (
    FSYNC_ENV,
    RepairReport,
    ScrubFinding,
    ScrubReport,
    StateStore,
    StoreSnapshot,
    SYNC_FORCE,
    fsync_enabled,
)
from repro.store.lock import JournalLock, process_start_token
from repro.store.memory import MemoryStore
from repro.store.record import (
    STORE_MAGIC,
    SegmentScan,
    decode_record,
    encode_record,
    payload_digest,
    scan_segment,
)
from repro.store.scrub import (
    find_store_directories,
    is_store_directory,
    repair_directory,
    repair_tree,
    scrub_directory,
    scrub_tree,
)
from repro.store.segment import (
    FAILPOINT_ENV,
    FAILPOINT_EXIT,
    FAILPOINTS,
    SegmentStore,
    list_segments,
    segment_epoch,
    segment_name,
)
from repro.store.sqlite import ColdAnchorStore, sqlite_available

__all__ = [
    "ColdAnchorStore",
    "FAILPOINT_ENV",
    "FAILPOINT_EXIT",
    "FAILPOINTS",
    "FSYNC_ENV",
    "JournalLock",
    "MemoryStore",
    "RepairReport",
    "ScrubFinding",
    "ScrubReport",
    "SegmentScan",
    "SegmentStore",
    "StateStore",
    "StoreSnapshot",
    "STORE_MAGIC",
    "SYNC_FORCE",
    "decode_record",
    "encode_record",
    "find_store_directories",
    "fsync_enabled",
    "is_store_directory",
    "list_segments",
    "payload_digest",
    "process_start_token",
    "repair_directory",
    "repair_tree",
    "scan_segment",
    "scrub_directory",
    "scrub_tree",
    "segment_epoch",
    "segment_name",
    "sqlite_available",
]
