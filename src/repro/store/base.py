"""The ``StateStore`` seam: what a durability backend must provide.

:mod:`repro.core.persist` drives durability through this interface, so
the checkpoint/journal machinery is indifferent to *where* records
land: in a dict (:class:`~repro.store.memory.MemoryStore`, for tests
and ephemeral runs) or in a checksummed segment log with an optional
SQLite cold tier (:class:`~repro.store.segment.SegmentStore`).

A store holds three kinds of durable data:

* the **checkpoint document** — the hot serialized checker state
  (written atomically, retained one generation back for fallback);
* **journal records** — the ``(timestamp, transaction)`` steps applied
  since the checkpoint, appended one framed record at a time;
* optional **cold rows** — minimal anchor tuples of unbounded
  ``ONCE``/``SINCE`` state, spilled out of the checkpoint document
  into the cold tier (the paper's bounded-history split: the bounded
  horizon is hot, the collapsed anchors are cold).

``scrub``/``repair`` complete the crash story: scrub verifies every
checksum and reports findings; repair truncates damaged segments back
to their last valid record and falls back to the previous checkpoint
generation when the current one is unreadable.

The ``sync`` discipline is three-valued everywhere it appears:
``False`` (flush only), ``True`` (fsync, unless the ``REPRO_FSYNC=off``
escape hatch disables it for test suites), and ``"force"`` (fsync
regardless of the environment — what chaos and durability jobs use, so
the escape hatch can never weaken the guarantees under test).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

PathLike = Union[str, Path]

#: Value of ``sync=`` that fsyncs regardless of ``REPRO_FSYNC``.
SYNC_FORCE = "force"

#: Environment variable that downgrades ``sync=True`` to flush-only.
FSYNC_ENV = "REPRO_FSYNC"


def fsync_enabled(sync) -> bool:
    """Whether this ``sync=`` setting should issue real ``fsync`` calls.

    ``sync=True`` honours the ``REPRO_FSYNC=off`` escape hatch (set by
    the tier-1 test suite so thousands of journal writes don't each pay
    a disk flush); ``sync="force"`` ignores it, which the durability
    chaos jobs assert — an environment variable must never be able to
    weaken the property actually under test.
    """
    if sync == SYNC_FORCE:
        return True
    if not sync:
        return False
    return os.environ.get(FSYNC_ENV, "").strip().lower() not in (
        "off", "0", "false", "no",
    )


def fsync_file(fh, sync) -> None:
    """``fsync`` an open file if the sync setting calls for it."""
    if fsync_enabled(sync):
        os.fsync(fh.fileno())


def fsync_dir(directory: PathLike, sync) -> None:
    """``fsync`` a directory so renamed/created entries survive a host
    crash, if the sync setting calls for it."""
    if not fsync_enabled(sync):
        return
    fd = os.open(Path(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class StoreSnapshot:
    """Everything :func:`repro.core.persist.recover` needs from a store.

    Attributes:
        document: the newest loadable checkpoint document (``None``
            when the store has never checkpointed).
        cold_rows: the cold anchor rows belonging to that checkpoint
            generation, as ``{node_id: [[valuation, times], ...]}`` —
            empty when the store keeps no cold tier.
        records: verified journal records, oldest first, across every
            retained segment (including records already covered by the
            checkpoint, which replay skips by timestamp).
        epoch: the checkpoint generation the snapshot restored
            (``-1`` before any checkpoint).
        fallback: True when the *current* checkpoint generation was
            damaged and the previous one was used instead.
        torn_records: journal records lost to damage — frames after
            the first unverifiable frame of any segment.
    """

    __slots__ = ("document", "cold_rows", "records", "epoch",
                 "fallback", "torn_records")

    def __init__(self, document, cold_rows=None, records=(),
                 epoch=-1, fallback=False, torn_records=0):
        self.document: Optional[dict] = document
        self.cold_rows: Dict[str, list] = dict(cold_rows or {})
        self.records: List[dict] = list(records)
        self.epoch: int = epoch
        self.fallback: bool = fallback
        self.torn_records: int = torn_records

    def __repr__(self) -> str:
        has = "checkpoint" if self.document is not None else "empty"
        return (
            f"StoreSnapshot({has}, epoch={self.epoch}, "
            f"{len(self.records)} record(s), "
            f"torn={self.torn_records}, fallback={self.fallback})"
        )


class ScrubFinding:
    """One integrity problem found by a store scrub."""

    __slots__ = ("path", "kind", "detail", "repair")

    def __init__(self, path, kind: str, detail: str, repair: str):
        #: file the damage lives in
        self.path = Path(path)
        #: classification: ``torn`` / ``checksum`` / ``garbled`` /
        #: ``version`` / ``missing``
        self.kind = kind
        #: human-readable description with the byte offset
        self.detail = detail
        #: the repair action ``--repair`` would take: ``truncate``,
        #: ``fallback``, ``rebuild``, or ``none`` (unrepairable)
        self.repair = repair

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": str(self.path), "kind": self.kind,
            "detail": self.detail, "repair": self.repair,
        }

    def __repr__(self) -> str:
        return f"ScrubFinding({self.path.name}, {self.kind}, {self.repair})"


class ScrubReport:
    """Outcome of scrubbing one store directory (or a tree of them)."""

    __slots__ = ("directory", "files_checked", "records_verified",
                 "findings")

    def __init__(self, directory, files_checked=0, records_verified=0,
                 findings=()):
        self.directory = Path(directory)
        self.files_checked: int = files_checked
        self.records_verified: int = records_verified
        self.findings: List[ScrubFinding] = list(findings)

    @property
    def clean(self) -> bool:
        """Whether every durable record verified."""
        return not self.findings

    @property
    def repairable(self) -> bool:
        """Whether every finding has a known repair action."""
        return all(f.repair != "none" for f in self.findings)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "directory": str(self.directory),
            "files_checked": self.files_checked,
            "records_verified": self.records_verified,
            "clean": self.clean,
            "repairable": self.repairable,
            "findings": [f.to_dict() for f in self.findings],
        }

    def merge(self, other: "ScrubReport") -> None:
        """Fold a child directory's report into this one (shard trees)."""
        self.files_checked += other.files_checked
        self.records_verified += other.records_verified
        self.findings.extend(other.findings)

    def __repr__(self) -> str:
        state = "clean" if self.clean else (
            f"{len(self.findings)} finding(s)"
        )
        return (
            f"ScrubReport({self.directory}, "
            f"{self.files_checked} file(s), "
            f"{self.records_verified} record(s), {state})"
        )


class RepairReport:
    """Outcome of repairing a store: the actions taken, per file."""

    __slots__ = ("directory", "actions", "unrepaired", "torn_records")

    def __init__(self, directory, actions=(), unrepaired=(),
                 torn_records=0):
        self.directory = Path(directory)
        #: ``(path, action)`` pairs, e.g. ``("wal-00000001.log",
        #: "truncated to 412 bytes")``
        self.actions: List[Tuple[Path, str]] = [
            (Path(p), a) for p, a in actions
        ]
        #: findings no repair action exists for
        self.unrepaired: List[ScrubFinding] = list(unrepaired)
        #: journal records lost by truncation across all repaired files
        self.torn_records: int = torn_records

    @property
    def complete(self) -> bool:
        """Whether every finding was repaired."""
        return not self.unrepaired

    def to_dict(self) -> Dict[str, Any]:
        return {
            "directory": str(self.directory),
            "complete": self.complete,
            "torn_records": self.torn_records,
            "actions": [
                {"path": str(p), "action": a} for p, a in self.actions
            ],
            "unrepaired": [f.to_dict() for f in self.unrepaired],
        }

    def __repr__(self) -> str:
        return (
            f"RepairReport({self.directory}, "
            f"{len(self.actions)} action(s), "
            f"complete={self.complete})"
        )


class StateStore(ABC):
    """Abstract durability backend behind checkpoint/journal machinery.

    Lifecycle: construct → (``load`` for recovery | ``checkpoint`` for
    a fresh attach) → ``append`` per committed step → periodic
    ``checkpoint`` → ``close``.  Implementations own their files and
    locking; callers never touch paths directly.
    """

    #: whether this backend persists across processes
    durable = False

    @abstractmethod
    def append(self, record: dict) -> None:
        """Durably append one journal record (a committed step)."""

    @abstractmethod
    def checkpoint(self, document: dict,
                   cold_rows: Optional[Dict[str, list]] = None) -> None:
        """Atomically write a checkpoint and start a fresh journal
        segment; old segments/generations beyond the retention window
        are reclaimed."""

    @abstractmethod
    def load(self) -> StoreSnapshot:
        """Read back the newest recoverable state, leniently: damaged
        journal tails are truncated to the last valid record (counted
        in ``torn_records``), and a damaged current checkpoint falls
        back to the previous generation where one is retained."""

    @abstractmethod
    def close(self) -> None:
        """Flush, close files, release locks (idempotent)."""

    def abandon(self) -> None:
        """Simulate this store's process dying (chaos tests): drop
        in-process claims (the writer lock's same-process registry)
        while leaving every on-disk artifact — including the lock
        file — exactly as a killed process would.  No-op where nothing
        is held."""

    def scrub(self) -> ScrubReport:
        """Verify every durable record; in-memory stores are vacuously
        clean."""
        return ScrubReport(getattr(self, "directory", "<memory>"))

    def repair(self) -> RepairReport:
        """Repair what :meth:`scrub` found; no-op where nothing is
        durable."""
        return RepairReport(getattr(self, "directory", "<memory>"))

    # -- accounting ----------------------------------------------------

    @property
    def records_written(self) -> int:
        """Journal records appended over this store's lifetime."""
        return getattr(self, "_records_written", 0)

    @property
    def checkpoints_written(self) -> int:
        """Checkpoints written over this store's lifetime."""
        return getattr(self, "_checkpoints_written", 0)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
