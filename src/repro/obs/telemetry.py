"""End-to-end event-time telemetry: arrival → verdict, per stage.

The paper's point is that integrity checking happens in *real time*,
so the question that matters operationally is not "how long does a
step take" but "how long after an event **arrived** did its verdict
land, and where did the time go".  :class:`EventTimeTelemetry` answers
it by stamping every event at each stage boundary of the monitoring
path and recording the stage latencies into fixed-bucket histograms:

========  ==========================================================
stage     measured interval
========  ==========================================================
reorder   arrival at the ingest boundary → released by the watermark
          frontier (``repro_event_reorder_seconds``)
queue     released → dequeued for checking
          (``repro_event_queue_seconds``)
check     dequeued → verdict computed
          (``repro_event_check_seconds``)
verdict   arrival → verdict, end to end
          (``repro_event_verdict_seconds``)
========  ==========================================================

Alongside the wall-clock stages it samples two *event-time* series
continuously (the units are the monitored stream's clock units, so
they are deterministic for a given delivery order): the watermark
frontier lag (``repro_event_frontier_lag``) and the ingest queue
depth (``repro_event_queue_depth``).  Events excluded before a verdict
— shed by the overloaded queue — and constraint evaluations deferred
by a blown :class:`~repro.resilience.StepBudget` become telemetry
events too (``repro_event_shed_total`` / ``repro_event_deferred_total``).

The instrumentation follows the repository's overhead-gate pattern:
every call site guards with ``if telemetry is not None``, so the
disabled path costs one attribute load per site and allocates nothing;
the enabled path pre-resolves its histogram children at construction,
so a stamp is a clock read plus a couple of dict operations.  The
overhead bound (< 5% on the BENCH_e2 tail step time) is pinned by the
``telemetry/monitor`` column of benchmark e2.

Events are keyed by their **normalised timestamp** — the value the
reorderer emits after skew adjustment — which is unique per monitored
state (the reorderer net-merges same-time deltas), so one stamp per
stage suffices.  When events reach the monitor without an ingest
pipeline (plain :meth:`~repro.core.monitor.Monitor.step`), arrival is
stamped at the step boundary and the reorder/queue stages stay empty.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry

# Metric family names (the ``repro_event_*`` event-time families).
EVENT_REORDER_SECONDS = "repro_event_reorder_seconds"
EVENT_QUEUE_SECONDS = "repro_event_queue_seconds"
EVENT_CHECK_SECONDS = "repro_event_check_seconds"
EVENT_VERDICT_SECONDS = "repro_event_verdict_seconds"
EVENT_FRONTIER_LAG = "repro_event_frontier_lag"
EVENT_QUEUE_DEPTH = "repro_event_queue_depth"
EVENT_SHED_TOTAL = "repro_event_shed_total"
EVENT_DEFERRED_TOTAL = "repro_event_deferred_total"

#: Bucket bounds for event-time lag/depth histograms (clock units /
#: queued events — integral, so powers of two resolve exactly).
DEFAULT_LAG_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)

#: The stage → family mapping (used by the health snapshot).
STAGE_FAMILIES: Dict[str, str] = {
    "reorder": EVENT_REORDER_SECONDS,
    "queue": EVENT_QUEUE_SECONDS,
    "check": EVENT_CHECK_SECONDS,
    "verdict": EVENT_VERDICT_SECONDS,
}


class EventTimeTelemetry:
    """Stamps events through the monitoring path; feeds the SLO engine.

    Args:
        metrics: the :class:`~repro.obs.metrics.MetricsRegistry` the
            event-time families are recorded into (one is created when
            omitted — telemetry is always exportable).
        slo: optional :class:`~repro.obs.slo.SLOEngine`; when present,
            every verdict feeds it one indicator sample and the alerts
            it fires are returned from :meth:`verdict`.
        clock: wall-clock source (tests inject a deterministic fake).
    """

    __slots__ = (
        "metrics", "slo", "_clock",
        "_arrived", "_released", "_checking",
        "steps_processed", "violations_total", "degraded_steps",
        "skipped_steps", "shed_events", "deferred_evaluations",
        "last_frontier_lag", "last_queue_depth",
        "_reorder_hist", "_queue_hist", "_check_hist", "_verdict_hist",
        "_lag_hist", "_depth_hist", "_shed_counter", "_step_sheds",
    )

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        slo=None,
        clock: Callable[[], float] = perf_counter,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.slo = slo
        self._clock = clock
        self._arrived: Dict[int, float] = {}
        self._released: Dict[int, float] = {}
        self._checking: Dict[int, float] = {}
        self.steps_processed = 0
        self.violations_total = 0
        self.degraded_steps = 0
        self.skipped_steps = 0
        self.shed_events = 0
        self.deferred_evaluations = 0
        #: latest sampled values (event-time units; None before the
        #: first sample — a run without an ingest pipeline never lags)
        self.last_frontier_lag: Optional[int] = None
        self.last_queue_depth: Optional[int] = None
        self._step_sheds = 0
        hist = self.metrics.histogram
        self._reorder_hist = hist(
            EVENT_REORDER_SECONDS, buckets=DEFAULT_LATENCY_BUCKETS,
            help="Arrival to watermark release, per event",
        )
        self._queue_hist = hist(
            EVENT_QUEUE_SECONDS, buckets=DEFAULT_LATENCY_BUCKETS,
            help="Watermark release to dequeue, per event",
        )
        self._check_hist = hist(
            EVENT_CHECK_SECONDS, buckets=DEFAULT_LATENCY_BUCKETS,
            help="Dequeue to verdict, per event",
        )
        self._verdict_hist = hist(
            EVENT_VERDICT_SECONDS, buckets=DEFAULT_LATENCY_BUCKETS,
            help="Arrival to verdict, end to end",
        )
        self._lag_hist = hist(
            EVENT_FRONTIER_LAG, buckets=DEFAULT_LAG_BUCKETS,
            help="Watermark frontier lag samples (clock units)",
        )
        self._depth_hist = hist(
            EVENT_QUEUE_DEPTH, buckets=DEFAULT_LAG_BUCKETS,
            help="Ingest queue depth samples (events)",
        )
        self._shed_counter = self.metrics.counter(
            EVENT_SHED_TOTAL,
            help="Events shed before reaching a verdict",
        )

    # ------------------------------------------------------------------
    # stage stamps (called by the reorderer / queue / monitor)
    # ------------------------------------------------------------------

    def arrived(self, time: int) -> None:
        """Stamp an event's arrival (first stamp wins on replays)."""
        if time not in self._arrived:
            self._arrived[time] = self._clock()

    def released(self, time: int) -> None:
        """Stamp an event's release by the watermark frontier."""
        now = self._clock()
        start = self._arrived.get(time)
        if start is not None:
            self._reorder_hist.observe(now - start)
        self._released[time] = now

    def check_begin(self, time: int) -> None:
        """Stamp the start of checking (dequeue); implies arrival."""
        now = self._clock()
        start = self._released.pop(time, None)
        if start is not None:
            self._queue_hist.observe(now - start)
        if time not in self._arrived:
            self._arrived[time] = now
        self._checking[time] = now

    def verdict(self, time: int, report) -> List:
        """Close an event's lifecycle; returns any SLO alerts fired.

        ``report`` is the step's
        :class:`~repro.core.violations.StepReport` (a *skipped* report
        — the fault boundary dropped the input — still closes the
        event: a dead letter is its verdict).
        """
        now = self._clock()
        started = self._checking.pop(time, None)
        check_seconds = now - started if started is not None else 0.0
        self._check_hist.observe(check_seconds)
        arrived = self._arrived.pop(time, None)
        verdict_seconds = now - arrived if arrived is not None else 0.0
        self._verdict_hist.observe(verdict_seconds)
        self.steps_processed += 1
        violations = len(report.violations)
        self.violations_total += violations
        if report.degraded:
            self.degraded_steps += 1
        if report.skipped:
            self.skipped_steps += 1
        sheds = self._step_sheds
        self._step_sheds = 0
        if self.slo is None:
            return []
        return self.slo.observe({
            "verdict_seconds": verdict_seconds,
            "check_seconds": check_seconds,
            "frontier_lag": self.last_frontier_lag or 0,
            "queue_depth": self.last_queue_depth or 0,
            "shed": sheds,
            "deferred": len(report.deferred),
            "fault": 1 if report.skipped else 0,
            "violations": violations,
        })

    # ------------------------------------------------------------------
    # exclusions and continuous samples
    # ------------------------------------------------------------------

    def shed(self, time: int) -> None:
        """An event was shed by the overloaded queue — lifecycle over."""
        self.shed_events += 1
        self._step_sheds += 1
        self._shed_counter.inc()
        self._arrived.pop(time, None)
        self._released.pop(time, None)
        self._checking.pop(time, None)

    def deferred(self, constraint: str) -> None:
        """A constraint evaluation was shed by the step budget."""
        self.deferred_evaluations += 1
        self.metrics.counter(
            EVENT_DEFERRED_TOTAL,
            constraint=constraint,
            help="Constraint evaluations deferred under deadline",
        ).inc()

    def sample(self, frontier_lag: Optional[int],
               queue_depth: Optional[int]) -> None:
        """Record one continuous sample of the event-time gauges."""
        if frontier_lag is not None:
            self.last_frontier_lag = frontier_lag
            self._lag_hist.observe(frontier_lag)
        if queue_depth is not None:
            self.last_queue_depth = queue_depth
            self._depth_hist.observe(queue_depth)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Events stamped but not yet closed by a verdict or shed."""
        return len(self._arrived)

    def stage_histograms(self) -> Dict[str, object]:
        """The four stage histograms keyed by stage name."""
        return {
            "reorder": self._reorder_hist,
            "queue": self._queue_hist,
            "check": self._check_hist,
            "verdict": self._verdict_hist,
        }

    def lag_histograms(self) -> Dict[str, object]:
        """The event-time lag/depth histograms keyed by series name."""
        return {
            "frontier": self._lag_hist,
            "queue_depth": self._depth_hist,
        }

    def __repr__(self) -> str:
        slo = ", slo" if self.slo is not None else ""
        return (
            f"EventTimeTelemetry({self.steps_processed} verdict(s), "
            f"{self.pending} pending{slo})"
        )
