"""Metric primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` holds metric *families* keyed by name; each
family fans out into labelled children (``engine="incremental"``,
``constraint="return-window"``, ...) created on demand::

    registry = MetricsRegistry()
    registry.counter("repro_violations_total",
                     engine="incremental", constraint="c1").inc()
    registry.histogram("repro_step_seconds",
                       engine="incremental").observe(0.0003)

Histograms use *fixed* bucket upper bounds chosen at creation (the
Prometheus model: cumulative bucket counts, a running sum, a total
count), so observation is O(log buckets) and export needs no raw
samples.  Exporters live in :mod:`repro.obs.export`.

Everything here is pure Python with no locks: the monitor is
single-threaded per checker, which is the unit a registry instruments.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Default latency bucket upper bounds (seconds): 1µs .. 1s, roughly
#: logarithmic, chosen so the paper's µs-scale step times land in the
#: resolved low range while pathological steps still bucket sensibly.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0,
)

#: Default size bucket upper bounds (rows / tuples per observation).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (events, violations, ...)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (aux tuples, queue depth, ...)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        self.value += amount


class Histogram:
    """Fixed-bucket histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]`` minus
    those counted by earlier buckets (i.e. non-cumulative internally);
    observations above the last bound only land in the implicit
    ``+Inf`` bucket, represented by :attr:`count`.
    """

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in buckets)
        for index, bound in enumerate(ordered):
            if bound != bound or bound <= 0 or bound == float("inf"):
                raise ValueError(
                    f"histogram bucket bounds must be strictly positive "
                    f"finite numbers; bound {index} is {bound!r}"
                )
            if index and bound <= ordered[index - 1]:
                raise ValueError(
                    f"histogram bucket bounds must be strictly "
                    f"increasing; bound {index} ({bound!r}) does not "
                    f"exceed bound {index - 1} ({ordered[index - 1]!r})"
                )
        self.buckets = ordered
        self.bucket_counts: List[int] = [0] * len(ordered)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        index = bisect_left(self.buckets, value)
        if index < len(self.buckets):
            self.bucket_counts[index] += 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram, in place.

        Merging is associative and commutative (bucket counts, sum, and
        count all add), which is what lets per-shard or per-chunk
        snapshots fold into the single-run aggregate — the seam the
        health surface and the future sharded monitor rely on.  Both
        histograms must share identical bucket bounds.
        """
        if not isinstance(other, Histogram):
            raise ValueError(
                f"can only merge a Histogram, not {type(other).__name__}"
            )
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different bucket bounds "
                f"({len(self.buckets)} vs {len(other.buckets)} bounds)"
            )
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.sum += other.sum
        self.count += other.count

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        The estimate is the upper bound of the bucket containing the
        quantile rank — exact to bucket resolution, which is the best a
        fixed-bucket histogram can do.  Observations above the last
        bound report the last bound (the histogram cannot see further).
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self.count:
            return 0.0
        rank = q * self.count
        running = 0
        for bound, count in zip(self.buckets, self.bucket_counts):
            running += count
            if running >= rank and count:
                return bound
        return self.buckets[-1]

    def cumulative_counts(self) -> List[int]:
        """Counts ``<= bound`` per bucket, ending with the ``+Inf`` count."""
        out: List[int] = []
        running = 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        out.append(self.count)
        return out

    @property
    def mean(self) -> float:
        """Mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric family: a kind, help text, and labelled children."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name, kind, help_text, buckets=None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[LabelKey, object] = {}

    def child(self, labels: Dict[str, str]):
        key = _label_key(labels)
        child = self.children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self.buckets)
            else:
                child = _KINDS[self.kind]()
            self.children[key] = child
        return child


class MetricsRegistry:
    """Holds metric families; the unit of export.

    One registry per monitored process (or per benchmark run) is the
    intended granularity; engines and constraints are distinguished by
    labels, not by separate registries.
    """

    def __init__(self):
        self._families: Dict[str, _Family] = {}

    def _family(self, name, kind, help_text, buckets=None) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, buckets)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        if help_text and not family.help:
            family.help = help_text
        if (
            kind == "histogram"
            and buckets is not None
            and tuple(buckets) != family.buckets
        ):
            raise ValueError(
                f"metric {name!r} was created with different buckets"
            )
        return family

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """The counter child of family ``name`` with the given labels."""
        return self._family(name, "counter", help).child(labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """The gauge child of family ``name`` with the given labels."""
        return self._family(name, "gauge", help).child(labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
        **labels,
    ) -> Histogram:
        """The histogram child of family ``name`` with the given labels.

        The first call for a family fixes its bucket bounds (defaulting
        to :data:`DEFAULT_LATENCY_BUCKETS`); later calls may omit them.
        """
        family = self._families.get(name)
        if family is None and buckets is None:
            buckets = DEFAULT_LATENCY_BUCKETS
        return self._family(
            name, "histogram", help, tuple(buckets) if buckets else None
        ).child(labels)

    def families(self) -> Iterator[tuple]:
        """Yield ``(name, kind, help, [(labels_dict, child), ...])``
        sorted by family name then label values — the exporters' stable
        iteration order."""
        for name in sorted(self._families):
            family = self._families[name]
            series = [
                (dict(key), family.children[key])
                for key in sorted(family.children)
            ]
            yield name, family.kind, family.help, series

    def __len__(self) -> int:
        return len(self._families)

    def __repr__(self) -> str:
        series = sum(len(f.children) for f in self._families.values())
        return f"MetricsRegistry({len(self._families)} famil(ies), {series} series)"
