"""Flight recorder: a bounded black box for post-incident forensics.

A :class:`FlightRecorder` rides along a monitored run (wired in by
:meth:`repro.Monitor.enable_statewatch` or a standalone
:class:`~repro.obs.statewatch.StateWatch`) and keeps a bounded ring
buffer of recent step *spans* — step index, timestamp, violation and
deferral names, fault summary, state alerts.  When an incident fires
it dumps the ring plus a deep auxiliary-state snapshot to a versioned
``repro-flight/1`` JSONL artifact, so the run's final approach is
preserved even after the process is gone.

Incidents, in trigger priority:

* ``"violation"`` — the step reported constraint violations;
* ``"fault"`` — a fault policy skipped the step;
* ``"budget"`` — the step budget deferred constraint evaluations;
* ``"state-alert"`` — the state observatory fired a bound or leak
  alert on the step.

Each dump *overwrites* the artifact path: the file always holds the
latest incident (the black box records the last crash, not all of
them); ``dump_count`` says how many incidents were recorded.

Artifact layout (one JSON object per line)::

    {"header": {"version": "repro-flight/1", "reason": ..., "step": ...,
                "time": ..., "engine": ..., "spans": N, "dump": K}}
    {"span": {...}}          # oldest first, up to `capacity` lines
    ...
    {"snapshot": <state_profile(deep=True) of the engine>}
    {"evidence": [...]}      # only on violation dumps; the per-witness
                             # anchor evidence of repro.core.diagnose

The ``evidence`` entries are produced by
:func:`repro.core.diagnose.witness_evidence`, so a flight artifact
joins verbatim against a later ``diagnose()`` of the same violation.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import TelemetryError

#: artifact schema identifier (bump on breaking layout changes)
FLIGHT_VERSION = "repro-flight/1"

#: incident kinds, in trigger priority order
FLIGHT_REASONS = ("violation", "fault", "budget", "state-alert")


class FlightRecorder:
    """Bounded ring of step spans, dumped to JSONL on incidents.

    Args:
        path: artifact path the black box dumps to (parent directories
            are created; each dump overwrites the file).
        capacity: spans retained in the ring (the last ``capacity``
            steps before an incident appear in the artifact).
        max_witnesses: witnesses per violation examined for anchor
            evidence on violation dumps.
    """

    def __init__(
        self,
        path: Union[str, Path],
        capacity: int = 256,
        max_witnesses: int = 3,
    ):
        if capacity < 1:
            raise TelemetryError("capacity must be >= 1")
        self.path = Path(path)
        self.capacity = capacity
        self.max_witnesses = max_witnesses
        self._spans: deque = deque(maxlen=capacity)
        self._dumps = 0
        self._last_reason: Optional[str] = None
        #: the OSError of the most recent failed dump (None when the
        #: last dump landed); a black box that cannot write must not
        #: take the monitored run down with it
        self.last_error: Optional[OSError] = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    @property
    def span_count(self) -> int:
        """Spans currently in the ring (at most ``capacity``)."""
        return len(self._spans)

    @property
    def dump_count(self) -> int:
        """Incidents dumped so far."""
        return self._dumps

    @property
    def last_reason(self) -> Optional[str]:
        """Reason of the most recent dump (None before any)."""
        return self._last_reason

    def note_step(self, checker, report, alerts=()) -> Optional[str]:
        """Record one step; dump and return the reason on an incident.

        Called by :class:`~repro.obs.statewatch.StateWatch` after every
        observed step.  ``report`` may be ``None`` (standalone watches
        without a step report): the span is still recorded and only
        state alerts can trigger a dump.
        """
        span: Dict[str, object] = {
            "step": report.index if report is not None else None,
            "time": report.time if report is not None else None,
            "violations": (
                [v.constraint for v in report.violations]
                if report is not None
                else []
            ),
            "deferred": (
                list(report.deferred) if report is not None else []
            ),
            "fault": (
                str(report.fault)
                if report is not None and report.fault is not None
                else None
            ),
            "alerts": [a.to_dict() for a in alerts],
        }
        self._spans.append(span)
        reason = self._incident_reason(report, alerts)
        if reason is not None:
            try:
                self.dump(checker, reason, report)
            except OSError as exc:
                self.last_error = exc
        return reason

    @staticmethod
    def _incident_reason(report, alerts) -> Optional[str]:
        if report is not None:
            if report.violations:
                return "violation"
            if report.skipped:
                return "fault"
            if report.degraded:
                return "budget"
        if alerts:
            return "state-alert"
        return None

    # ------------------------------------------------------------------
    # dumping
    # ------------------------------------------------------------------

    def dump(self, checker, reason: str, report=None) -> Path:
        """Write the artifact now (normally driven by :meth:`note_step`)."""
        if reason not in FLIGHT_REASONS:
            raise TelemetryError(
                f"unknown flight reason {reason!r}; "
                f"choose from {FLIGHT_REASONS}"
            )
        self._dumps += 1
        self._last_reason = reason
        header = {
            "version": FLIGHT_VERSION,
            "reason": reason,
            "step": report.index if report is not None else None,
            "time": report.time if report is not None else None,
            "engine": getattr(checker, "engine_label", "unknown"),
            "spans": len(self._spans),
            "dump": self._dumps,
        }
        lines = [json.dumps({"header": header}, sort_keys=True)]
        for span in self._spans:
            lines.append(json.dumps({"span": span}, sort_keys=True))
        lines.append(
            json.dumps(
                {"snapshot": checker.state_profile(deep=True)},
                sort_keys=True,
            )
        )
        evidence = self._evidence(checker, reason, report)
        if evidence is not None:
            lines.append(json.dumps({"evidence": evidence}, sort_keys=True))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        self.last_error = None
        return self.path

    def _evidence(self, checker, reason, report) -> Optional[List[Dict]]:
        if reason != "violation" or report is None:
            return None
        if getattr(checker, "now", None) != report.time:
            return None  # checker already stepped past the violation
        from repro.core.diagnose import witness_evidence

        entries = []
        for violation in report.violations:
            try:
                witnesses = witness_evidence(
                    checker, violation, self.max_witnesses
                )
            except Exception:
                continue  # forensics must never fail the step
            entries.append(
                {"constraint": violation.constraint, "witnesses": witnesses}
            )
        return entries

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({len(self._spans)}/{self.capacity} span(s), "
            f"{self._dumps} dump(s) -> {self.path})"
        )


# ----------------------------------------------------------------------
# artifact I/O
# ----------------------------------------------------------------------


def validate_flight(doc: Dict) -> Dict:
    """Validate a parsed flight artifact; return it.

    Raises:
        TelemetryError: naming the first offending field.
    """
    if not isinstance(doc, dict):
        raise TelemetryError("flight artifact must be a dict")
    header = doc.get("header")
    if not isinstance(header, dict):
        raise TelemetryError("flight artifact is missing 'header'")
    version = header.get("version")
    if version != FLIGHT_VERSION:
        raise TelemetryError(
            f"unsupported flight artifact version {version!r} "
            f"(expected {FLIGHT_VERSION!r})"
        )
    if header.get("reason") not in FLIGHT_REASONS:
        raise TelemetryError(
            f"flight header has unknown reason {header.get('reason')!r}"
        )
    spans = doc.get("spans")
    if not isinstance(spans, list):
        raise TelemetryError("flight artifact is missing 'spans'")
    if not isinstance(doc.get("snapshot"), dict):
        raise TelemetryError("flight artifact is missing 'snapshot'")
    return doc


def read_flight(path: Union[str, Path]) -> Dict:
    """Load and validate a flight artifact.

    Returns:
        ``{"header": ..., "spans": [...], "snapshot": ...,
        "evidence": [...] or None}``.
    """
    doc: Dict[str, object] = {"spans": [], "evidence": None}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"flight artifact has a malformed line: {exc}"
                ) from exc
            if "header" in record:
                doc["header"] = record["header"]
            elif "span" in record:
                doc["spans"].append(record["span"])  # type: ignore[union-attr]
            elif "snapshot" in record:
                doc["snapshot"] = record["snapshot"]
            elif "evidence" in record:
                doc["evidence"] = record["evidence"]
    return validate_flight(doc)


__all__ = [
    "FLIGHT_REASONS",
    "FLIGHT_VERSION",
    "FlightRecorder",
    "read_flight",
    "validate_flight",
]
