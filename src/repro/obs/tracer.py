"""Structured tracing for monitor runs.

A :class:`Tracer` records *spans* — named intervals with a monotonic
start time, a duration, and arbitrary attributes — nested via an
explicit begin/end stack, so a ``step`` span encloses the ``apply``,
``aux``, and ``evaluate`` spans produced while checking that step.
Completed spans are emitted in completion order (children before their
parent, as in every mainstream trace format) and can be written out as
JSON Lines, one span per line, with a stable field order::

    {"name": "evaluate", "span": 3, "parent": 1, "depth": 1,
     "start": 0.000813, "duration": 0.000212,
     "constraint": "return-window", "violations": 0}

Timestamps are seconds since the tracer was created, taken from a
monotonic clock (``time.perf_counter`` by default; tests inject a fake
clock for deterministic golden files).

The tracer is deliberately dumb: it does not know about engines or
constraints.  :class:`repro.obs.instrument.MonitorInstrumentation`
maps checker hook calls onto spans.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Dict, List, Union

PathLike = Union[str, Path]

#: Fixed leading fields of every span record, in emission order.
SPAN_FIELDS = ("name", "span", "parent", "depth", "start", "duration")


class Tracer:
    """Collects nested span records with monotonic timestamps.

    Args:
        clock: monotonic time source (seconds as float); the default is
            :func:`time.perf_counter`.  Tests pass a deterministic fake.
        sink: optional file-like object; completed spans are streamed to
            it immediately as JSONL lines (the caller owns the file).
        retain: keep completed spans in :attr:`events` (default).  Long
            runs streaming to a ``sink`` can pass ``False`` to keep the
            tracer's memory constant.
    """

    def __init__(
        self,
        clock: Callable[[], float] = perf_counter,
        sink=None,
        retain: bool = True,
    ):
        self._clock = clock
        self._origin = clock()
        self._sink = sink
        self._retain = retain
        #: completed span records, in completion order
        self.events: List[Dict[str, Any]] = []
        self._stack: List[tuple] = []  # (id, name, start, attrs)
        self._next_id = 1

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def now(self) -> float:
        """Seconds elapsed since the tracer was created (monotonic)."""
        return self._clock() - self._origin

    def begin(self, name: str, **attrs) -> int:
        """Open a span; returns its id.  Close it with :meth:`end`."""
        span_id = self._next_id
        self._next_id += 1
        self._stack.append((span_id, name, self.now(), attrs))
        return span_id

    def end(self, **extra) -> Dict[str, Any]:
        """Close the innermost open span, merging ``extra`` attributes."""
        if not self._stack:
            raise RuntimeError("Tracer.end() with no open span")
        span_id, name, start, attrs = self._stack.pop()
        if extra:
            attrs = {**attrs, **extra}
        return self._emit(name, span_id, start, self.now() - start, attrs)

    def event(self, name: str, seconds: float = 0.0, **attrs) -> Dict[str, Any]:
        """Record a completed leaf span of the given duration.

        Hook implementations receive durations after the fact, so leaf
        work (a constraint evaluation, an auxiliary-relation update) is
        recorded in one call; ``start`` is back-dated by ``seconds``.
        """
        span_id = self._next_id
        self._next_id += 1
        return self._emit(name, span_id, self.now() - seconds, seconds, attrs)

    def _emit(self, name, span_id, start, duration, attrs) -> Dict[str, Any]:
        parent = self._stack[-1][0] if self._stack else None
        record: Dict[str, Any] = {
            "name": name,
            "span": span_id,
            "parent": parent,
            "depth": len(self._stack),
            "start": round(start, 9),
            "duration": round(duration, 9),
        }
        for key in sorted(attrs):
            record[key] = attrs[key]
        if self._retain:
            self.events.append(record)
        if self._sink is not None:
            self._sink.write(json.dumps(record) + "\n")
        return record

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------

    @property
    def open_spans(self) -> int:
        """Depth of the currently open span stack (0 when balanced)."""
        return len(self._stack)

    def dump_jsonl(self, path: PathLike) -> None:
        """Write all retained spans to ``path`` as JSON Lines."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.events:
                handle.write(json.dumps(record) + "\n")

    def __repr__(self) -> str:
        return (
            f"Tracer({len(self.events)} span(s), "
            f"{len(self._stack)} open)"
        )


def read_trace(source: Union[PathLike, "TextIO"]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace (path or open file) back into span dicts.

    Blank lines are skipped; malformed lines raise ``ValueError`` with
    the offending line number, so truncated traces fail loudly.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = Path(source).read_text(encoding="utf-8").splitlines()
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"trace line {lineno} is not valid JSON: {exc}"
            ) from None
        if not isinstance(record, dict) or "name" not in record:
            raise ValueError(f"trace line {lineno} is not a span record")
        records.append(record)
    return records
