"""The state observatory: live auxiliary-state accounting and alerts.

The paper's central claim is that the incremental encoding keeps
auxiliary state *bounded* — by the data and the metric horizon, never
by the history length.  :class:`StateWatch` turns that claim into a
runtime observable: on every step it samples each temporal
subformula's stored tuples and valuations through the uniform
``state_profile`` protocol (:mod:`repro.core.statespace`) and checks
them against the analytic per-node bound from
:func:`repro.core.bounds.node_tuple_bound` — ``valuations`` entries
for ``PREV`` and min-collapsed unbounded nodes, ``valuations ×
(window + 1)`` for bounded ``ONCE``/``SINCE``.

Three alert rules, all edge-triggered (fire once on crossing, re-arm
when the signal recovers — the same discipline as the SLO burn-rate
rules in :mod:`repro.obs.slo`):

* **bound** — a node's measured tuples exceed its analytic bound.
  With the paper's encoding this cannot happen; it fires under the
  ``collapse_unbounded=False`` ablation or any future regression that
  leaks anchors.  Severity ``"page"``.
* **leak** — total auxiliary tuples grow with a sustained positive
  slope over a sliding window of steps (the bound may be loose enough
  to hide slow growth; the slope is not).  Severity ``"ticket"``.

Both run on pure event-time quantities, so a replay fires the same
alerts at the same steps.

Per-valuation *heavy hitters* are tracked by a bounded
:class:`SpaceSavingSketch` per node: on every deep sample each stored
valuation is offered with its current entry count, so persistently hot
valuations accumulate the largest sketch counts — the skew map that
shard-by-valuation and hot/cold tiering decisions need.

Cost discipline: the per-step path reads only ``aux_counts()`` (tuple
and valuation counters); deep byte sizes, sketch updates, and metric
gauge exports run every ``sample_every`` steps.  Bench e4 gates the
per-step overhead below 5%.

Snapshots are versioned ``repro-state/1`` documents with the same
validate/render/write/load conventions as health snapshots
(:mod:`repro.obs.health`), and ``repro health render`` accepts them.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.bounds import node_tuple_bound
from repro.errors import TelemetryError

#: Current version tag of the state snapshot format.
STATE_VERSION = "repro-state/1"

#: Required top-level sections of a state snapshot.
STATE_SECTIONS = (
    "engine", "steps", "profile", "bounds", "alerts", "heavy_hitters",
)

# --- metric families (repro_state_*) ---------------------------------------
STATE_NODE_TUPLES = "repro_state_node_tuples"
STATE_NODE_VALUATIONS = "repro_state_node_valuations"
STATE_NODE_BYTES = "repro_state_node_bytes"
STATE_NODE_AGE = "repro_state_node_oldest_age"
STATE_NODE_BOUND = "repro_state_node_bound"
STATE_TUPLES = "repro_state_tuples"
STATE_BOUND_BREACHES = "repro_state_bound_breaches_total"
STATE_ALERTS = "repro_state_alerts_total"


class SpaceSavingSketch:
    """Bounded heavy-hitter sketch (the space-saving algorithm).

    Tracks at most ``capacity`` keys.  When a new key arrives at a full
    sketch, it replaces the current minimum and inherits its count as
    the *error* bound — so a reported count overestimates the true
    weight by at most that error.  Ties break deterministically on the
    key's string form, keeping replays exact.
    """

    __slots__ = ("capacity", "_counts", "_errors")

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise TelemetryError("sketch capacity must be >= 1")
        self.capacity = capacity
        self._counts: Dict[object, int] = {}
        self._errors: Dict[object, int] = {}

    def offer(self, key, weight: int = 1) -> None:
        """Add ``weight`` to ``key``, evicting the minimum when full."""
        if key in self._counts:
            self._counts[key] += weight
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = weight
            self._errors[key] = 0
            return
        victim = min(
            self._counts, key=lambda k: (self._counts[k], str(k))
        )
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + weight
        self._errors[key] = floor

    def top(self, n: Optional[int] = None) -> List[Tuple[object, int, int]]:
        """The ``(key, count, error)`` triples, heaviest first."""
        ranked = sorted(
            self._counts,
            key=lambda k: (-self._counts[k], str(k)),
        )
        if n is not None:
            ranked = ranked[:n]
        return [(k, self._counts[k], self._errors[k]) for k in ranked]

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return (
            f"SpaceSavingSketch({len(self._counts)}/{self.capacity} key(s))"
        )


class StateAlert:
    """A state-observatory alert (bound breach or growth leak).

    Attributes:
        kind: ``"bound"`` (a node exceeded its analytic tuple bound)
            or ``"leak"`` (sustained growth of total auxiliary tuples).
        engine: the engine label the alert was observed on.
        node: the temporal subformula's label (``None`` for leaks,
            which aggregate over all nodes).
        step: 1-based observed step count at which the rule fired.
        measured: tuples stored (bound) or tuples/step slope (leak).
        limit: the analytic bound (bound) or slope threshold (leak).
        window: the slope window in steps (``None`` for bound alerts).
        severity: ``"page"`` for bound breaches, ``"ticket"`` for leaks.
    """

    __slots__ = (
        "kind", "engine", "node", "step", "measured", "limit",
        "window", "severity",
    )

    def __init__(
        self, kind, engine, node, step, measured, limit, window=None
    ):
        self.kind = kind
        self.engine = engine
        self.node = node
        self.step = step
        self.measured = measured
        self.limit = limit
        self.window = window
        self.severity = "page" if kind == "bound" else "ticket"

    def to_dict(self) -> Dict:
        """The alert as a JSON-able dict."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:
        if self.kind == "bound":
            return (
                f"StateAlert(bound: {self.node} holds {self.measured} "
                f"tuple(s), analytic bound {self.limit}, step {self.step})"
            )
        return (
            f"StateAlert(leak: auxiliary state growing "
            f"{self.measured:+.2f} tuple(s)/step over {self.window} "
            f"step(s), step {self.step})"
        )


class StateWatch:
    """Per-step auxiliary-state accounting with conformance alerts.

    Drive it through :meth:`repro.Monitor.enable_statewatch` (the
    monitor calls :meth:`observe` after every step) or standalone
    around a bare checker::

        watch = StateWatch(sample_every=1)
        for time, txn in stream:
            report = checker.step(time, txn)
            for alert in watch.observe(checker, report):
                print(alert)

    Args:
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            receiving the ``repro_state_*`` families on deep samples.
        sample_every: cadence (in steps) of the expensive work — deep
            byte sizes, heavy-hitter sketch updates, metric exports.
            The bound and leak rules run every step regardless.
        leak_window: sliding window (steps) for the growth-slope rule.
        leak_slope: tuples-per-step slope at which the leak rule fires.
        top_k: heavy hitters retained per node (sketch capacity is
            ``4 * top_k`` so the top entries have small error bounds).
        flight: optional :class:`~repro.obs.flight.FlightRecorder`
            notified after every observed step.
    """

    def __init__(
        self,
        metrics=None,
        sample_every: int = 8,
        leak_window: int = 32,
        leak_slope: float = 1.0,
        top_k: int = 8,
        flight=None,
    ):
        if sample_every < 1:
            raise TelemetryError("sample_every must be >= 1")
        if leak_window < 2:
            raise TelemetryError("leak_window must be >= 2")
        self.metrics = metrics
        self.sample_every = sample_every
        self.leak_window = leak_window
        self.leak_slope = float(leak_slope)
        self.top_k = top_k
        self.flight = flight
        #: every alert fired so far, in firing order
        self.alerts: List[StateAlert] = []
        self._steps = 0
        self._engine: Optional[str] = None
        self._nodes: Optional[Dict[str, object]] = None
        self._bound_active: Dict[str, bool] = {}
        self._breaches: Dict[str, int] = {}
        self._totals: deque = deque(maxlen=leak_window)
        self._leak_active = False
        self._sketches: Dict[str, SpaceSavingSketch] = {}
        self._last_counts: Dict[str, Tuple[int, int]] = {}
        self._last_profile: Optional[Dict] = None
        self._last_tiers: Optional[Dict] = None

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    @property
    def steps_observed(self) -> int:
        """Steps this watch has accounted so far."""
        return self._steps

    @property
    def bound_breaches(self) -> Dict[str, int]:
        """Per-node count of steps whose measure exceeded the bound."""
        return dict(self._breaches)

    def _node_index(self, checker) -> Dict[str, object]:
        if self._nodes is None:
            self._engine = getattr(checker, "engine_label", "unknown")
            self._nodes = {
                str(node): node for node in checker.aux_nodes()
            }
        return self._nodes

    def observe(self, checker, report=None) -> List[StateAlert]:
        """Account one step; return any alerts that fired on it.

        ``report`` (the step's :class:`~repro.core.violations.StepReport`)
        is optional for standalone use but required for flight-recorder
        triggering.
        """
        self._steps += 1
        step = self._steps
        nodes = self._node_index(checker)
        counts = checker.aux_counts()
        self._last_counts = counts
        alerts: List[StateAlert] = []
        total = 0
        for label, (tuples, valuations) in counts.items():
            total += tuples
            bound = node_tuple_bound(nodes[label], valuations)
            if tuples > bound:
                self._breaches[label] = self._breaches.get(label, 0) + 1
                if not self._bound_active.get(label):
                    self._bound_active[label] = True
                    alerts.append(
                        StateAlert(
                            "bound", self._engine, label, step,
                            tuples, bound,
                        )
                    )
            else:
                self._bound_active[label] = False
        self._totals.append(total)
        if len(self._totals) == self.leak_window:
            slope = (self._totals[-1] - self._totals[0]) / (
                self.leak_window - 1
            )
            if slope >= self.leak_slope:
                if not self._leak_active:
                    self._leak_active = True
                    alerts.append(
                        StateAlert(
                            "leak", self._engine, None, step,
                            slope, self.leak_slope,
                            window=self.leak_window,
                        )
                    )
            else:
                self._leak_active = False
        if step % self.sample_every == 0 or step == 1:
            self._deep_sample(checker, counts, total)
        if alerts:
            self.alerts.extend(alerts)
            self._count_alerts(alerts)
        if self.flight is not None:
            self.flight.note_step(checker, report, alerts)
        return alerts

    def _deep_sample(self, checker, counts, total) -> None:
        """The expensive cadence: bytes, sketches, metric exports."""
        profile = checker.state_profile(deep=True)
        self._last_profile = profile
        for label, valuation, weight in checker.iter_state_valuations():
            sketch = self._sketches.get(label)
            if sketch is None:
                sketch = SpaceSavingSketch(capacity=4 * self.top_k)
                self._sketches[label] = sketch
            sketch.offer(valuation, weight)
        metrics = self.metrics
        if metrics is None:
            return
        engine = self._engine
        metrics.gauge(
            STATE_TUPLES, help="Total stored auxiliary tuples",
            engine=engine,
        ).set(total)
        nodes = self._nodes or {}
        for label, entry in profile["nodes"].items():
            metrics.gauge(
                STATE_NODE_TUPLES,
                help="Stored tuples per temporal subformula",
                engine=engine, node=label,
            ).set(entry["tuples"])
            metrics.gauge(
                STATE_NODE_VALUATIONS,
                help="Stored valuations per temporal subformula",
                engine=engine, node=label,
            ).set(entry["valuations"])
            if entry.get("bytes") is not None:
                metrics.gauge(
                    STATE_NODE_BYTES,
                    help="Approximate deep bytes per temporal subformula",
                    engine=engine, node=label,
                ).set(entry["bytes"])
            oldest = entry.get("oldest")
            now = getattr(checker, "now", None)
            if oldest is not None and now is not None:
                metrics.gauge(
                    STATE_NODE_AGE,
                    help="Age of the oldest retained anchor (clock units)",
                    engine=engine, node=label,
                ).set(now - oldest)
            node = nodes.get(label)
            if node is not None and label in counts:
                metrics.gauge(
                    STATE_NODE_BOUND,
                    help="Analytic per-node tuple bound",
                    engine=engine, node=label,
                ).set(node_tuple_bound(node, counts[label][1]))

    def _count_alerts(self, alerts) -> None:
        metrics = self.metrics
        if metrics is None:
            return
        for alert in alerts:
            metrics.counter(
                STATE_ALERTS, help="State-observatory alerts fired",
                engine=self._engine, kind=alert.kind,
            ).inc()
            if alert.kind == "bound":
                metrics.counter(
                    STATE_BOUND_BREACHES,
                    help="Bound-conformance breaches (edge-triggered)",
                    engine=self._engine, node=alert.node,
                ).inc()

    # ------------------------------------------------------------------
    # reading the observatory
    # ------------------------------------------------------------------

    def heavy_hitters(
        self, n: Optional[int] = None
    ) -> Dict[str, List[Tuple[object, int, int]]]:
        """Per-node ``(valuation, weight, error)`` lists, heaviest first."""
        n = self.top_k if n is None else n
        return {
            label: sketch.top(n)
            for label, sketch in sorted(self._sketches.items())
        }

    def bound_report(self, checker=None) -> Dict[str, Dict]:
        """Measured-vs-bound per node, from the freshest sample.

        With ``checker`` given, re-samples the counts first.
        """
        if checker is not None:
            self._node_index(checker)
            self._last_counts = checker.aux_counts()
        nodes = self._nodes or {}
        report: Dict[str, Dict] = {}
        for label, (tuples, valuations) in sorted(
            self._last_counts.items()
        ):
            node = nodes.get(label)
            bound = (
                node_tuple_bound(node, valuations)
                if node is not None
                else None
            )
            report[label] = {
                "tuples": tuples,
                "valuations": valuations,
                "bound": bound,
                "within": bound is None or tuples <= bound,
                "breaches": self._breaches.get(label, 0),
            }
        return report

    def snapshot(self, checker=None) -> Dict:
        """The observatory as a versioned ``repro-state/1`` document.

        With ``checker`` given, takes a fresh deep profile; otherwise
        reports the last deep sample.
        """
        if checker is not None:
            self._node_index(checker)
            self._last_profile = checker.state_profile(deep=True)
            self._last_counts = checker.aux_counts()
            self._last_tiers = self._tier_sample(checker)
        doc = {
            "version": STATE_VERSION,
            "engine": self._engine,
            "steps": self._steps,
            "profile": self._last_profile,
            "bounds": self.bound_report(),
            "alerts": [alert.to_dict() for alert in self.alerts],
            "heavy_hitters": {
                label: [
                    {
                        "valuation": list(valuation),
                        "weight": weight,
                        "error": error,
                    }
                    for valuation, weight, error in entries
                ]
                for label, entries in self.heavy_hitters().items()
            },
        }
        if self._last_tiers is not None:
            doc["tiers"] = self._last_tiers
        return validate_state(doc)

    @staticmethod
    def _tier_sample(checker) -> Optional[Dict]:
        """Resident-vs-spilled accounting, when the engine supports it.

        Engines without the :meth:`~repro.core.statespace.AuxAccounting.
        tier_profile` hook (the naive checkers) simply omit the section
        — ``tiers`` is an *optional* snapshot key, deliberately kept
        out of :data:`STATE_SECTIONS` so older snapshots stay valid.
        """
        tier_profile = getattr(checker, "tier_profile", None)
        if tier_profile is None:
            return None
        nodes = tier_profile()
        totals = checker.tier_totals()
        return {"nodes": nodes, "totals": totals}

    def __repr__(self) -> str:
        return (
            f"StateWatch({self._steps} step(s), "
            f"{len(self.alerts)} alert(s))"
        )


# ---------------------------------------------------------------------------
# snapshot document handling (same conventions as repro.obs.health)
# ---------------------------------------------------------------------------


def validate_state(doc: Dict) -> Dict:
    """Check a state snapshot's shape; return it unchanged.

    Raises:
        TelemetryError: naming the offending field.
    """
    if not isinstance(doc, dict):
        raise TelemetryError(
            f"state snapshot must be an object, got {type(doc).__name__}"
        )
    version = doc.get("version")
    if version != STATE_VERSION:
        raise TelemetryError(
            f"unsupported state snapshot version {version!r} "
            f"(expected {STATE_VERSION!r})"
        )
    for section in STATE_SECTIONS:
        if section not in doc:
            raise TelemetryError(
                f"state snapshot is missing section {section!r}"
            )
    if not isinstance(doc["steps"], int) or doc["steps"] < 0:
        raise TelemetryError(
            f"state snapshot field 'steps' must be a non-negative "
            f"integer, got {doc['steps']!r}"
        )
    for section in ("bounds", "heavy_hitters"):
        if not isinstance(doc[section], dict):
            raise TelemetryError(
                f"state snapshot section {section!r} must be an object"
            )
    if not isinstance(doc["alerts"], list):
        raise TelemetryError("state snapshot section 'alerts' must be a list")
    profile = doc["profile"]
    if profile is not None and not isinstance(profile, dict):
        raise TelemetryError(
            "state snapshot section 'profile' must be an object or null"
        )
    return doc


def render_state_text(doc: Dict) -> str:
    """A state snapshot as a terse human-readable block."""
    doc = validate_state(doc)
    lines = [
        f"state observatory: engine {doc['engine']}, "
        f"{doc['steps']} step(s) observed"
    ]
    profile = doc["profile"] or {}
    total = profile.get("total", {})
    if total:
        byte_part = (
            f", ~{total['bytes']} byte(s)"
            if total.get("bytes") is not None
            else ""
        )
        lines.append(
            f"  total: {total.get('tuples', 0)} tuple(s), "
            f"{total.get('valuations', 0)} valuation(s){byte_part}"
        )
    for label, entry in sorted(doc["bounds"].items()):
        bound = entry["bound"]
        verdict = "within bound" if entry["within"] else "OVER BOUND"
        lines.append(
            f"  node {label}: {entry['tuples']} tuple(s), "
            f"{entry['valuations']} valuation(s), "
            f"bound {bound if bound is not None else '?'} -> {verdict}"
        )
    tiers = doc.get("tiers")
    if tiers:
        totals = tiers.get("totals", {})
        lines.append(
            f"  tiers: {totals.get('hot', 0)} resident tuple(s), "
            f"{totals.get('cold', 0)} cold-eligible anchor(s)"
        )
        for label, entry in sorted(tiers.get("nodes", {}).items()):
            lines.append(
                f"    [{entry['tier']}] {label}: "
                f"{entry['tuples']} tuple(s)"
            )
    alerts = doc["alerts"]
    if alerts:
        lines.append(f"  alerts: {len(alerts)} fired")
        for alert in alerts:
            if alert.get("kind") == "bound":
                lines.append(
                    f"    [bound] step {alert['step']}: {alert['node']} "
                    f"at {alert['measured']} > {alert['limit']}"
                )
            else:
                lines.append(
                    f"    [leak] step {alert['step']}: "
                    f"{alert['measured']:+.2f} tuple(s)/step over "
                    f"{alert['window']} step(s)"
                )
    else:
        lines.append("  alerts: none")
    for label, entries in sorted(doc["heavy_hitters"].items()):
        if not entries:
            continue
        top = entries[0]
        lines.append(
            f"  hottest {label}: {tuple(top['valuation'])!r} "
            f"(weight {top['weight']}, error <= {top['error']})"
        )
    return "\n".join(lines)


def write_state(doc: Dict, path: Union[str, Path]) -> Path:
    """Validate and write a state snapshot as pretty JSON."""
    path = Path(path)
    path.write_text(
        json.dumps(validate_state(doc), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_state(path: Union[str, Path]) -> Dict:
    """Read and validate a state snapshot written by :func:`write_state`."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise TelemetryError(
            f"cannot read state snapshot {path}: {exc}"
        ) from exc
    return validate_state(doc)
