"""Exporters for :class:`~repro.obs.metrics.MetricsRegistry`.

Two wire formats:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, labelled samples, cumulative
  ``_bucket`` series with ``le`` labels plus ``_sum``/``_count``), so a
  dump can be scraped, ``promtool``-checked, or diffed;
* :func:`render_json` — the same content as a JSON document, for
  programmatic consumers (``repro stats``, tests, dashboards without a
  Prometheus stack).

Both iterate the registry in its deterministic family/label order, so
identical runs produce byte-identical output — which is what the
golden-file tests pin.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

PathLike = Union[str, Path]


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_number(value: float) -> str:
    """Render a sample value: integers bare, floats via ``repr``.

    Non-finite samples use the Prometheus text-format spellings
    (``+Inf`` / ``-Inf`` / ``NaN``) instead of crashing the export — a
    gauge fed a division by zero must still leave a scrapeable dump.
    """
    if isinstance(value, bool):
        return "1" if value else "0"
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def json_value(value: float) -> Union[float, str]:
    """A sample value as a strict-JSON scalar.

    ``json.dumps`` would happily emit the non-standard ``NaN`` /
    ``Infinity`` literals, which many parsers reject; non-finite
    samples are therefore rendered as their Prometheus spellings
    (``"NaN"`` / ``"+Inf"`` / ``"-Inf"``).
    """
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return format_number(value)
    return value


def _label_string(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{key}="{escape_label_value(val)}"'
        for key, val in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, kind, help_text, series in registry.families():
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, child in series:
            if isinstance(child, (Counter, Gauge)):
                lines.append(
                    f"{name}{_label_string(labels)} "
                    f"{format_number(child.value)}"
                )
            elif isinstance(child, Histogram):
                cumulative = child.cumulative_counts()
                bounds = [format_number(b) for b in child.buckets] + ["+Inf"]
                for bound, count in zip(bounds, cumulative):
                    le = f'le="{bound}"'
                    lines.append(
                        f"{name}_bucket{_label_string(labels, le)} {count}"
                    )
                lines.append(
                    f"{name}_sum{_label_string(labels)} "
                    f"{format_number(child.sum)}"
                )
                lines.append(
                    f"{name}_count{_label_string(labels)} {child.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(registry: MetricsRegistry) -> Dict:
    """The registry as a JSON-able document (stable ordering).

    Layout::

        {"metrics": [
            {"name": ..., "type": ..., "help": ...,
             "series": [{"labels": {...}, "value": ...} |
                        {"labels": {...}, "count": n, "sum": s,
                         "buckets": [{"le": bound, "count": c}, ...]}]}
        ]}
    """
    families = []
    for name, kind, help_text, series in registry.families():
        rendered = []
        for labels, child in series:
            entry: Dict = {"labels": dict(sorted(labels.items()))}
            if isinstance(child, Histogram):
                entry["count"] = child.count
                entry["sum"] = json_value(child.sum)
                bounds = list(child.buckets) + ["+Inf"]
                entry["buckets"] = [
                    {"le": bound, "count": count}
                    for bound, count in zip(
                        bounds, child.cumulative_counts()
                    )
                ]
            else:
                entry["value"] = json_value(child.value)
            rendered.append(entry)
        families.append(
            {
                "name": name,
                "type": kind,
                "help": help_text,
                "series": rendered,
            }
        )
    return {"metrics": families}


def write_metrics(registry: MetricsRegistry, path: PathLike) -> None:
    """Write the registry to ``path``: JSON if the suffix is ``.json``,
    Prometheus text otherwise."""
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(
            json.dumps(render_json(registry), indent=2) + "\n",
            encoding="utf-8",
        )
    else:
        path.write_text(render_prometheus(registry), encoding="utf-8")
