"""Declarative SLOs with error budgets and burn-rate alerts.

An :class:`SLOSpec` names an *indicator* the telemetry layer computes
for every verdict, a threshold that classifies each step as good or
bad, and a target fraction of good steps.  The complement of the
target is the **error budget**; the **burn rate** over a window is the
observed bad fraction divided by the budget, so a burn rate of 1.0
spends the budget exactly as fast as the SLO tolerates and 10.0 spends
it ten times too fast.

Following the SRE multi-window multi-burn-rate recipe, every SLO
carries two alert rules: a *fast* one (short window, high burn — the
page: "at this rate the budget is gone within hours") and a *slow* one
(long window, moderate burn — the ticket: "sustained slow leak").
Windows are counted in **steps**, not wall-clock seconds, so a replay
of the same stream fires the same alerts at the same steps — the
determinism the acceptance tests pin.

Indicators (per verdict; event-time ones are deterministic):

====================  =================================================
``verdict_seconds``   arrival → verdict latency (wall clock, seconds)
``check_seconds``     dequeue → verdict latency (wall clock, seconds)
``frontier_lag``      latest sampled watermark frontier lag (clock
                      units)
``queue_depth``       latest sampled ingest queue depth (events)
``shed``              events shed since the previous verdict
``deferred``          constraint evaluations deferred this step
``fault``             1 when the step was skipped by a fault policy
``violations``        violations reported this step
====================  =================================================

Alerts are edge-triggered: a rule fires once when its burn rate
crosses the threshold and re-arms only after the rate drops back
below.  The engine emits them through whatever channel its caller
wires — the :class:`~repro.core.monitor.Monitor` routes them to
``on_alert`` handlers alongside the existing violation-handler
machinery.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import TelemetryError

#: Current version tag of the SLO document format.
SLO_VERSION = "repro-slo/1"

#: Indicator names :meth:`SLOEngine.observe` accepts.
INDICATORS = (
    "verdict_seconds",
    "check_seconds",
    "frontier_lag",
    "queue_depth",
    "shed",
    "deferred",
    "fault",
    "violations",
)

#: Default burn-rate alert rules (the classic SRE table, in steps).
DEFAULT_FAST_WINDOW = 20
DEFAULT_SLOW_WINDOW = 100
DEFAULT_FAST_BURN = 14.4
DEFAULT_SLOW_BURN = 6.0


class SLOSpec:
    """One service-level objective over a telemetry indicator.

    A step is *good* when ``indicator <= threshold``.  ``target`` is
    the fraction of steps that must be good (e.g. ``0.99``); the error
    budget is ``1 - target``.

    Args:
        name: unique identifier (appears in alerts and health output).
        indicator: one of :data:`INDICATORS`.
        threshold: good/bad boundary, in the indicator's units.
        target: required good fraction, strictly between 0 and 1.
        fast_window / slow_window: alert windows, in steps (the slow
            window must not be shorter than the fast one).
        fast_burn / slow_burn: burn-rate thresholds for each window.
    """

    __slots__ = (
        "name", "indicator", "threshold", "target",
        "fast_window", "slow_window", "fast_burn", "slow_burn",
    )

    def __init__(
        self,
        name: str,
        indicator: str,
        threshold: float,
        target: float,
        fast_window: int = DEFAULT_FAST_WINDOW,
        slow_window: int = DEFAULT_SLOW_WINDOW,
        fast_burn: float = DEFAULT_FAST_BURN,
        slow_burn: float = DEFAULT_SLOW_BURN,
    ):
        if not name or not isinstance(name, str):
            raise TelemetryError("SLO name must be a non-empty string")
        if indicator not in INDICATORS:
            raise TelemetryError(
                f"SLO {name!r}: unknown indicator {indicator!r} "
                f"(expected one of {', '.join(INDICATORS)})"
            )
        threshold = float(threshold)
        if threshold != threshold or threshold < 0:
            raise TelemetryError(
                f"SLO {name!r}: threshold must be >= 0, got {threshold!r}"
            )
        target = float(target)
        if not 0.0 < target < 1.0:
            raise TelemetryError(
                f"SLO {name!r}: target must be strictly between 0 and 1, "
                f"got {target!r}"
            )
        fast_window = int(fast_window)
        slow_window = int(slow_window)
        if fast_window < 1 or slow_window < fast_window:
            raise TelemetryError(
                f"SLO {name!r}: windows must satisfy "
                f"1 <= fast_window <= slow_window, got "
                f"{fast_window} / {slow_window}"
            )
        if not (float(fast_burn) > 0 and float(slow_burn) > 0):
            raise TelemetryError(
                f"SLO {name!r}: burn-rate thresholds must be positive"
            )
        self.name = name
        self.indicator = indicator
        self.threshold = threshold
        self.target = target
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.fast_burn = float(fast_burn)
        self.slow_burn = float(slow_burn)

    @property
    def budget(self) -> float:
        """The error budget: allowed bad fraction (``1 - target``)."""
        return 1.0 - self.target

    @classmethod
    def from_dict(cls, doc: Dict) -> "SLOSpec":
        """Build a spec from its dict form (see :func:`load_slo_file`)."""
        if not isinstance(doc, dict):
            raise TelemetryError(f"SLO entry must be an object, got {doc!r}")
        unknown = set(doc) - set(cls.__slots__)
        if unknown:
            raise TelemetryError(
                f"SLO entry has unknown key(s): {', '.join(sorted(unknown))}"
            )
        missing = {"name", "indicator", "threshold", "target"} - set(doc)
        if missing:
            raise TelemetryError(
                f"SLO entry missing key(s): {', '.join(sorted(missing))}"
            )
        return cls(**doc)

    def to_dict(self) -> Dict:
        """The spec as a JSON-able dict (round-trips via from_dict)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"SLOSpec({self.name!r}: {self.indicator} <= "
            f"{self.threshold!r} for {self.target:.4g})"
        )


class SLOAlert:
    """A burn-rate alert fired by one SLO rule.

    Attributes:
        slo: the spec's name.
        severity: ``"page"`` (fast burn) or ``"ticket"`` (slow burn).
        step: 1-based step count at which the rule fired.
        burn_rate: observed burn rate over the rule's window.
        window: the window size, in steps.
        indicator: the spec's indicator name.
    """

    __slots__ = ("slo", "severity", "step", "burn_rate", "window",
                 "indicator")

    def __init__(self, slo, severity, step, burn_rate, window, indicator):
        self.slo = slo
        self.severity = severity
        self.step = step
        self.burn_rate = burn_rate
        self.window = window
        self.indicator = indicator

    def to_dict(self) -> Dict:
        """The alert as a JSON-able dict."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"SLOAlert({self.severity} {self.slo!r} at step {self.step}: "
            f"burn {self.burn_rate:.1f}x over {self.window} steps)"
        )


class _Rule:
    """One (window, burn threshold) alert rule with its ring of flags."""

    __slots__ = ("window", "burn", "severity", "flags", "bad", "active",
                 "fired")

    def __init__(self, window: int, burn: float, severity: str):
        self.window = window
        self.burn = burn
        self.severity = severity
        self.flags: deque = deque(maxlen=window)
        self.bad = 0
        self.active = False
        self.fired = 0

    def observe(self, is_bad: bool, budget: float):
        if len(self.flags) == self.window:
            self.bad -= self.flags[0]
        self.flags.append(1 if is_bad else 0)
        self.bad += self.flags[-1]
        if len(self.flags) < self.window:
            return None  # warming up: a 1-sample window would always page
        rate = (self.bad / self.window) / budget
        if rate >= self.burn:
            if not self.active:
                self.active = True
                self.fired += 1
                return rate
        else:
            self.active = False
        return None


class _SLOState:
    """Cumulative counters plus the two alert rules for one spec."""

    __slots__ = ("spec", "good", "bad", "fast", "slow")

    def __init__(self, spec: SLOSpec):
        self.spec = spec
        self.good = 0
        self.bad = 0
        self.fast = _Rule(spec.fast_window, spec.fast_burn, "page")
        self.slow = _Rule(spec.slow_window, spec.slow_burn, "ticket")


def budget_remaining(spec_or_target, good: int, bad: int) -> float:
    """Fraction of the error budget left after ``good``/``bad`` steps.

    1.0 means untouched, 0.0 exactly spent, negative overspent.  With
    no steps yet the budget is whole.  Pure function of the counts, so
    merged snapshots recompute it exactly.
    """
    target = (
        spec_or_target.target
        if isinstance(spec_or_target, SLOSpec)
        else float(spec_or_target)
    )
    total = good + bad
    if not total:
        return 1.0
    allowed = (1.0 - target) * total
    if allowed <= 0:
        return 1.0 if not bad else float("-inf")
    return 1.0 - bad / allowed


def budget_state(remaining: float) -> str:
    """Coarse budget state: ``ok`` / ``degraded`` / ``exhausted``."""
    if remaining <= 0:
        return "exhausted"
    if remaining < 0.5:
        return "degraded"
    return "ok"


class SLOEngine:
    """Evaluates a set of SLOs incrementally, one verdict at a time.

    Feed it the indicator sample for each step via :meth:`observe`; it
    returns the alerts that fired *this* step (usually none).  All
    alerts ever fired stay on :attr:`alerts` for the health surface.
    """

    def __init__(self, specs: Iterable[SLOSpec]):
        self._states: List[_SLOState] = []
        names = set()
        for spec in specs:
            if not isinstance(spec, SLOSpec):
                spec = SLOSpec.from_dict(spec)
            if spec.name in names:
                raise TelemetryError(f"duplicate SLO name {spec.name!r}")
            names.add(spec.name)
            self._states.append(_SLOState(spec))
        self.steps = 0
        self.alerts: List[SLOAlert] = []

    @property
    def specs(self) -> List[SLOSpec]:
        """The specs this engine evaluates, in declaration order."""
        return [state.spec for state in self._states]

    def observe(self, indicators: Dict[str, float]) -> List[SLOAlert]:
        """Record one step's indicator sample; return alerts fired now."""
        self.steps += 1
        fired: List[SLOAlert] = []
        for state in self._states:
            spec = state.spec
            value = indicators.get(spec.indicator, 0.0)
            is_bad = value > spec.threshold
            if is_bad:
                state.bad += 1
            else:
                state.good += 1
            for rule in (state.fast, state.slow):
                rate = rule.observe(is_bad, spec.budget)
                if rate is not None:
                    fired.append(SLOAlert(
                        slo=spec.name,
                        severity=rule.severity,
                        step=self.steps,
                        burn_rate=rate,
                        window=rule.window,
                        indicator=spec.indicator,
                    ))
        self.alerts.extend(fired)
        return fired

    def summary(self) -> List[Dict]:
        """Per-SLO budget state for the health surface.

        Every field is a pure function of mergeable counts (good, bad,
        alert totals), so snapshot folding reproduces it exactly.
        """
        out = []
        for state in self._states:
            spec = state.spec
            remaining = budget_remaining(spec, state.good, state.bad)
            out.append({
                "name": spec.name,
                "indicator": spec.indicator,
                "threshold": spec.threshold,
                "target": spec.target,
                "good": state.good,
                "bad": state.bad,
                "budget_remaining": remaining,
                "state": budget_state(remaining),
                "alerts": {"page": state.fast.fired,
                           "ticket": state.slow.fired},
            })
        return out

    def __repr__(self) -> str:
        return (
            f"SLOEngine({len(self._states)} slo(s), {self.steps} step(s), "
            f"{len(self.alerts)} alert(s))"
        )


def load_slo_file(path: Union[str, Path]) -> List[SLOSpec]:
    """Parse an SLO document (JSON) into specs.

    Format::

        {"version": "repro-slo/1",
         "slos": [{"name": "verdict-latency",
                   "indicator": "verdict_seconds",
                   "threshold": 0.05, "target": 0.99,
                   "fast_window": 20, "slow_window": 100,
                   "fast_burn": 14.4, "slow_burn": 6.0}, ...]}

    The window/burn keys are optional and default to the SRE table.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise TelemetryError(f"cannot read SLO file {path}: {exc}") from exc
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise TelemetryError(f"{path} is not valid JSON: {exc}") from exc
    return parse_slo_doc(doc, origin=str(path))


def parse_slo_doc(doc, origin: str = "<slo document>") -> List[SLOSpec]:
    """Validate a parsed SLO document and build its specs."""
    if not isinstance(doc, dict):
        raise TelemetryError(f"{origin}: SLO document must be an object")
    version = doc.get("version")
    if version != SLO_VERSION:
        raise TelemetryError(
            f"{origin}: unsupported SLO document version {version!r} "
            f"(expected {SLO_VERSION!r})"
        )
    entries = doc.get("slos")
    if not isinstance(entries, list) or not entries:
        raise TelemetryError(
            f"{origin}: 'slos' must be a non-empty list of SLO objects"
        )
    return [SLOSpec.from_dict(entry) for entry in entries]


def coerce_slo_engine(
    slo: Union["SLOEngine", SLOSpec, Dict, str, Path,
               Sequence, None],
) -> Optional["SLOEngine"]:
    """Build an :class:`SLOEngine` from whatever the caller handed us.

    Accepts an engine (returned as-is), a spec or list of specs/dicts,
    an SLO document dict, or a path to an SLO file; ``None`` passes
    through (telemetry without SLOs).
    """
    if slo is None or isinstance(slo, SLOEngine):
        return slo
    if isinstance(slo, (str, Path)):
        return SLOEngine(load_slo_file(slo))
    if isinstance(slo, SLOSpec):
        return SLOEngine([slo])
    if isinstance(slo, dict):
        if "slos" in slo or "version" in slo:
            return SLOEngine(parse_slo_doc(slo))
        return SLOEngine([SLOSpec.from_dict(slo)])
    if isinstance(slo, (list, tuple)):
        return SLOEngine(slo)
    raise TelemetryError(
        f"cannot build an SLO engine from {type(slo).__name__}"
    )
