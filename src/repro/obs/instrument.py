"""The hook protocol between checking engines and telemetry backends.

Engines call a narrow set of hooks; what the hooks *do* is the
backend's business.  Two implementations ship:

* :class:`Instrumentation` — the no-op base/protocol.  Engines keep a
  plain ``instrumentation`` attribute defaulting to ``None`` and guard
  every hook site with ``if obs is not None``, so the disabled path
  costs one attribute load + comparison per site and allocates nothing.
* :class:`MonitorInstrumentation` — bridges hooks onto a
  :class:`~repro.obs.tracer.Tracer` (structured spans) and/or a
  :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  latency histograms), either of which may be omitted.

Hook vocabulary (all durations in seconds, all times the *monitored*
stream's logical timestamps):

========================  ============================================
``step_begin``            a transaction is about to be applied
``apply_done``            the successor state has been computed
``aux_advanced``          one auxiliary relation folded in the new state
``rule_fired``            one ECA rule ran (active engine only)
``constraint_checked``    one constraint's violation formula evaluated
``step_end``              the step's report is complete
========================  ============================================
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.obs.tracer import Tracer

# Metric family names — shared with repro.analysis.metrics so benchmark
# samples and runtime telemetry land in the same series.
STEPS_TOTAL = "repro_steps_total"
STEP_SECONDS = "repro_step_seconds"
APPLY_SECONDS = "repro_apply_seconds"
TXN_ROWS = "repro_txn_rows"
EVAL_SECONDS = "repro_constraint_eval_seconds"
VIOLATIONS_TOTAL = "repro_violations_total"
AUX_TUPLES = "repro_aux_tuples"
AUX_TUPLES_TOTAL = "repro_aux_tuples_total"
AUX_NODE_TUPLES = "repro_aux_node_tuples"
RULES_FIRED_TOTAL = "repro_rules_fired_total"


class Instrumentation:
    """No-op base class for engine hooks (the protocol).

    Subclass and override the hooks you care about; every method has an
    empty body here, so a partial override is safe.  Engines never call
    hooks on a ``None`` instrumentation — passing no instrumentation
    keeps the hot path free of even these no-op calls.
    """

    __slots__ = ()

    def step_begin(self, engine, time, txn_rows) -> None:
        """A step is starting: ``txn_rows`` is the transaction's row
        count (inserts + deletes), or ``None`` when the successor state
        was given directly."""

    def apply_done(self, engine, time, seconds) -> None:
        """The transaction has been applied to produce the new state."""

    def aux_advanced(self, engine, node, seconds, tuples) -> None:
        """One temporal node's auxiliary relation has been advanced;
        ``tuples`` is its stored-entry count afterwards."""

    def rule_fired(self, engine, rule, time, seconds) -> None:
        """One ECA rule fired during a commit (active engine)."""

    def constraint_checked(
        self, engine, constraint, seconds, violations, aux_tuples
    ) -> None:
        """One constraint's violation formula was evaluated;
        ``violations`` is the witness count (0 when satisfied) and
        ``aux_tuples`` the constraint's auxiliary footprint, or ``None``
        for engines without a per-constraint store."""

    def step_end(self, engine, time, seconds, violations, aux_tuples) -> None:
        """The step finished: total duration, violation count across
        all constraints, and the engine's total stored-tuple space."""


class MonitorInstrumentation(Instrumentation):
    """Routes engine hooks to a tracer and/or a metrics registry.

    Args:
        tracer: receives one ``step`` span per step enclosing
            ``apply`` / ``aux`` / ``rule`` / ``evaluate`` child spans.
        metrics: receives the standard metric families (step and
            per-constraint latency histograms, violation counters,
            aux-tuple gauges, transaction-size histograms).

    Either backend may be ``None``.  One instance may serve several
    engines concurrently — series are split by the ``engine`` label —
    but tracer span nesting assumes single-threaded stepping.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.tracer = tracer
        self.metrics = metrics

    def step_begin(self, engine, time, txn_rows) -> None:
        """Open the step span; count the step and its transaction size."""
        if self.tracer is not None:
            self.tracer.begin("step", engine=engine, time=time)
        if self.metrics is not None:
            self.metrics.counter(
                STEPS_TOTAL, help="Steps processed", engine=engine
            ).inc()
            if txn_rows is not None:
                self.metrics.histogram(
                    TXN_ROWS,
                    buckets=DEFAULT_SIZE_BUCKETS,
                    help="Transaction size in rows",
                    engine=engine,
                ).observe(txn_rows)

    def apply_done(self, engine, time, seconds) -> None:
        """Record the transaction-apply child span and latency."""
        if self.tracer is not None:
            self.tracer.event("apply", seconds, engine=engine, time=time)
        if self.metrics is not None:
            self.metrics.histogram(
                APPLY_SECONDS,
                buckets=DEFAULT_LATENCY_BUCKETS,
                help="Transaction apply time",
                engine=engine,
            ).observe(seconds)

    def aux_advanced(self, engine, node, seconds, tuples) -> None:
        """Record the aux-update child span; gauge the node's size."""
        if self.tracer is not None:
            self.tracer.event(
                "aux", seconds, engine=engine, node=node, tuples=tuples
            )
        if self.metrics is not None:
            self.metrics.gauge(
                AUX_NODE_TUPLES,
                help="Stored entries per temporal subformula",
                engine=engine,
                node=node,
            ).set(tuples)

    def rule_fired(self, engine, rule, time, seconds) -> None:
        """Record the rule-firing child span; count firings per rule."""
        if self.tracer is not None:
            self.tracer.event("rule", seconds, engine=engine, rule=rule)
        if self.metrics is not None:
            self.metrics.counter(
                RULES_FIRED_TOTAL,
                help="ECA rule firings",
                engine=engine,
                rule=rule,
            ).inc()

    def constraint_checked(
        self, engine, constraint, seconds, violations, aux_tuples
    ) -> None:
        """Record the evaluate child span and per-constraint series."""
        if self.tracer is not None:
            self.tracer.event(
                "evaluate",
                seconds,
                engine=engine,
                constraint=constraint,
                violations=violations,
            )
        if self.metrics is not None:
            self.metrics.histogram(
                EVAL_SECONDS,
                buckets=DEFAULT_LATENCY_BUCKETS,
                help="Per-constraint evaluation time",
                engine=engine,
                constraint=constraint,
            ).observe(seconds)
            self.metrics.counter(
                VIOLATIONS_TOTAL,
                help="Violations reported",
                engine=engine,
                constraint=constraint,
            ).inc(violations)
            if aux_tuples is not None:
                self.metrics.gauge(
                    AUX_TUPLES,
                    help="Auxiliary tuples attributable to the constraint",
                    engine=engine,
                    constraint=constraint,
                ).set(aux_tuples)

    def step_end(self, engine, time, seconds, violations, aux_tuples) -> None:
        """Close the step span; record step latency and total space."""
        if self.tracer is not None:
            self.tracer.end(violations=violations)
        if self.metrics is not None:
            self.metrics.histogram(
                STEP_SECONDS,
                buckets=DEFAULT_LATENCY_BUCKETS,
                help="End-to-end step time",
                engine=engine,
            ).observe(seconds)
            self.metrics.gauge(
                AUX_TUPLES_TOTAL,
                help="Total stored tuples (engine space measure)",
                engine=engine,
            ).set(aux_tuples)
