"""Runtime observability: structured tracing and metrics.

The paper's claims are quantitative (bounded space, constant step
time), so the monitor carries always-on-capable telemetry: engines call
the narrow :class:`~repro.obs.instrument.Instrumentation` hooks, and
:class:`~repro.obs.instrument.MonitorInstrumentation` routes them to a
:class:`~repro.obs.tracer.Tracer` (JSONL span traces) and/or a
:class:`~repro.obs.metrics.MetricsRegistry` (Prometheus-exportable
counters, gauges, latency histograms)::

    from repro import Monitor
    from repro.obs import MetricsRegistry, MonitorInstrumentation, Tracer

    tracer, registry = Tracer(), MetricsRegistry()
    monitor = Monitor(
        schema,
        instrumentation=MonitorInstrumentation(tracer, registry),
    )
    ...  # step / run as usual
    tracer.dump_jsonl("trace.jsonl")
    print(render_prometheus(registry))

With no instrumentation attached, every hook site is a single ``None``
check — see ``docs/observability.md`` for the overhead discussion.

Performance observability rides the same hooks:
:class:`~repro.obs.profiler.Profiler` aggregates per-operator
cumulative/self time (``top``/``tree`` reports),
:mod:`repro.obs.bench` defines the machine-readable ``BENCH_<exp>.json``
benchmark artifact, and :mod:`repro.obs.regress` compares fresh
artifacts against committed baselines (the ``repro perf`` gate).
"""

from repro.obs.bench import (
    BENCH_SCHEMA,
    build_artifact,
    percentile,
    read_artifact,
    validate_artifact,
    write_artifact,
)
from repro.obs.export import (
    render_json,
    render_prometheus,
    write_metrics,
)
from repro.obs.instrument import Instrumentation, MonitorInstrumentation
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiler import Profile, Profiler
from repro.obs.regress import (
    compare_artifacts,
    compare_dirs,
    format_report,
)
from repro.obs.tracer import Tracer, read_trace

__all__ = [
    "BENCH_SCHEMA",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "MonitorInstrumentation",
    "Profile",
    "Profiler",
    "Tracer",
    "build_artifact",
    "compare_artifacts",
    "compare_dirs",
    "format_report",
    "percentile",
    "read_artifact",
    "read_trace",
    "render_json",
    "render_prometheus",
    "validate_artifact",
    "write_artifact",
    "write_metrics",
]
