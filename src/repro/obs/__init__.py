"""Runtime observability: structured tracing and metrics.

The paper's claims are quantitative (bounded space, constant step
time), so the monitor carries always-on-capable telemetry: engines call
the narrow :class:`~repro.obs.instrument.Instrumentation` hooks, and
:class:`~repro.obs.instrument.MonitorInstrumentation` routes them to a
:class:`~repro.obs.tracer.Tracer` (JSONL span traces) and/or a
:class:`~repro.obs.metrics.MetricsRegistry` (Prometheus-exportable
counters, gauges, latency histograms)::

    from repro import Monitor
    from repro.obs import MetricsRegistry, MonitorInstrumentation, Tracer

    tracer, registry = Tracer(), MetricsRegistry()
    monitor = Monitor(
        schema,
        instrumentation=MonitorInstrumentation(tracer, registry),
    )
    ...  # step / run as usual
    tracer.dump_jsonl("trace.jsonl")
    print(render_prometheus(registry))

With no instrumentation attached, every hook site is a single ``None``
check — see ``docs/observability.md`` for the overhead discussion.
"""

from repro.obs.export import (
    render_json,
    render_prometheus,
    write_metrics,
)
from repro.obs.instrument import Instrumentation, MonitorInstrumentation
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import Tracer, read_trace

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "MonitorInstrumentation",
    "Tracer",
    "read_trace",
    "render_json",
    "render_prometheus",
    "write_metrics",
]
