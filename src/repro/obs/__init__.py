"""Runtime observability: structured tracing and metrics.

The paper's claims are quantitative (bounded space, constant step
time), so the monitor carries always-on-capable telemetry: engines call
the narrow :class:`~repro.obs.instrument.Instrumentation` hooks, and
:class:`~repro.obs.instrument.MonitorInstrumentation` routes them to a
:class:`~repro.obs.tracer.Tracer` (JSONL span traces) and/or a
:class:`~repro.obs.metrics.MetricsRegistry` (Prometheus-exportable
counters, gauges, latency histograms)::

    from repro import Monitor
    from repro.obs import MetricsRegistry, MonitorInstrumentation, Tracer

    tracer, registry = Tracer(), MetricsRegistry()
    monitor = Monitor(
        schema,
        instrumentation=MonitorInstrumentation(tracer, registry),
    )
    ...  # step / run as usual
    tracer.dump_jsonl("trace.jsonl")
    print(render_prometheus(registry))

With no instrumentation attached, every hook site is a single ``None``
check — see ``docs/observability.md`` for the overhead discussion.

Performance observability rides the same hooks:
:class:`~repro.obs.profiler.Profiler` aggregates per-operator
cumulative/self time (``top``/``tree`` reports),
:mod:`repro.obs.bench` defines the machine-readable ``BENCH_<exp>.json``
benchmark artifact, and :mod:`repro.obs.regress` compares fresh
artifacts against committed baselines (the ``repro perf`` gate).

Event-time observability answers the operational question — "how long
after an event *arrived* did its verdict land?":
:class:`~repro.obs.telemetry.EventTimeTelemetry` stamps events through
the arrival → reorder-release → check → verdict path,
:class:`~repro.obs.slo.SLOEngine` evaluates declarative SLOs with
error budgets and fast/slow burn-rate alerts on every verdict, and
:mod:`repro.obs.health` renders it all into versioned, associatively
mergeable health snapshots (``Monitor.health()`` / ``repro health``).

State observability watches the paper's *space* claim at runtime:
:class:`~repro.obs.statewatch.StateWatch` accounts auxiliary state per
constraint and temporal subformula each step (through the uniform
:mod:`repro.core.statespace` protocol), alerts when a node exceeds its
analytic bound or the total keeps growing, and sketches heavy-hitter
valuations; :class:`~repro.obs.flight.FlightRecorder` keeps a bounded
black box of recent steps and dumps a ``repro-flight/1`` artifact on
violations, faults, and budget exhaustion (``Monitor.
enable_statewatch()`` / ``repro state``).
"""

from repro.obs.bench import (
    BENCH_SCHEMA,
    build_artifact,
    percentile,
    read_artifact,
    validate_artifact,
    write_artifact,
)
from repro.obs.export import (
    render_json,
    render_prometheus,
    write_metrics,
)
from repro.obs.flight import (
    FLIGHT_VERSION,
    FlightRecorder,
    read_flight,
    validate_flight,
)
from repro.obs.health import (
    HEALTH_VERSION,
    build_health,
    build_sharded_health,
    load_health,
    merge_health,
    render_health_text,
    validate_health,
    write_health,
)
from repro.obs.instrument import Instrumentation, MonitorInstrumentation
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiler import Profile, Profiler
from repro.obs.regress import (
    compare_artifacts,
    compare_dirs,
    format_report,
)
from repro.obs.slo import (
    INDICATORS,
    SLO_VERSION,
    SLOAlert,
    SLOEngine,
    SLOSpec,
    load_slo_file,
    parse_slo_doc,
)
from repro.obs.statewatch import (
    STATE_VERSION,
    SpaceSavingSketch,
    StateAlert,
    StateWatch,
    load_state,
    render_state_text,
    validate_state,
    write_state,
)
from repro.obs.telemetry import EventTimeTelemetry
from repro.obs.tracer import Tracer, read_trace

__all__ = [
    "BENCH_SCHEMA",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "EventTimeTelemetry",
    "FLIGHT_VERSION",
    "FlightRecorder",
    "Gauge",
    "HEALTH_VERSION",
    "Histogram",
    "INDICATORS",
    "Instrumentation",
    "MetricsRegistry",
    "MonitorInstrumentation",
    "Profile",
    "Profiler",
    "SLO_VERSION",
    "SLOAlert",
    "SLOEngine",
    "SLOSpec",
    "STATE_VERSION",
    "SpaceSavingSketch",
    "StateAlert",
    "StateWatch",
    "Tracer",
    "build_artifact",
    "build_health",
    "build_sharded_health",
    "compare_artifacts",
    "compare_dirs",
    "format_report",
    "load_health",
    "load_slo_file",
    "load_state",
    "merge_health",
    "parse_slo_doc",
    "percentile",
    "read_artifact",
    "read_flight",
    "read_trace",
    "render_health_text",
    "render_json",
    "render_prometheus",
    "render_state_text",
    "validate_artifact",
    "validate_flight",
    "validate_health",
    "validate_state",
    "write_artifact",
    "write_health",
    "write_metrics",
    "write_state",
]
