"""Machine-readable benchmark artifacts (``BENCH_<exp>.json``).

Every experiment run produces, next to its human-readable table, one
JSON artifact carrying the same data in analyzable form:

* the **table** exactly as rendered (headers + rows, one code path);
* derived **series** — every numeric column against the sweep column —
  with summary stats (mean, p50/p90/p99, tail mean) and a fitted
  log-log **slope** (the growth order the paper's shape claims are
  about);
* optional raw per-step **samples** (step seconds, space samples);
* the **shape expectations** the experiment declares (flat / growth /
  bound checks) together with their measured values and verdicts —
  :mod:`repro.obs.regress` re-evaluates these against a fresh run;
* an **environment fingerprint** (interpreter, platform, CPU count) so
  artifacts from different machines are never silently compared as
  equals;
* optionally the run's full :class:`~repro.obs.metrics.MetricsRegistry`
  dump in the exact :func:`~repro.obs.export.render_json` layout, so
  benchmark artifacts and live-telemetry dumps share one schema.

The artifact is versioned (``"schema": "repro-bench/1"``) and
validated on read, so a truncated or hand-built file fails loudly.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.shapes import growth_order, is_flat

PathLike = Union[str, Path]

#: artifact schema identifier; bump on incompatible layout changes
BENCH_SCHEMA = "repro-bench/1"

#: keys every artifact must carry (validated on read)
_REQUIRED_KEYS = (
    "schema",
    "experiment",
    "title",
    "profile",
    "table",
    "series",
    "samples",
    "shapes",
    "environment",
)

#: shape kinds :func:`evaluate_shape` can recompute from a table
RECOMPUTABLE_SHAPES = ("flat", "growth", "max")


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches the common "linear" definition (numpy's default) without
    requiring numpy; returns 0.0 for an empty input.
    """
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be within [0, 100]")
    ordered = sorted(values)
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def series_stats(values: Sequence[float]) -> Dict[str, float]:
    """Summary statistics of one series (all keys always present)."""
    if not values:
        return {
            "n": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p90": 0.0, "p99": 0.0, "tail_mean": 0.0,
        }
    tail = list(values)[-max(1, len(values) // 4):]
    return {
        "n": len(values),
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
        "p99": percentile(values, 99),
        "tail_mean": sum(tail) / len(tail),
    }


def fit_slope(
    xs: Sequence[float], ys: Sequence[float]
) -> Optional[float]:
    """Log-log growth order of ``ys`` over ``xs`` (None when unfittable)."""
    if len(xs) < 2 or len(xs) != len(ys):
        return None
    try:
        return growth_order(xs, ys)
    except ValueError:
        return None


def environment_fingerprint() -> Dict[str, Any]:
    """Where this artifact was measured (never compared as equal runs
    across differing fingerprints without a warning)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def table_column(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], name: str
) -> Tuple[List[float], List[float]]:
    """``(xs, ys)`` for a named column; x is the first (sweep) column.

    Non-numeric cells are dropped pairwise; non-numeric x values (an
    engine name, ``"*"`` for an unbounded window) fall back to the row
    index so shape fits still have a monotone axis.
    """
    try:
        col = list(headers).index(name)
    except ValueError:
        raise KeyError(f"no column {name!r} in table") from None
    xs: List[float] = []
    ys: List[float] = []
    for index, row in enumerate(rows):
        if col >= len(row) or not _is_number(row[col]):
            continue
        x = row[0] if row and _is_number(row[0]) else index
        xs.append(float(x))
        ys.append(float(row[col]))
    return xs, ys


def derive_series(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> Dict[str, Dict[str, Any]]:
    """Every numeric column of a table as a series with stats + slope."""
    series: Dict[str, Dict[str, Any]] = {}
    for name in list(headers)[1:]:
        xs, ys = table_column(headers, rows, name)
        if not ys:
            continue
        series[name] = {
            "x": xs,
            "y": ys,
            "stats": series_stats(ys),
            "slope": fit_slope(xs, ys),
        }
    return series


def evaluate_shape(
    spec: Dict[str, Any],
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> Optional[Dict[str, Any]]:
    """Evaluate one shape expectation against a table.

    Returns the spec extended with ``value`` / ``ok`` / ``detail``, or
    ``None`` for kinds that cannot be recomputed from a table (ad-hoc
    ``check`` entries record their verdict at run time).

    Kinds:

    * ``flat`` — max/min ratio of the series stays within
      ``tolerance_ratio`` (:func:`repro.analysis.shapes.is_flat`);
    * ``growth`` — the log-log slope lies within
      ``[min_order, max_order]`` (either bound optional);
    * ``max`` — every value stays ``<= limit``.
    """
    kind = spec.get("kind")
    if kind not in RECOMPUTABLE_SHAPES:
        return None
    out = dict(spec)
    try:
        xs, ys = table_column(headers, rows, spec["series"])
    except KeyError as exc:
        out.update(value=None, ok=False, detail=str(exc))
        return out
    if not ys:
        out.update(value=None, ok=False, detail="series has no data")
        return out
    if kind == "flat":
        tolerance = float(spec.get("tolerance_ratio", 3.0))
        positive = [y for y in ys if y > 0]
        ratio = (max(positive) / min(positive)) if positive else 1.0
        out.update(
            value=ratio,
            ok=is_flat(ys, tolerance_ratio=tolerance),
            detail=f"max/min ratio {ratio:.2f} vs tolerance {tolerance}",
        )
    elif kind == "growth":
        slope = fit_slope(xs, ys)
        minimum = spec.get("min_order")
        maximum = spec.get("max_order")
        ok = slope is not None
        if ok and minimum is not None:
            ok = slope >= minimum
        if ok and maximum is not None:
            ok = slope <= maximum
        bounds = (
            f"[{'-inf' if minimum is None else minimum}, "
            f"{'inf' if maximum is None else maximum}]"
        )
        out.update(
            value=slope,
            ok=ok,
            detail=f"fitted order "
                   f"{'n/a' if slope is None else format(slope, '.2f')} "
                   f"vs {bounds}",
        )
    else:  # max
        limit = float(spec["limit"])
        peak = max(ys)
        out.update(
            value=peak,
            ok=peak <= limit,
            detail=f"peak {peak:g} vs limit {limit:g}",
        )
    return out


def build_artifact(
    experiment: str,
    title: str,
    profile: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    shapes: Sequence[Dict[str, Any]] = (),
    samples: Optional[Dict[str, Sequence[float]]] = None,
    metrics: Optional[Dict[str, Any]] = None,
    environment: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one validated artifact document.

    ``shapes`` entries are expected to already carry their ``ok`` /
    ``value`` verdicts (the benchmark runner evaluates them via
    :func:`evaluate_shape` before building); ``metrics`` is a
    :func:`~repro.obs.export.render_json` document or ``None``.
    """
    doc: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "experiment": experiment,
        "title": title,
        "profile": profile,
        "table": {"headers": list(headers), "rows": [list(r) for r in rows]},
        "series": derive_series(headers, rows),
        "samples": {
            name: {
                "values": [round(float(v), 9) for v in values],
                "stats": series_stats([float(v) for v in values]),
            }
            for name, values in (samples or {}).items()
        },
        "shapes": [dict(s) for s in shapes],
        "environment": environment or environment_fingerprint(),
        "metrics": metrics,
    }
    validate_artifact(doc)
    return doc


def validate_artifact(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed artifact."""
    if not isinstance(doc, dict):
        raise ValueError("artifact is not a JSON object")
    missing = [key for key in _REQUIRED_KEYS if key not in doc]
    if missing:
        raise ValueError(f"artifact missing key(s): {', '.join(missing)}")
    if doc["schema"] != BENCH_SCHEMA:
        raise ValueError(
            f"unsupported artifact schema {doc['schema']!r} "
            f"(expected {BENCH_SCHEMA!r})"
        )
    table = doc["table"]
    if (
        not isinstance(table, dict)
        or not isinstance(table.get("headers"), list)
        or not isinstance(table.get("rows"), list)
    ):
        raise ValueError("artifact table must have headers and rows lists")
    for row in table["rows"]:
        if not isinstance(row, list) or len(row) != len(table["headers"]):
            raise ValueError("artifact table rows must match the headers")
    if not isinstance(doc["series"], dict):
        raise ValueError("artifact series must be an object")
    if not isinstance(doc["shapes"], list):
        raise ValueError("artifact shapes must be a list")


def artifact_path(directory: PathLike, experiment: str) -> Path:
    """Canonical artifact file name: ``<dir>/BENCH_<exp>.json``."""
    return Path(directory) / f"BENCH_{experiment}.json"


def write_artifact(doc: Dict[str, Any], path: PathLike) -> Path:
    """Validate and write one artifact; returns the path written."""
    validate_artifact(doc)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return path


def read_artifact(path: PathLike) -> Dict[str, Any]:
    """Read and validate one artifact file."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from None
    validate_artifact(doc)
    return doc


def read_artifact_dir(directory: PathLike) -> Dict[str, Dict[str, Any]]:
    """All ``BENCH_*.json`` artifacts in a directory, keyed by
    experiment id (taken from the document, not the file name)."""
    directory = Path(directory)
    artifacts: Dict[str, Dict[str, Any]] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        doc = read_artifact(path)
        artifacts[doc["experiment"]] = doc
    return artifacts
