"""Deterministic op-level profiler riding the instrumentation hooks.

:class:`Profiler` is an :class:`~repro.obs.instrument.Instrumentation`
subclass, so it attaches anywhere a tracer or metrics registry does —
engines keep their single ``if instrumentation is not None`` guard and
the disabled path stays allocation- and call-free.  Unlike a sampling
profiler it takes **no clock readings of its own**: every duration it
aggregates was measured by the engine and delivered through a hook, so
two runs over the same stream produce the same profile *structure*
(operator paths, call counts) with only the timings differing.

The aggregation is flame-style: a tree keyed by the tracer's span
stack, collapsed per operator rather than per occurrence::

    step                          one node per engine step
    ├── apply                     transaction application
    ├── aux ONCE[0,8]             auxiliary updates, one node per
    ├── aux SINCE[2,*]              temporal operator (PREV/ONCE/SINCE
    ├── rule <name>                 with their intervals)
    └── evaluate <constraint>     per-constraint formula evaluation

Each node carries cumulative seconds, *self* seconds (cumulative minus
children — for ``step`` that is the checker's own bookkeeping around
the hooked operations), and call counts.  :meth:`Profile.top` renders
a flat hottest-first table; :meth:`Profile.tree` the indented tree in
deterministic (lexicographic) child order.

A :class:`Profile` can also be rebuilt offline from a recorded JSONL
trace via :meth:`Profile.from_trace`, keyed the same way, so ``check
--trace`` output and a live profiler agree.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs.instrument import Instrumentation

#: hook-event names that become profile nodes under ``step``
_CHILD_QUALIFIERS = {
    "aux": "node",
    "evaluate": "constraint",
    "rule": "rule",
}


def operator_of(node_label: str) -> str:
    """The operator key of an auxiliary node label.

    Node labels are formula renderings such as ``"ONCE[0,8] event(x)"``
    or ``"PREV flag(x)"``; the per-operator aggregation keys on the
    leading operator token (interval included), collapsing all nodes of
    the same operator shape into one profile row.
    """
    return str(node_label).split(" ", 1)[0]


class OpStats:
    """Aggregated figures for one profile node."""

    __slots__ = ("calls", "seconds", "child_seconds", "children")

    def __init__(self):
        self.calls = 0
        self.seconds = 0.0
        self.child_seconds = 0.0
        self.children: Dict[str, OpStats] = {}

    def add(self, seconds: float) -> None:
        self.calls += 1
        self.seconds += seconds

    @property
    def self_seconds(self) -> float:
        """Cumulative time minus time attributed to children (>= 0)."""
        return max(0.0, self.seconds - self.child_seconds)

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0

    def child(self, key: str) -> "OpStats":
        node = self.children.get(key)
        if node is None:
            node = OpStats()
            self.children[key] = node
        return node

    def __repr__(self) -> str:
        return (
            f"OpStats(calls={self.calls}, cum={self.seconds:.6f}s, "
            f"self={self.self_seconds:.6f}s, "
            f"{len(self.children)} child(ren))"
        )


class Profile:
    """A flame-style aggregation of hook-measured operations."""

    def __init__(self):
        self.roots: Dict[str, OpStats] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def root(self, key: str) -> OpStats:
        """The root node for ``key``, created on first use."""
        node = self.roots.get(key)
        if node is None:
            node = OpStats()
            self.roots[key] = node
        return node

    @classmethod
    def from_trace(cls, events: Iterable[Dict[str, Any]]) -> "Profile":
        """Aggregate recorded spans (see :func:`repro.obs.read_trace`).

        Spans are keyed exactly as the live profiler keys hook calls:
        ``step`` spans become roots; ``apply``/``aux``/``rule``/
        ``evaluate`` children collapse per operator, constraint, or
        rule.  Spans with unknown names aggregate under their own name
        so third-party traces stay visible.
        """
        profile = cls()
        by_id: Dict[Any, Dict[str, Any]] = {}
        for event in events:
            by_id[event.get("span")] = event
        for event in events:
            name = event.get("name")
            duration = float(event.get("duration", 0.0))
            parent = by_id.get(event.get("parent"))
            if parent is None:
                profile.root(str(name)).add(duration)
                continue
            # only one nesting level is produced by the stock hooks;
            # deeper traces still collapse onto (root, leaf) pairs
            root = profile.root(str(parent.get("name")))
            root.child(cls._leaf_key(name, event)).add(duration)
            root.child_seconds += duration
        return profile

    @staticmethod
    def _leaf_key(name: str, attrs: Dict[str, Any]) -> str:
        qualifier = _CHILD_QUALIFIERS.get(name)
        if qualifier is None:
            return str(name)
        value = attrs.get(qualifier)
        if value is None:
            return str(name)
        if name == "aux":
            return f"aux {operator_of(value)}"
        return f"{name} {value}"

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def walk(self) -> Iterator[Tuple[Tuple[str, ...], OpStats]]:
        """Yield ``(path, stats)`` depth-first in lexicographic order."""
        for key in sorted(self.roots):
            yield from self._walk_node((key,), self.roots[key])

    def _walk_node(self, path, node) -> Iterator[Tuple[Tuple[str, ...], OpStats]]:
        yield path, node
        for key in sorted(node.children):
            yield from self._walk_node(path + (key,), node.children[key])

    @property
    def total_seconds(self) -> float:
        """Cumulative seconds across root nodes."""
        return sum(node.seconds for node in self.roots.values())

    def call_counts(self) -> Dict[str, int]:
        """``{"path/leaf": calls}`` — the deterministic skeleton two
        identical runs must agree on (timings excluded)."""
        return {"/".join(path): node.calls for path, node in self.walk()}

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-able dump: per path calls / cumulative / self seconds."""
        return {
            "/".join(path): {
                "calls": node.calls,
                "cum_seconds": node.seconds,
                "self_seconds": node.self_seconds,
            }
            for path, node in self.walk()
        }

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def top(self, limit: int = 10) -> str:
        """The hottest operations by *self* time, flat, one per row."""
        from repro.analysis.report import format_table

        total = self.total_seconds
        rows = sorted(
            self.walk(),
            key=lambda item: (-item[1].self_seconds, item[0]),
        )[: max(1, limit)]
        return format_table(
            ["op", "calls", "cum ms", "self ms", "mean us", "% self"],
            [
                [
                    "/".join(path),
                    node.calls,
                    round(node.seconds * 1e3, 3),
                    round(node.self_seconds * 1e3, 3),
                    round(node.mean_seconds * 1e6, 1),
                    round(node.self_seconds / total * 100, 1)
                    if total
                    else 0.0,
                ]
                for path, node in rows
            ],
            title=f"top operations by self time "
                  f"(total {total * 1e3:.2f} ms)",
        )

    def tree(self) -> str:
        """The indented aggregation tree, children sorted by key."""
        lines: List[str] = []
        width = max(
            (2 * (len(path) - 1) + len(path[-1]) for path, _ in self.walk()),
            default=4,
        )
        for path, node in self.walk():
            label = "  " * (len(path) - 1) + path[-1]
            lines.append(
                f"{label.ljust(width)}  "
                f"calls {node.calls:>7}  "
                f"cum {node.seconds * 1e3:>10.3f} ms  "
                f"self {node.self_seconds * 1e3:>10.3f} ms  "
                f"mean {node.mean_seconds * 1e6:>8.1f} us"
            )
        return "\n".join(lines) if lines else "(empty profile)"

    def __repr__(self) -> str:
        nodes = sum(1 for _ in self.walk())
        return (
            f"Profile({nodes} node(s), "
            f"{self.total_seconds * 1e3:.2f} ms cumulative)"
        )


class Profiler(Instrumentation):
    """Builds a :class:`Profile` from live engine hooks.

    Attach via ``Monitor.instrument(Profiler())`` or the engine's
    ``instrumentation=`` argument.  One profiler may serve several
    engines; their steps merge under the shared ``step`` root (series
    that must stay separable should use one profiler per engine).

    The profiler allocates only on the enabled path; it takes no clock
    readings (all durations arrive through the hooks), which is what
    makes its reports deterministic in structure.
    """

    __slots__ = ("profile", "_step_node", "_pending_child_seconds")

    def __init__(self):
        self.profile = Profile()
        self._step_node: Optional[OpStats] = None
        self._pending_child_seconds = 0.0

    # -- hook protocol -------------------------------------------------

    def step_begin(self, engine, time, txn_rows) -> None:
        self._step_node = self.profile.root("step")
        self._pending_child_seconds = 0.0

    def _leaf(self, key: str, seconds: float) -> None:
        node = self._step_node
        if node is None:
            # hooks arriving outside a step aggregate at the root
            self.profile.root(key).add(seconds)
            return
        node.child(key).add(seconds)
        self._pending_child_seconds += seconds

    def apply_done(self, engine, time, seconds) -> None:
        self._leaf("apply", seconds)

    def aux_advanced(self, engine, node, seconds, tuples) -> None:
        self._leaf(f"aux {operator_of(node)}", seconds)

    def rule_fired(self, engine, rule, time, seconds) -> None:
        self._leaf(f"rule {rule}", seconds)

    def constraint_checked(
        self, engine, constraint, seconds, violations, aux_tuples
    ) -> None:
        self._leaf(f"evaluate {constraint}", seconds)

    def step_end(self, engine, time, seconds, violations, aux_tuples) -> None:
        node = self._step_node
        if node is None:  # unbalanced caller; tolerate
            self.profile.root("step").add(seconds)
            return
        node.add(seconds)
        node.child_seconds += self._pending_child_seconds
        self._step_node = None
        self._pending_child_seconds = 0.0

    # -- conveniences --------------------------------------------------

    def top(self, limit: int = 10) -> str:
        """Shortcut for ``profiler.profile.top(...)``."""
        return self.profile.top(limit)

    def tree(self) -> str:
        """Shortcut for ``profiler.profile.tree()``."""
        return self.profile.tree()

    def __repr__(self) -> str:
        return f"Profiler({self.profile!r})"
