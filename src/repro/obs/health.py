"""The health surface: versioned, mergeable JSON snapshots.

:func:`build_health` renders one monitored process into a single JSON
document (version tag ``repro-health/1``) aggregating everything an
operator asks first: stage latency histograms, watermark/frontier lag,
ingest accounting, fault/quarantine/shed counters, journal and
checkpoint age, and per-SLO error-budget state.

The design constraint is **associative merging**: every field is
either a summable counter, a fixed-bucket histogram (bucket-wise
addition), a max-merged gauge, or a pure function of those — so N
per-shard (or per-chunk) snapshots fold into exactly the snapshot a
single run would have produced.  This is the seam the ROADMAP's
sharded-monitoring arc plugs into: shards emit snapshots, an
aggregator calls :func:`merge_health`, and the operator reads one
document.  Quantiles are *recomputed from the merged buckets* at
render time, never merged themselves (percentiles do not add).

The CLI surfaces this as ``repro health`` (validate / merge / render
snapshot files) and ``repro check --health PATH`` (write one);
programmatic callers use :meth:`repro.core.monitor.Monitor.health`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import TelemetryError
from repro.obs.export import json_value
from repro.obs.metrics import Histogram
from repro.obs.slo import budget_remaining, budget_state

#: Current version tag of the health snapshot format.
HEALTH_VERSION = "repro-health/1"

#: Quantiles reported per histogram (recomputed after every merge).
QUANTILES = (0.5, 0.95, 0.99)

#: Top-level sections every snapshot carries (``None`` marks a section
#: the producing process had no data for; merge treats it as empty).
SECTIONS = ("steps", "stages", "lag", "ingest", "faults", "journal", "slo")

_STEP_KEYS = ("processed", "violations", "degraded", "skipped",
              "deferred_evaluations", "shed_events")
_STAGE_KEYS = ("reorder", "queue", "check", "verdict")
_LAG_HIST_KEYS = ("frontier", "queue_depth")
_INGEST_SUM_KEYS = (
    "accepted", "emitted", "late", "duplicates", "merges", "invalid",
    "forced", "shed", "blocked", "retries", "source_failures",
    "pressure_engagements",
)
_FAULT_SUM_KEYS = ("skipped", "quarantined", "handler_failures",
                   "degraded_steps")


# ----------------------------------------------------------------------
# histogram <-> snapshot form
# ----------------------------------------------------------------------

def snapshot_histogram(hist: Histogram) -> Dict:
    """A histogram as its JSON snapshot form.

    Carries the *non-cumulative* bucket counts (so merging is plain
    elementwise addition) plus quantile estimates for display.
    """
    doc: Dict = {
        "buckets": [float(b) for b in hist.buckets],
        "counts": list(hist.bucket_counts),
        "sum": json_value(hist.sum),
        "count": hist.count,
    }
    for q in QUANTILES:
        doc[f"p{int(q * 100)}"] = json_value(hist.quantile(q))
    return doc


def histogram_from_snapshot(doc: Dict) -> Histogram:
    """Rebuild a :class:`Histogram` from its snapshot form."""
    if not isinstance(doc, dict):
        raise TelemetryError(f"histogram snapshot must be an object, "
                             f"got {doc!r}")
    try:
        buckets = doc["buckets"]
        counts = doc["counts"]
        total = doc["count"]
        total_sum = doc["sum"]
    except KeyError as exc:
        raise TelemetryError(
            f"histogram snapshot missing key {exc.args[0]!r}"
        ) from None
    hist = Histogram(buckets)
    if len(counts) != len(hist.buckets):
        raise TelemetryError(
            f"histogram snapshot has {len(counts)} counts for "
            f"{len(hist.buckets)} buckets"
        )
    if any(not isinstance(c, int) or c < 0 for c in counts):
        raise TelemetryError("histogram counts must be non-negative ints")
    if not isinstance(total, int) or total < sum(counts):
        raise TelemetryError(
            f"histogram count ({total!r}) cannot be below the bucketed "
            f"total ({sum(counts)})"
        )
    hist.bucket_counts = list(counts)
    hist.count = total
    hist.sum = float(total_sum) if not isinstance(total_sum, str) else 0.0
    return hist


def _merge_hist_docs(left: Optional[Dict], right: Optional[Dict],
                     where: str) -> Optional[Dict]:
    if left is None:
        return right
    if right is None:
        return left
    a = histogram_from_snapshot(left)
    b = histogram_from_snapshot(right)
    try:
        a.merge(b)
    except ValueError as exc:
        raise TelemetryError(f"{where}: {exc}") from exc
    return snapshot_histogram(a)


# ----------------------------------------------------------------------
# building a snapshot from a live monitor
# ----------------------------------------------------------------------

def build_health(monitor) -> Dict:
    """Render ``monitor``'s current state as one health snapshot.

    Works with any :class:`~repro.core.monitor.Monitor`, telemetry
    enabled or not — sections whose producer is absent are ``None``
    (and merge as empty).  The ``steps`` section prefers the telemetry
    counters (which see every verdict) and falls back to the checker's
    own step count.
    """
    telemetry = getattr(monitor, "telemetry", None)
    doc: Dict = {
        "version": HEALTH_VERSION,
        "engines": [monitor.engine],
        "steps": _steps_section(monitor, telemetry),
        "stages": None,
        "lag": None,
        "ingest": _ingest_section(getattr(monitor, "ingest", None)),
        "faults": _faults_section(getattr(monitor, "resilience", None)),
        "journal": _journal_section(getattr(monitor, "journal", None)),
        "slo": [],
    }
    if telemetry is not None:
        doc["stages"] = {
            name: (snapshot_histogram(hist) if hist.count else None)
            for name, hist in telemetry.stage_histograms().items()
        }
        lag_hists = telemetry.lag_histograms()
        doc["lag"] = {
            name: (snapshot_histogram(hist) if hist.count else None)
            for name, hist in lag_hists.items()
        }
        doc["lag"]["frontier_lag"] = telemetry.last_frontier_lag
        doc["lag"]["queue_depth_now"] = telemetry.last_queue_depth
        if telemetry.slo is not None:
            doc["slo"] = telemetry.slo.summary()
    return doc


def _steps_section(monitor, telemetry) -> Dict:
    if telemetry is not None:
        return {
            "processed": telemetry.steps_processed,
            "violations": telemetry.violations_total,
            "degraded": telemetry.degraded_steps,
            "skipped": telemetry.skipped_steps,
            "deferred_evaluations": telemetry.deferred_evaluations,
            "shed_events": telemetry.shed_events,
        }
    checker = monitor._checker
    resilience = getattr(monitor, "resilience", None)
    section = dict.fromkeys(_STEP_KEYS, 0)
    if checker is not None:
        section["processed"] = checker.steps_processed
    if resilience is not None:
        section["skipped"] = resilience.skipped
        section["degraded"] = resilience.degraded_steps
    return section


def _ingest_section(pipeline) -> Optional[Dict]:
    if pipeline is None:
        return None
    summary = pipeline.summary()
    reorder = summary["reorder"]
    queue = summary["queue"]
    return {
        "accepted": reorder["accepted"],
        "emitted": reorder["emitted"],
        "late": reorder["late"],
        "duplicates": reorder["duplicates"],
        "merges": reorder["merges"],
        "invalid": reorder["invalid"],
        "forced": reorder["forced"],
        "shed": queue["shed"],
        "blocked": queue["blocked"],
        "retries": summary["retries"],
        "source_failures": summary["source_failures"],
        "pressure_engagements": summary["pressure_engagements"],
        "dead_sources": sorted(summary["dead_sources"]),
        "watermark": reorder["watermark"],
    }


def _faults_section(resilience) -> Optional[Dict]:
    if resilience is None:
        return None
    summary = resilience.summary()
    return {
        "counts": dict(summary["faults"]),
        "skipped": summary["skipped"],
        "quarantined": summary["quarantined"],
        "handler_failures": summary["handler_failures"],
        "degraded_steps": summary["degraded_steps"],
    }


def _journal_section(journal) -> Optional[Dict]:
    if journal is None:
        return None
    return {
        "records": journal.records_written,
        "checkpoints": journal.checkpoints_written,
        "checkpoint_every": journal.checkpoint_every,
        "age_steps": journal.steps_since_checkpoint,
    }


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

def validate_health(doc) -> Dict:
    """Check a snapshot's structure; return it unchanged.

    Raises :class:`~repro.errors.TelemetryError` naming the offending
    field — this is what the CI smoke job runs against the example's
    output, and what ``repro health`` runs on every input file.
    """
    if not isinstance(doc, dict):
        raise TelemetryError("health snapshot must be a JSON object")
    version = doc.get("version")
    if version != HEALTH_VERSION:
        raise TelemetryError(
            f"unsupported health snapshot version {version!r} "
            f"(expected {HEALTH_VERSION!r})"
        )
    engines = doc.get("engines")
    if not isinstance(engines, list) or not all(
        isinstance(e, str) for e in engines
    ):
        raise TelemetryError("'engines' must be a list of engine names")
    for section in SECTIONS:
        if section not in doc:
            raise TelemetryError(f"health snapshot missing {section!r}")
    steps = doc["steps"]
    if not isinstance(steps, dict):
        raise TelemetryError("'steps' must be an object")
    for key in _STEP_KEYS:
        if not isinstance(steps.get(key), int) or steps[key] < 0:
            raise TelemetryError(
                f"steps.{key} must be a non-negative int, "
                f"got {steps.get(key)!r}"
            )
    for name, keys in (("stages", _STAGE_KEYS), ("lag", _LAG_HIST_KEYS)):
        section = doc[name]
        if section is None:
            continue
        if not isinstance(section, dict):
            raise TelemetryError(f"{name!r} must be an object or null")
        for key in keys:
            hist = section.get(key)
            if hist is not None:
                histogram_from_snapshot(hist)  # raises with details
    ingest = doc["ingest"]
    if ingest is not None:
        if not isinstance(ingest, dict):
            raise TelemetryError("'ingest' must be an object or null")
        for key in _INGEST_SUM_KEYS:
            if not isinstance(ingest.get(key), int):
                raise TelemetryError(
                    f"ingest.{key} must be an int, got {ingest.get(key)!r}"
                )
    slo = doc["slo"]
    if not isinstance(slo, list):
        raise TelemetryError("'slo' must be a list")
    for entry in slo:
        if not isinstance(entry, dict) or "name" not in entry:
            raise TelemetryError(f"malformed SLO entry: {entry!r}")
        for key in ("good", "bad"):
            if not isinstance(entry.get(key), int) or entry[key] < 0:
                raise TelemetryError(
                    f"slo[{entry.get('name')!r}].{key} must be a "
                    f"non-negative int"
                )
    return doc


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------

def merge_health(snapshots: Iterable[Dict]) -> Dict:
    """Fold N snapshots into one (associative and commutative).

    Counters add, histograms merge bucket-wise, gauges take the worst
    (max) shard, and derived fields — quantiles, SLO budgets — are
    recomputed from the merged counts, so the fold of per-chunk
    snapshots equals the single-run snapshot exactly.
    """
    docs = [validate_health(doc) for doc in snapshots]
    if not docs:
        raise TelemetryError("merge_health needs at least one snapshot")
    merged = docs[0]
    for doc in docs[1:]:
        merged = _merge_two(merged, doc)
    return merged


def _merge_two(left: Dict, right: Dict) -> Dict:
    out: Dict = {
        "version": HEALTH_VERSION,
        "engines": sorted(set(left["engines"]) | set(right["engines"])),
        "steps": {
            key: left["steps"][key] + right["steps"][key]
            for key in _STEP_KEYS
        },
        "stages": _merge_hist_section(
            left["stages"], right["stages"], _STAGE_KEYS, "stages"
        ),
        "lag": _merge_lag(left["lag"], right["lag"]),
        "ingest": _merge_ingest(left["ingest"], right["ingest"]),
        "faults": _merge_faults(left["faults"], right["faults"]),
        "journal": _merge_journal(left["journal"], right["journal"]),
        "slo": _merge_slo(left["slo"], right["slo"]),
    }
    return out


def _merge_hist_section(left, right, keys, where):
    if left is None:
        return right
    if right is None:
        return left
    return {
        key: _merge_hist_docs(left.get(key), right.get(key),
                              f"{where}.{key}")
        for key in keys
    }


def _max_or_none(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _merge_lag(left, right):
    merged = _merge_hist_section(left, right, _LAG_HIST_KEYS, "lag")
    if merged is None or (left is None or right is None):
        return merged
    merged["frontier_lag"] = _max_or_none(
        left.get("frontier_lag"), right.get("frontier_lag")
    )
    merged["queue_depth_now"] = _max_or_none(
        left.get("queue_depth_now"), right.get("queue_depth_now")
    )
    return merged


def _merge_ingest(left, right):
    if left is None:
        return right
    if right is None:
        return left
    out = {key: left[key] + right[key] for key in _INGEST_SUM_KEYS}
    out["dead_sources"] = sorted(
        set(left["dead_sources"]) | set(right["dead_sources"])
    )
    out["watermark"] = _max_or_none(
        left.get("watermark"), right.get("watermark")
    )
    return out


def _merge_faults(left, right):
    if left is None:
        return right
    if right is None:
        return left
    counts = dict(left["counts"])
    for kind, n in right["counts"].items():
        counts[kind] = counts.get(kind, 0) + n
    out = {key: left[key] + right[key] for key in _FAULT_SUM_KEYS}
    out["counts"] = dict(sorted(counts.items()))
    return out


def _merge_journal(left, right):
    if left is None:
        return right
    if right is None:
        return left
    return {
        "records": left["records"] + right["records"],
        "checkpoints": left["checkpoints"] + right["checkpoints"],
        "checkpoint_every": _max_or_none(
            left.get("checkpoint_every"), right.get("checkpoint_every")
        ),
        # replay cost after a crash is bounded by the worst shard
        "age_steps": _max_or_none(
            left.get("age_steps"), right.get("age_steps")
        ),
    }


def _merge_slo(left: List[Dict], right: List[Dict]) -> List[Dict]:
    by_name: Dict[str, Dict] = {}
    order: List[str] = []
    for entry in list(left) + list(right):
        name = entry["name"]
        prior = by_name.get(name)
        if prior is None:
            by_name[name] = dict(entry)
            order.append(name)
            continue
        for key in ("indicator", "threshold", "target"):
            if prior.get(key) != entry.get(key):
                raise TelemetryError(
                    f"cannot merge SLO {name!r}: {key} differs "
                    f"({prior.get(key)!r} vs {entry.get(key)!r})"
                )
        prior["good"] += entry["good"]
        prior["bad"] += entry["bad"]
        prior_alerts = prior.get("alerts") or {}
        for severity, n in (entry.get("alerts") or {}).items():
            prior_alerts[severity] = prior_alerts.get(severity, 0) + n
        prior["alerts"] = prior_alerts
    merged = []
    for name in order:
        entry = by_name[name]
        remaining = budget_remaining(
            entry["target"], entry["good"], entry["bad"]
        )
        entry["budget_remaining"] = remaining
        entry["state"] = budget_state(remaining)
        merged.append(entry)
    return merged


# ----------------------------------------------------------------------
# rendering and IO
# ----------------------------------------------------------------------

def write_health(doc: Dict, path: Union[str, Path]) -> None:
    """Write a snapshot as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(validate_health(doc), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_health(path: Union[str, Path]) -> Dict:
    """Read and validate a snapshot file."""
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise TelemetryError(
            f"cannot read health snapshot {path}: {exc}"
        ) from exc
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise TelemetryError(f"{path} is not valid JSON: {exc}") from exc
    try:
        return validate_health(doc)
    except TelemetryError as exc:
        raise TelemetryError(f"{path}: {exc}") from exc


def _fmt_us(seconds) -> str:
    if isinstance(seconds, str):
        return seconds
    return f"{seconds * 1e6:.1f}"


def render_health_text(doc: Dict) -> str:
    """A snapshot as a terminal-friendly report (``repro health``)."""
    lines: List[str] = []
    steps = doc["steps"]
    lines.append(
        f"health ({', '.join(doc['engines'])}): "
        f"{steps['processed']} step(s), {steps['violations']} "
        f"violation(s), {steps['degraded']} degraded, "
        f"{steps['skipped']} skipped"
    )
    if steps["shed_events"] or steps["deferred_evaluations"]:
        lines.append(
            f"  load shedding: {steps['shed_events']} event(s) shed, "
            f"{steps['deferred_evaluations']} evaluation(s) deferred"
        )
    stages = doc.get("stages")
    if stages is not None:
        lines.append("  stage latency (us):")
        lines.append(
            f"    {'stage':<10}{'count':>8}{'p50':>10}{'p95':>10}"
            f"{'p99':>10}"
        )
        for name in _STAGE_KEYS:
            hist = stages.get(name)
            if hist is None:
                continue
            lines.append(
                f"    {name:<10}{hist['count']:>8}"
                f"{_fmt_us(hist['p50']):>10}{_fmt_us(hist['p95']):>10}"
                f"{_fmt_us(hist['p99']):>10}"
            )
    lag = doc.get("lag")
    if lag is not None:
        frontier = lag.get("frontier")
        if frontier is not None and frontier["count"]:
            lines.append(
                f"  frontier lag: p50 {frontier['p50']} / "
                f"p99 {frontier['p99']} clock unit(s) over "
                f"{frontier['count']} sample(s) "
                f"(now {lag.get('frontier_lag')})"
            )
    ingest = doc.get("ingest")
    if ingest is not None:
        lines.append(
            f"  ingest: {ingest['accepted']} accepted, "
            f"{ingest['emitted']} emitted, {ingest['late']} late, "
            f"{ingest['duplicates']} duplicate(s), "
            f"{ingest['shed']} shed"
        )
        if ingest["dead_sources"]:
            lines.append(
                f"    dead sources: {', '.join(ingest['dead_sources'])}"
            )
    faults = doc.get("faults")
    if faults is not None:
        kinds = ", ".join(
            f"{kind}={n}" for kind, n in faults["counts"].items()
        ) or "none"
        lines.append(
            f"  faults: {kinds} ({faults['quarantined']} quarantined)"
        )
    journal = doc.get("journal")
    if journal is not None:
        lines.append(
            f"  journal: {journal['records']} record(s), "
            f"{journal['checkpoints']} checkpoint(s), "
            f"age {journal['age_steps']} step(s)"
        )
    if doc["slo"]:
        lines.append("  slo:")
        for entry in doc["slo"]:
            alerts = entry.get("alerts") or {}
            fired = ", ".join(
                f"{n} {severity}" for severity, n in sorted(alerts.items())
                if n
            ) or "no alerts"
            lines.append(
                f"    {entry['name']:<24} [{entry['state']:<9}] "
                f"budget {entry['budget_remaining'] * 100:6.1f}%  "
                f"bad {entry['bad']}/{entry['good'] + entry['bad']}  "
                f"({fired})"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# sharded runs
# ----------------------------------------------------------------------

def build_sharded_health(sharded) -> Dict:
    """One merged snapshot for a whole sharded run.

    Folds every live shard worker's ``repro-health/1`` snapshot with
    :func:`merge_health` (tombstoned shards contribute nothing — their
    loss shows up in the supervision section instead) and attaches a
    ``shards`` section with the supervisor's accounting.  Requires the
    inline transport: process workers' snapshots live out-of-process.
    """
    from repro.errors import MonitorError

    supervisor = sharded.supervisor
    snapshots = []
    for worker in supervisor.workers:
        monitor = getattr(worker, "monitor", None)
        if monitor is None and worker.alive:
            raise MonitorError(
                "sharded health snapshots require the inline transport"
            )
        if monitor is not None:
            snapshots.append(build_health(monitor))
    if snapshots:
        merged = merge_health(snapshots)
    else:
        merged = {
            "version": HEALTH_VERSION,
            "engines": ["incremental"],
            "steps": {key: 0 for key in _STEP_KEYS},
            "stages": None,
            "lag": None,
            "ingest": None,
            "faults": None,
            "journal": None,
            "slo": [],
        }
    merged["shards"] = dict(supervisor.summary())
    merged["shards"]["accounting"] = sharded.accounting()
    return merged
