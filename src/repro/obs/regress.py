"""Performance-regression gating over benchmark artifacts.

Compares a *candidate* run (fresh ``BENCH_<exp>.json`` artifacts) with
a committed *baseline*, at two severities:

* **shape verdicts** — the baseline's declared shape expectations
  (flat / growth / max entries, see
  :func:`repro.obs.bench.evaluate_shape`) are **re-evaluated against
  the candidate's table**.  A broken shape means a paper claim no
  longer reproduces (e.g. the incremental per-step column gained a
  naive-like slope): this is a hard failure regardless of how noisy
  the machine is.
* **metric deltas** — per-series summary statistics are compared
  within a multiplicative noise band; outside it the series is
  flagged ``regressed`` (or ``improved``).  Timing deltas on shared CI
  runners are advisory by default — callers decide whether they gate.

Comparisons across different sweep profiles (``short`` vs ``full``)
skip the delta stage (the sweeps measure different points) but still
re-check shapes, which are scale-free.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.obs.bench import (
    RECOMPUTABLE_SHAPES,
    evaluate_shape,
    read_artifact_dir,
)

PathLike = Union[str, Path]

#: series-delta verdicts
IMPROVED = "improved"
WITHIN_NOISE = "within-noise"
REGRESSED = "regressed"

#: default multiplicative noise band for metric deltas (25%)
DEFAULT_NOISE = 0.25

#: the scalar each series is compared on
DELTA_STAT = "mean"


class SeriesDelta:
    """One series' baseline-vs-candidate comparison."""

    __slots__ = ("series", "baseline", "candidate", "ratio", "verdict")

    def __init__(self, series, baseline, candidate, ratio, verdict):
        self.series = series
        self.baseline = baseline
        self.candidate = candidate
        self.ratio = ratio
        self.verdict = verdict

    def __repr__(self) -> str:
        return f"SeriesDelta({self.series!r}: {self.verdict}, x{self.ratio})"


class ShapeVerdict:
    """One shape expectation re-evaluated on the candidate."""

    __slots__ = ("name", "kind", "ok", "value", "detail", "recomputed")

    def __init__(self, name, kind, ok, value, detail, recomputed):
        self.name = name
        self.kind = kind
        self.ok = ok
        self.value = value
        self.detail = detail
        self.recomputed = recomputed

    def __repr__(self) -> str:
        status = "ok" if self.ok else "BROKEN"
        return f"ShapeVerdict({self.name!r}: {status})"


class Comparison:
    """The full baseline-vs-candidate report for one experiment."""

    def __init__(
        self,
        experiment: str,
        deltas: Sequence[SeriesDelta],
        shapes: Sequence[ShapeVerdict],
        notes: Sequence[str] = (),
    ):
        self.experiment = experiment
        self.deltas = list(deltas)
        self.shapes = list(shapes)
        self.notes = list(notes)

    @property
    def shape_broken(self) -> bool:
        """Any paper-shape expectation failing on the candidate."""
        return any(not shape.ok for shape in self.shapes)

    @property
    def regressions(self) -> List[SeriesDelta]:
        return [d for d in self.deltas if d.verdict == REGRESSED]

    @property
    def verdict(self) -> str:
        """Worst outcome: shape-broken > regressed > improved > within."""
        if self.shape_broken:
            return "shape-broken"
        if self.regressions:
            return REGRESSED
        if any(d.verdict == IMPROVED for d in self.deltas):
            return IMPROVED
        return WITHIN_NOISE

    def __repr__(self) -> str:
        return f"Comparison({self.experiment}: {self.verdict})"


def _delta_verdict(base: float, cand: float, noise: float) -> Tuple[float, str]:
    """``(ratio, verdict)`` for one scalar pair under a noise band."""
    if base <= 0:
        return (0.0 if cand <= 0 else float("inf")), WITHIN_NOISE
    ratio = cand / base
    if ratio > 1.0 + noise:
        return ratio, REGRESSED
    if ratio < 1.0 - noise:
        return ratio, IMPROVED
    return ratio, WITHIN_NOISE


def compare_artifacts(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    noise: float = DEFAULT_NOISE,
) -> Comparison:
    """Compare one candidate artifact against its baseline."""
    experiment = baseline.get("experiment", "?")
    notes: List[str] = []
    if candidate.get("experiment") != experiment:
        notes.append(
            f"candidate is for experiment "
            f"{candidate.get('experiment')!r}, baseline for {experiment!r}"
        )

    # shapes: re-evaluate the baseline's expectations on candidate data
    table = candidate.get("table", {})
    headers = table.get("headers", [])
    rows = table.get("rows", [])
    cand_shapes = {
        s.get("name"): s for s in candidate.get("shapes", [])
    }
    shapes: List[ShapeVerdict] = []
    for spec in baseline.get("shapes", []):
        name = spec.get("name", spec.get("series", "?"))
        kind = spec.get("kind", "check")
        if kind in RECOMPUTABLE_SHAPES:
            result = evaluate_shape(spec, headers, rows)
            shapes.append(
                ShapeVerdict(
                    name, kind,
                    bool(result and result["ok"]),
                    result.get("value") if result else None,
                    result.get("detail", "") if result else "",
                    recomputed=True,
                )
            )
        else:
            recorded = cand_shapes.get(name)
            if recorded is None:
                shapes.append(
                    ShapeVerdict(
                        name, kind, False, None,
                        "candidate did not record this check",
                        recomputed=False,
                    )
                )
            else:
                shapes.append(
                    ShapeVerdict(
                        name, kind, bool(recorded.get("ok")),
                        recorded.get("value"),
                        recorded.get("detail", ""),
                        recomputed=False,
                    )
                )

    # metric deltas: only between runs of the same sweep profile
    deltas: List[SeriesDelta] = []
    if baseline.get("profile") != candidate.get("profile"):
        notes.append(
            f"sweep profiles differ "
            f"({baseline.get('profile')!r} vs {candidate.get('profile')!r}); "
            f"metric deltas skipped, shapes still checked"
        )
    else:
        base_series = baseline.get("series", {})
        cand_series = candidate.get("series", {})
        for name in base_series:
            if name not in cand_series:
                notes.append(f"series {name!r} missing from candidate")
                continue
            base_value = base_series[name].get("stats", {}).get(DELTA_STAT, 0)
            cand_value = cand_series[name].get("stats", {}).get(DELTA_STAT, 0)
            ratio, verdict = _delta_verdict(base_value, cand_value, noise)
            deltas.append(
                SeriesDelta(name, base_value, cand_value, ratio, verdict)
            )
    return Comparison(experiment, deltas, shapes, notes)


def compare_dirs(
    baseline_dir: PathLike,
    candidate_dir: PathLike,
    noise: float = DEFAULT_NOISE,
) -> Tuple[List[Comparison], List[str]]:
    """Compare every baseline artifact with its candidate counterpart.

    Returns ``(comparisons, notes)``; a baseline with no candidate
    artifact produces a note (the caller decides whether missing
    coverage gates).
    """
    baselines = read_artifact_dir(baseline_dir)
    if not baselines:
        raise ValueError(f"no BENCH_*.json artifacts in {baseline_dir}")
    candidates = read_artifact_dir(candidate_dir)
    comparisons: List[Comparison] = []
    notes: List[str] = []
    for experiment in sorted(baselines):
        candidate = candidates.get(experiment)
        if candidate is None:
            notes.append(f"no candidate artifact for {experiment}")
            continue
        comparisons.append(
            compare_artifacts(baselines[experiment], candidate, noise)
        )
    return comparisons, notes


def format_comparison(comparison: Comparison) -> str:
    """One experiment's comparison as aligned text tables."""
    from repro.analysis.report import format_table

    parts: List[str] = []
    if comparison.shapes:
        parts.append(
            format_table(
                ["shape", "kind", "verdict", "value", "detail"],
                [
                    [
                        shape.name,
                        shape.kind,
                        "ok" if shape.ok else "BROKEN",
                        None if shape.value is None
                        else round(float(shape.value), 3),
                        shape.detail,
                    ]
                    for shape in comparison.shapes
                ],
                title=f"[{comparison.experiment}] shape expectations",
            )
        )
    if comparison.deltas:
        parts.append(
            format_table(
                ["series", "baseline", "candidate", "ratio", "verdict"],
                [
                    [
                        delta.series,
                        round(delta.baseline, 6),
                        round(delta.candidate, 6),
                        round(delta.ratio, 2),
                        delta.verdict,
                    ]
                    for delta in comparison.deltas
                ],
                title=f"[{comparison.experiment}] series deltas "
                      f"({DELTA_STAT}, noise band)",
            )
        )
    for note in comparison.notes:
        parts.append(f"note: {note}")
    parts.append(f"[{comparison.experiment}] verdict: {comparison.verdict}")
    return "\n\n".join(parts)


def format_report(
    comparisons: Sequence[Comparison], notes: Sequence[str] = ()
) -> str:
    """The whole run's comparisons plus a one-line-per-exp summary."""
    from repro.analysis.report import format_table

    parts = [format_comparison(c) for c in comparisons]
    parts.append(
        format_table(
            ["experiment", "verdict", "shapes", "broken", "regressed"],
            [
                [
                    c.experiment,
                    c.verdict,
                    len(c.shapes),
                    sum(1 for s in c.shapes if not s.ok),
                    len(c.regressions),
                ]
                for c in comparisons
            ],
            title="perf gate summary",
        )
    )
    for note in notes:
        parts.append(f"note: {note}")
    return "\n\n".join(parts)
