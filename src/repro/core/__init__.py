"""Core: the paper's contribution.

Metric past temporal logic constraints, their reference semantics over
database histories, and the incremental bounded-history checker —
plus the naive baseline, safety analysis, space-bound analysis, and
the :class:`~repro.core.monitor.Monitor` façade.
"""

from repro.core import builder
from repro.core.adom import (
    ActiveDomainChecker,
    AdomHistoryEvaluator,
    evaluate_adom,
)
from repro.core.bounds import (
    FormulaProfile,
    clock_horizon,
    future_horizon,
    has_unbounded_operator,
    max_anchor_window,
    predicted_tuple_bound,
    profile,
)
from repro.core.checker import Constraint, IncrementalChecker
from repro.core.diagnose import diagnose
from repro.core.explain import describe_encoding, explain
from repro.core.future import DelayedChecker
from repro.core.formulas import (
    Aggregate,
    Always,
    And,
    Atom,
    Comparison,
    Const,
    Eventually,
    Exists,
    Forall,
    Formula,
    Hist,
    Iff,
    Implies,
    Next,
    Not,
    Once,
    Or,
    Prev,
    Since,
    Term,
    Until,
    Var,
)
from repro.core.intervals import Interval
from repro.core.monitor import Monitor
from repro.core.naive import NaiveChecker
from repro.core.normalize import normalize, rename_apart
from repro.core.optimize import optimize
from repro.core.parser import parse, parse_constraints
from repro.core.persist import load_checker, restore_checker, save_checker
from repro.core.safety import check_safe, is_safe
from repro.core.semantics import HistoryEvaluator
from repro.core.violations import RunReport, StepReport, Violation

__all__ = [
    "ActiveDomainChecker",
    "AdomHistoryEvaluator",
    "Aggregate",
    "Always",
    "And",
    "Atom",
    "Comparison",
    "Const",
    "Constraint",
    "DelayedChecker",
    "Eventually",
    "Exists",
    "Forall",
    "Formula",
    "FormulaProfile",
    "Hist",
    "HistoryEvaluator",
    "Iff",
    "Implies",
    "IncrementalChecker",
    "Interval",
    "Monitor",
    "NaiveChecker",
    "Next",
    "Not",
    "Once",
    "Or",
    "Prev",
    "RunReport",
    "Since",
    "StepReport",
    "Term",
    "Until",
    "Var",
    "Violation",
    "builder",
    "check_safe",
    "clock_horizon",
    "describe_encoding",
    "diagnose",
    "evaluate_adom",
    "explain",
    "future_horizon",
    "has_unbounded_operator",
    "is_safe",
    "load_checker",
    "max_anchor_window",
    "normalize",
    "optimize",
    "parse",
    "parse_constraints",
    "predicted_tuple_bound",
    "profile",
    "rename_apart",
    "restore_checker",
    "save_checker",
]
