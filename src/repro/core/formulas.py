"""Abstract syntax of Metric Past First-Order Temporal Logic (Past MFOTL).

This is the constraint language of the paper: first-order logic over
database relations, closed under the metric past operators ``PREV``,
``ONCE``, ``HIST`` and ``SINCE``.  Formulas are immutable trees with
structural equality; :func:`str` renders the concrete syntax accepted
by :mod:`repro.core.parser` (parse/print round-trips are tested).

Terms are variables or constants; the logic is function-free, as in the
paper.  ``FORALL``, ``->``, ``<->`` and ``HIST`` are convenience forms
eliminated by :mod:`repro.core.normalize` before compilation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Optional, Sequence, Tuple, Union

from repro.core.intervals import TRIVIAL, Interval
from repro.db.types import Value, is_value
from repro.errors import ReproError


class FormulaError(ReproError):
    """A formula or term is structurally ill-formed."""


# ----------------------------------------------------------------------
# terms
# ----------------------------------------------------------------------

class Term:
    """Base class of terms: variables and constants."""

    __slots__ = ()

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__,) + self._key())


class Var(Term):
    """A first-order variable, identified by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not name.replace("_", "a").isalnum():
            raise FormulaError(f"illegal variable name: {name!r}")
        self.name = name

    def _key(self) -> tuple:
        return (self.name,)

    def __repr__(self) -> str:
        return f"Var({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Const(Term):
    """A constant value (int, float, or string)."""

    __slots__ = ("value",)

    def __init__(self, value: Value):
        if not is_value(value):
            raise FormulaError(f"illegal constant: {value!r}")
        self.value = value

    def _key(self) -> tuple:
        return (type(self.value).__name__, self.value)

    def __repr__(self) -> str:
        return f"Const({self.value!r})"

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        return repr(self.value)


TermLike = Union[Term, Value]


def as_term(t: TermLike) -> Term:
    """Coerce a raw value into a :class:`Const`; pass terms through."""
    if isinstance(t, Term):
        return t
    return Const(t)


# ----------------------------------------------------------------------
# comparison operators
# ----------------------------------------------------------------------

COMPARISON_OPS: Dict[str, "callable"] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


# ----------------------------------------------------------------------
# formulas
# ----------------------------------------------------------------------

class Formula:
    """Base class of all formula nodes."""

    __slots__ = ("_fv",)

    def __init__(self) -> None:
        self._fv: Optional[FrozenSet[str]] = None

    # -- structure -----------------------------------------------------

    def children(self) -> Tuple["Formula", ...]:
        """Immediate subformulas."""
        raise NotImplementedError

    def _compute_free_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def _key(self) -> tuple:
        raise NotImplementedError

    @property
    def free_vars(self) -> FrozenSet[str]:
        """The formula's free variables (cached)."""
        if self._fv is None:
            self._fv = self._compute_free_vars()
        return self._fv

    @property
    def is_closed(self) -> bool:
        """Whether the formula has no free variables."""
        return not self.free_vars

    @property
    def is_temporal(self) -> bool:
        """Whether the root node is a temporal operator."""
        return isinstance(
            self,
            (Prev, Once, Hist, Since, Next, Eventually, Always, Until),
        )

    @property
    def is_future(self) -> bool:
        """Whether the root node is a *future* temporal operator."""
        return isinstance(self, (Next, Eventually, Always, Until))

    @property
    def has_future(self) -> bool:
        """Whether any subformula uses a future temporal operator."""
        return any(f.is_future for f in self.walk())

    # -- traversal -----------------------------------------------------

    def walk(self) -> Iterator["Formula"]:
        """Post-order traversal (children before parents)."""
        for child in self.children():
            yield from child.walk()
        yield self

    def subformulas(self) -> Iterator["Formula"]:
        """Alias of :meth:`walk` (post-order subformula enumeration)."""
        return self.walk()

    def temporal_subformulas(self) -> Iterator["Formula"]:
        """Temporal subformulas in bottom-up (post-)order.

        The incremental checker updates auxiliary state in exactly this
        order, so inner operators' virtual tables exist before outer
        operators read them.
        """
        for f in self.walk():
            if f.is_temporal:
                yield f

    @property
    def size(self) -> int:
        """Number of AST nodes."""
        return sum(1 for _ in self.walk())

    @property
    def temporal_depth(self) -> int:
        """Maximum nesting depth of temporal operators."""
        depth = max(
            (c.temporal_depth for c in self.children()), default=0
        )
        return depth + (1 if self.is_temporal else 0)

    def relations_used(self) -> FrozenSet[str]:
        """Names of database relations the formula refers to."""
        return frozenset(
            f.relation for f in self.walk() if isinstance(f, Atom)
        )

    # -- operator sugar (used by the builder DSL) -----------------------

    def __and__(self, other: "Formula") -> "Formula":
        """``f & g`` builds ``And(f, g)``."""
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        """``f | g`` builds ``Or(f, g)``."""
        return Or(self, other)

    def __invert__(self) -> "Formula":
        """``~f`` builds ``Not(f)``."""
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        """``f >> g`` builds ``Implies(f, g)``."""
        return Implies(self, other)

    # -- equality ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__,) + self._key())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"


class Atom(Formula):
    """A relational atom ``r(t1, ..., tk)``."""

    __slots__ = ("relation", "terms")

    def __init__(self, relation: str, terms: Sequence[TermLike] = ()):
        super().__init__()
        if not relation or not relation.replace("_", "a").isalnum():
            raise FormulaError(f"illegal relation name: {relation!r}")
        self.relation = relation
        self.terms: Tuple[Term, ...] = tuple(as_term(t) for t in terms)

    def children(self) -> Tuple[Formula, ...]:
        return ()

    def _compute_free_vars(self) -> FrozenSet[str]:
        return frozenset(
            t.name for t in self.terms if isinstance(t, Var)
        )

    def _key(self) -> tuple:
        return (self.relation, self.terms)

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({args})"


class Comparison(Formula):
    """A comparison atom ``t1 op t2`` with ``op`` one of = != < <= > >=."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left: TermLike, op: str, right: TermLike):
        super().__init__()
        if op not in COMPARISON_OPS:
            raise FormulaError(f"unknown comparison operator: {op!r}")
        self.left = as_term(left)
        self.op = op
        self.right = as_term(right)

    def children(self) -> Tuple[Formula, ...]:
        return ()

    def _compute_free_vars(self) -> FrozenSet[str]:
        return frozenset(
            t.name for t in (self.left, self.right) if isinstance(t, Var)
        )

    def _key(self) -> tuple:
        return (self.left, self.op, self.right)

    def evaluate(self, left_value: Value, right_value: Value) -> bool:
        """Apply the operator to concrete values.

        Order comparisons across incompatible types raise
        ``FormulaError`` rather than inheriting Python's ``TypeError``.
        """
        try:
            return bool(COMPARISON_OPS[self.op](left_value, right_value))
        except TypeError:
            raise FormulaError(
                f"cannot compare {left_value!r} {self.op} {right_value!r}"
            ) from None

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


class Not(Formula):
    """Negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula):
        super().__init__()
        self.operand = operand

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def _compute_free_vars(self) -> FrozenSet[str]:
        return self.operand.free_vars

    def _key(self) -> tuple:
        return (self.operand,)

    def __str__(self) -> str:
        return f"NOT {self.operand}"


class _Nary(Formula):
    """Shared implementation of the n-ary connectives AND / OR."""

    __slots__ = ("operands",)
    _word = "?"

    def __init__(self, *operands: Formula):
        super().__init__()
        if len(operands) < 2:
            raise FormulaError(
                f"{type(self).__name__} needs at least two operands"
            )
        self.operands: Tuple[Formula, ...] = tuple(operands)

    def children(self) -> Tuple[Formula, ...]:
        return self.operands

    def _compute_free_vars(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for f in self.operands:
            out |= f.free_vars
        return out

    def _key(self) -> tuple:
        return (self.operands,)

    def __str__(self) -> str:
        inner = f" {self._word} ".join(str(f) for f in self.operands)
        return f"({inner})"


class And(_Nary):
    """N-ary conjunction."""

    __slots__ = ()
    _word = "AND"


class Or(_Nary):
    """N-ary disjunction."""

    __slots__ = ()
    _word = "OR"


class Implies(Formula):
    """Implication (sugar; eliminated by normalisation)."""

    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: Formula, consequent: Formula):
        super().__init__()
        self.antecedent = antecedent
        self.consequent = consequent

    def children(self) -> Tuple[Formula, ...]:
        return (self.antecedent, self.consequent)

    def _compute_free_vars(self) -> FrozenSet[str]:
        return self.antecedent.free_vars | self.consequent.free_vars

    def _key(self) -> tuple:
        return (self.antecedent, self.consequent)

    def __str__(self) -> str:
        return f"({self.antecedent} -> {self.consequent})"


class Iff(Formula):
    """Bi-implication (sugar; eliminated by normalisation)."""

    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula):
        super().__init__()
        self.left = left
        self.right = right

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)

    def _compute_free_vars(self) -> FrozenSet[str]:
        return self.left.free_vars | self.right.free_vars

    def _key(self) -> tuple:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} <-> {self.right})"


class _Quantifier(Formula):
    """Shared implementation of EXISTS / FORALL."""

    __slots__ = ("variables", "operand")
    _word = "?"

    def __init__(self, variables: Sequence[str], operand: Formula):
        super().__init__()
        names = tuple(variables)
        if not names:
            raise FormulaError(
                f"{type(self).__name__} needs at least one variable"
            )
        if len(set(names)) != len(names):
            raise FormulaError(f"duplicate quantified variables: {names}")
        for n in names:
            Var(n)  # validates the name
        self.variables: Tuple[str, ...] = names
        self.operand = operand

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def _compute_free_vars(self) -> FrozenSet[str]:
        return self.operand.free_vars - frozenset(self.variables)

    def _key(self) -> tuple:
        return (self.variables, self.operand)

    def __str__(self) -> str:
        # always parenthesised: quantifier scope is maximal in the
        # grammar, so a bare rendering inside AND/OR/SINCE would
        # re-parse with the wrong scope
        vs = ", ".join(self.variables)
        return f"({self._word} {vs}. {self.operand})"


class Exists(_Quantifier):
    """Existential quantification over one or more variables."""

    __slots__ = ()
    _word = "EXISTS"


class Forall(_Quantifier):
    """Universal quantification (sugar; eliminated by normalisation)."""

    __slots__ = ()
    _word = "FORALL"


class _Unary_Temporal(Formula):
    """Shared implementation of PREV / ONCE / HIST."""

    __slots__ = ("interval", "operand")
    _word = "?"

    def __init__(self, operand: Formula, interval: Optional[Interval] = None):
        super().__init__()
        self.interval = interval if interval is not None else TRIVIAL
        self.operand = operand

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def _compute_free_vars(self) -> FrozenSet[str]:
        return self.operand.free_vars

    def _key(self) -> tuple:
        return (self.interval, self.operand)

    def __str__(self) -> str:
        suffix = "" if self.interval.is_trivial else str(self.interval)
        return f"{self._word}{suffix} {self.operand}"


class Prev(_Unary_Temporal):
    """``PREV[I] f``: f held at the previous state, one transition ago,
    with the clock gap in ``I``."""

    __slots__ = ()
    _word = "PREV"


class Once(_Unary_Temporal):
    """``ONCE[I] f``: f held at some past state (possibly now) whose
    clock distance from now lies in ``I``."""

    __slots__ = ()
    _word = "ONCE"


class Hist(_Unary_Temporal):
    """``HIST[I] f``: f held at *every* past state whose clock distance
    from now lies in ``I`` (sugar: ``NOT ONCE[I] NOT f``)."""

    __slots__ = ()
    _word = "HIST"


class Next(_Unary_Temporal):
    """``NEXT[I] f``: f will hold at the next state, one transition
    ahead, with the clock gap in ``I`` (future mirror of ``PREV``).

    Future operators need *bounded* intervals to be monitorable with
    finite delay; the safety check enforces this."""

    __slots__ = ()
    _word = "NEXT"


class Eventually(_Unary_Temporal):
    """``EVENTUALLY[I] f``: f will hold at some state (possibly now)
    whose clock distance from now lies in ``I`` (mirror of ``ONCE``)."""

    __slots__ = ()
    _word = "EVENTUALLY"


class Always(_Unary_Temporal):
    """``ALWAYS[I] f``: f will hold at *every* state whose clock
    distance from now lies in ``I`` (sugar:
    ``NOT EVENTUALLY[I] NOT f``; mirror of ``HIST``)."""

    __slots__ = ()
    _word = "ALWAYS"


class Until(Formula):
    """``f UNTIL[I] g``: some coming state ``j`` (clock distance in
    ``I``) will satisfy ``g``, and every state from now up to (but not
    including) ``j`` satisfies ``f`` (mirror of ``SINCE``)."""

    __slots__ = ("interval", "left", "right")

    def __init__(
        self,
        left: Formula,
        right: Formula,
        interval: Optional[Interval] = None,
    ):
        super().__init__()
        self.interval = interval if interval is not None else TRIVIAL
        self.left = left
        self.right = right

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)

    def _compute_free_vars(self) -> FrozenSet[str]:
        return self.left.free_vars | self.right.free_vars

    def _key(self) -> tuple:
        return (self.interval, self.left, self.right)

    def __str__(self) -> str:
        suffix = "" if self.interval.is_trivial else str(self.interval)
        return f"({self.left} UNTIL{suffix} {self.right})"


class Since(Formula):
    """``f SINCE[I] g``: some past state ``j`` (clock distance in ``I``)
    satisfied ``g``, and every state strictly after ``j`` up to now
    satisfied ``f``."""

    __slots__ = ("interval", "left", "right")

    def __init__(
        self,
        left: Formula,
        right: Formula,
        interval: Optional[Interval] = None,
    ):
        super().__init__()
        self.interval = interval if interval is not None else TRIVIAL
        self.left = left
        self.right = right

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)

    def _compute_free_vars(self) -> FrozenSet[str]:
        return self.left.free_vars | self.right.free_vars

    def _key(self) -> tuple:
        return (self.interval, self.left, self.right)

    def __str__(self) -> str:
        suffix = "" if self.interval.is_trivial else str(self.interval)
        return f"({self.left} SINCE{suffix} {self.right})"


#: The aggregation operators.
AGGREGATE_OPS = ("CNT", "SUM", "MIN", "MAX", "AVG")


class Aggregate(Formula):
    """A grouped aggregation atom ``result = OP(y1, ..., yk; body)``.

    Within each group — a valuation of ``fv(body)`` minus the ``over``
    variables — the distinct bindings of the ``over`` variables are
    aggregated: ``CNT`` counts them; ``SUM``/``MIN``/``MAX``/``AVG``
    fold the *first* over-variable's values (list a distinguishing key
    variable second to keep equal measures apart, e.g.
    ``total = SUM(amount, o; order(c, o, amount))``).

    ``result`` receives the aggregate value and is a free variable of
    the formula; the ``over`` variables are bound (closed off) like
    existential quantifiers; the remaining body variables are the group
    key and stay free.  Groups exist only for valuations with at least
    one satisfying binding — "count is zero" is expressed by negating
    the group's existence, not by a 0-valued row.
    """

    __slots__ = ("op", "result", "over", "body")

    def __init__(
        self,
        op: str,
        result: str,
        over: Sequence[str],
        body: "Formula",
    ):
        super().__init__()
        if op not in AGGREGATE_OPS:
            raise FormulaError(f"unknown aggregate operator: {op!r}")
        Var(result)  # validates the name
        names = tuple(over)
        if not names:
            raise FormulaError("aggregate needs at least one variable")
        if len(set(names)) != len(names):
            raise FormulaError(f"duplicate aggregate variables: {names}")
        for n in names:
            Var(n)
        if result in names:
            raise FormulaError(
                f"result variable {result!r} cannot also be aggregated over"
            )
        self.op = op
        self.result = result
        self.over: Tuple[str, ...] = names
        self.body = body

    def children(self) -> Tuple["Formula", ...]:
        return (self.body,)

    @property
    def group_vars(self) -> FrozenSet[str]:
        """The grouping variables: ``fv(body)`` minus ``over``."""
        return self.body.free_vars - frozenset(self.over)

    def _compute_free_vars(self) -> FrozenSet[str]:
        return self.group_vars | {self.result}

    def _key(self) -> tuple:
        return (self.op, self.result, self.over, self.body)

    def __str__(self) -> str:
        vs = ", ".join(self.over)
        return f"{self.result} = {self.op}({vs}; {self.body})"


#: Truth constants, encoded as comparisons on constants so that every
#: evaluator handles them without special cases.
TRUE = Comparison(Const(0), "=", Const(0))
FALSE = Comparison(Const(0), "=", Const(1))
