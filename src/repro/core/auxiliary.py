"""Auxiliary relations: the paper's bounded history encoding.

For every temporal subformula the incremental checker maintains one
:class:`AuxiliaryState` summarising exactly the part of the past that
subformula can still refer to:

``PREV[I] f``
    the satisfying valuations of ``f`` at the previous state, plus the
    previous timestamp — one state of lookback, by definition.

``ONCE[I] f``
    a map *valuation → anchor timestamps* at which ``f`` held for that
    valuation.  With a finite upper bound ``b``, anchors older than
    ``b`` clock units are pruned — they can never fall inside the
    window again.  With ``b = ∞`` only the *minimal* anchor timestamp
    matters (if any anchor is old enough, the oldest one is), so one
    integer per valuation suffices.

``f SINCE[I] g``
    a map *valuation → surviving anchor timestamps*: anchors are
    created when ``g`` holds and *survive* a new state only if ``f``
    holds there for that valuation.  Pruning is as for ``ONCE``; with
    ``b = ∞`` the minimum is again enough because all anchors of one
    valuation survive or die together.

In every case, satisfaction *now* at time ``t`` reduces to the test
``min(anchors) <= t - low`` (all stored anchors already satisfy
``t - ts <= high`` thanks to pruning), and the state carried across
steps depends only on the data and the metric horizon — never on the
history length.  That is the paper's central claim, and
:meth:`AuxiliaryState.tuple_count` is how the experiments measure it.
"""

from __future__ import annotations

from bisect import bisect_right
from sys import getsizeof
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.formulas import Formula, Once, Prev, Since
from repro.core.intervals import Interval
from repro.db.algebra import Table
from repro.db.types import Row
from repro.errors import MonitorError
from repro.temporal.clock import Timestamp

#: Evaluates a child formula at the current state, optionally relative
#: to a context table; supplied by the checker during an update step.
EvalFn = Callable[..., Table]


def _header(formula: Formula) -> Tuple[str, ...]:
    """Canonical column order for a formula's satisfaction table."""
    return tuple(sorted(formula.free_vars))


def deep_size(obj) -> int:
    """Approximate deep byte size of a container of plain values.

    Walks dicts, lists, tuples, sets, and frozensets (the shapes the
    auxiliary encodings are built from), summing ``sys.getsizeof`` over
    every distinct object reached.  Shared objects are counted once, so
    the figure is a footprint, not a sum of views.
    """
    seen = set()
    stack = [obj]
    total = 0
    while stack:
        item = stack.pop()
        if id(item) in seen:
            continue
        seen.add(id(item))
        total += getsizeof(item)
        if isinstance(item, dict):
            stack.extend(item.keys())
            stack.extend(item.values())
        elif isinstance(item, (list, tuple, set, frozenset)):
            stack.extend(item)
    return total


class AuxiliaryState:
    """Base class of per-temporal-subformula auxiliary state."""

    #: the temporal node this state encodes
    formula: Formula

    def advance(self, time: Timestamp, evaluate_now: EvalFn) -> Table:
        """Process one new state; return the node's virtual table.

        Args:
            time: the new state's timestamp (strictly increasing).
            evaluate_now: evaluates kernel formulas at the *new* state
                (deeper temporal nodes resolve to their new virtual
                tables); accepts an optional context table.

        Returns:
            The satisfying valuations of the temporal node at ``time``.
        """
        raise NotImplementedError

    def tuple_count(self) -> int:
        """Stored (valuation, timestamp) entries — the space measure."""
        raise NotImplementedError

    def valuation_count(self) -> int:
        """Distinct stored valuations."""
        raise NotImplementedError

    def oldest_anchor(self) -> Optional[Timestamp]:
        """Timestamp of the oldest retained anchor, or ``None``."""
        raise NotImplementedError

    def payload_bytes(self) -> int:
        """Approximate deep byte size of the stored encoding."""
        raise NotImplementedError

    def iter_valuations(self) -> Iterator[Tuple[Row, int]]:
        """Yield ``(valuation, stored-entry count)`` pairs."""
        raise NotImplementedError

    def state_profile(self, deep: bool = True) -> Dict[str, object]:
        """Uniform accounting snapshot of this auxiliary state.

        This is the per-node unit of the engine-level ``state_profile``
        protocol (see :mod:`repro.core.statespace`).  Keys are stable:

        - ``kind``: the encoding class name;
        - ``tuples`` / ``valuations``: the space measures;
        - ``bytes``: approximate deep size, or ``None`` when ``deep``
          is false (byte walking is the expensive part, so samplers
          can skip it on the hot path);
        - ``oldest``: oldest retained anchor timestamp (staleness
          anchor), or ``None`` when nothing is stored.
        """
        return {
            "kind": type(self).__name__,
            "tuples": self.tuple_count(),
            "valuations": self.valuation_count(),
            "bytes": self.payload_bytes() if deep else None,
            "oldest": self.oldest_anchor(),
        }


class PrevState(AuxiliaryState):
    """Auxiliary state for ``PREV[I] f``."""

    __slots__ = ("formula", "_last_time", "_last_table")

    def __init__(self, formula: Prev):
        self.formula = formula
        self._last_time: Optional[Timestamp] = None
        self._last_table: Table = Table.empty(_header(formula))

    def advance(self, time: Timestamp, evaluate_now: EvalFn) -> Table:
        if (
            self._last_time is not None
            and self.formula.interval.contains(time - self._last_time)
        ):
            virtual = self._last_table
        else:
            virtual = Table.empty(_header(self.formula))
        # the *new* state's operand table becomes next step's answer
        self._last_table = evaluate_now(self.formula.operand).project(
            _header(self.formula)
        )
        self._last_time = time
        return virtual

    def tuple_count(self) -> int:
        return len(self._last_table)

    def valuation_count(self) -> int:
        return len(self._last_table)

    def oldest_anchor(self) -> Optional[Timestamp]:
        # one state of lookback: the previous timestamp, if any rows
        # are retained for it
        if self._last_table.is_empty:
            return None
        return self._last_time

    def payload_bytes(self) -> int:
        return deep_size(self._last_table.rows)

    def iter_valuations(self) -> Iterator[Tuple[Row, int]]:
        for row in self._last_table.rows:
            yield row, 1


class _AnchorMap:
    """Shared valuation → anchor-timestamps store for ONCE and SINCE.

    Anchors arrive in non-decreasing time order, so per-valuation lists
    stay sorted by construction.  ``bounded`` selects between the two
    encodings of the paper: window pruning (finite upper bound) and
    min-timestamp collapse (infinite upper bound).
    """

    __slots__ = ("interval", "anchors", "collapse_unbounded")

    def __init__(self, interval: Interval, collapse_unbounded: bool = True):
        self.interval = interval
        self.anchors: Dict[Row, List[Timestamp]] = {}
        #: ablation switch: with False, unbounded intervals keep every
        #: anchor timestamp instead of only the minimum — semantics are
        #: unchanged (satisfaction still tests the minimum) but space
        #: grows with the history, which is exactly what the E9
        #: ablation experiment demonstrates the collapse prevents.
        self.collapse_unbounded = collapse_unbounded

    def add(self, valuation: Row, time: Timestamp) -> None:
        """Record that the anchor formula held for ``valuation`` now."""
        existing = self.anchors.get(valuation)
        if existing is None:
            self.anchors[valuation] = [time]
        elif self.interval.is_bounded or not self.collapse_unbounded:
            if existing[-1] != time:
                existing.append(time)
        # unbounded + collapse: only the minimum matters, and
        # existing[0] <= time already

    def prune(self, time: Timestamp) -> None:
        """Drop anchors that can never satisfy the window again."""
        if not self.interval.is_bounded:
            return
        cutoff = time - self.interval.high  # keep ts >= cutoff
        stale = []
        for valuation, times in self.anchors.items():
            if times[0] >= cutoff:
                continue
            kept = times[bisect_right(times, cutoff - 1):]
            if kept:
                self.anchors[valuation] = kept
            else:
                stale.append(valuation)
        for valuation in stale:
            del self.anchors[valuation]

    def restrict(self, survivors: "set[Row]") -> None:
        """Keep only the anchors of surviving valuations (SINCE)."""
        self.anchors = {
            v: ts for v, ts in self.anchors.items() if v in survivors
        }

    def satisfied_rows(self, time: Timestamp) -> List[Row]:
        """Valuations with an anchor inside the window at ``time``."""
        threshold = time - self.interval.low  # need some ts <= threshold
        return [
            v for v, ts in self.anchors.items() if ts[0] <= threshold
        ]

    def tuple_count(self) -> int:
        return sum(len(ts) for ts in self.anchors.values())

    def valuation_count(self) -> int:
        return len(self.anchors)

    def oldest_anchor(self) -> Optional[Timestamp]:
        # per-valuation lists are sorted, so the head of each is its
        # minimum; the global oldest is the minimum over heads
        if not self.anchors:
            return None
        return min(ts[0] for ts in self.anchors.values())

    def payload_bytes(self) -> int:
        return deep_size(self.anchors)

    def iter_valuations(self) -> Iterator[Tuple[Row, int]]:
        for valuation, times in self.anchors.items():
            yield valuation, len(times)


class OnceState(AuxiliaryState):
    """Auxiliary state for ``ONCE[I] f``."""

    __slots__ = ("formula", "_columns", "_anchors")

    def __init__(self, formula: Once, collapse_unbounded: bool = True):
        self.formula = formula
        self._columns = _header(formula)
        self._anchors = _AnchorMap(formula.interval, collapse_unbounded)

    def advance(self, time: Timestamp, evaluate_now: EvalFn) -> Table:
        now_table = evaluate_now(self.formula.operand).project(self._columns)
        for row in now_table.rows:
            self._anchors.add(row, time)
        self._anchors.prune(time)
        return Table(self._columns, self._anchors.satisfied_rows(time))

    def tuple_count(self) -> int:
        return self._anchors.tuple_count()

    def valuation_count(self) -> int:
        return self._anchors.valuation_count()

    def oldest_anchor(self) -> Optional[Timestamp]:
        return self._anchors.oldest_anchor()

    def payload_bytes(self) -> int:
        return self._anchors.payload_bytes()

    def iter_valuations(self) -> Iterator[Tuple[Row, int]]:
        return self._anchors.iter_valuations()


class SinceState(AuxiliaryState):
    """Auxiliary state for ``f SINCE[I] g``."""

    __slots__ = ("formula", "_columns", "_anchors")

    def __init__(self, formula: Since, collapse_unbounded: bool = True):
        self.formula = formula
        self._columns = _header(formula)  # == sorted fv(g), as fv(f) ⊆ fv(g)
        self._anchors = _AnchorMap(formula.interval, collapse_unbounded)

    def advance(self, time: Timestamp, evaluate_now: EvalFn) -> Table:
        # 1. survival: existing anchors need the left operand to hold
        #    for their valuation at the new state
        if self._anchors.anchors:
            candidates = Table(self._columns, self._anchors.anchors.keys())
            survivors = evaluate_now(self.formula.left, candidates)
            self._anchors.restrict(set(survivors._aligned_rows(self._columns)))
        # 2. new anchors from the right operand (no survival test:
        #    SINCE requires the left operand strictly *after* the anchor)
        now_right = evaluate_now(self.formula.right).project(self._columns)
        for row in now_right.rows:
            self._anchors.add(row, time)
        # 3. metric pruning
        self._anchors.prune(time)
        return Table(self._columns, self._anchors.satisfied_rows(time))

    def tuple_count(self) -> int:
        return self._anchors.tuple_count()

    def valuation_count(self) -> int:
        return self._anchors.valuation_count()

    def oldest_anchor(self) -> Optional[Timestamp]:
        return self._anchors.oldest_anchor()

    def payload_bytes(self) -> int:
        return self._anchors.payload_bytes()

    def iter_valuations(self) -> Iterator[Tuple[Row, int]]:
        return self._anchors.iter_valuations()


def make_auxiliary(
    formula: Formula, collapse_unbounded: bool = True
) -> AuxiliaryState:
    """Create the auxiliary state appropriate for a temporal node.

    Args:
        formula: the temporal node.
        collapse_unbounded: keep only the minimal anchor timestamp for
            unbounded intervals (the paper's encoding); ``False`` is an
            ablation that keeps all anchors.
    """
    if isinstance(formula, Prev):
        return PrevState(formula)
    if isinstance(formula, Once):
        return OnceState(formula, collapse_unbounded)
    if isinstance(formula, Since):
        return SinceState(formula, collapse_unbounded)
    raise MonitorError(
        f"not a temporal operator: {type(formula).__name__}"
    )
