"""Space-bound analysis of constraints (the paper's boundedness claims).

For a constraint in the supported fragment, the auxiliary space of the
incremental checker is bounded by a function of the *data* (how many
valuations satisfy the temporal operands) and the constraint's *metric
horizon* — never of the history length.  This module computes the
static side of that bound:

* :func:`clock_horizon` — how far back, in clock units, the formula can
  ever "see".  Metric windows compose additively under nesting:
  ``ONCE[0,5] ONCE[0,7] p`` inspects up to 12 clock units of the past.
  ``None`` means unbounded (some operator has an infinite window — the
  encoding is still finite via the min-timestamp collapse, but the
  horizon is not a constant).

* :func:`max_anchor_window` — the largest finite upper bound among the
  formula's own temporal operators: each ``ONCE``/``SINCE`` node stores
  at most ``window + 1`` timestamps per valuation.

* :func:`profile` — a :class:`FormulaProfile` bundling these with node
  counts, used by the experiment harness to print predicted-vs-measured
  space tables.
"""

from __future__ import annotations

from typing import Mapping, NamedTuple, Optional

from repro.core.formulas import (
    Atom,
    Eventually,
    Formula,
    Next,
    Once,
    Prev,
    Since,
    Until,
)

#: Default per-relation cardinality hint for :func:`estimate_valuations`
#: when neither an explicit hint nor schema information narrows it.
DEFAULT_RELATION_SIZE = 64


def _add(a: Optional[int], b: Optional[int]) -> Optional[int]:
    """Addition over horizons where ``None`` means infinity."""
    if a is None or b is None:
        return None
    return a + b


def _max(a: Optional[int], b: Optional[int]) -> Optional[int]:
    """Maximum over horizons where ``None`` means infinity."""
    if a is None or b is None:
        return None
    return max(a, b)


def clock_horizon(formula: Formula) -> Optional[int]:
    """Maximum clock lookback of ``formula`` (None = unbounded).

    A checker for the formula never needs information about states more
    than this many clock units old (``PREV`` additionally needs exactly
    one state of lookback regardless of clock distance).
    """
    if isinstance(formula, Prev):
        own = formula.interval.high  # None = unbounded gap allowed
        return _add(own, clock_horizon(formula.operand))
    if isinstance(formula, Once):
        return _add(
            formula.interval.high, clock_horizon(formula.operand)
        )
    if isinstance(formula, Since):
        children = _max(
            clock_horizon(formula.left), clock_horizon(formula.right)
        )
        return _add(formula.interval.high, children)
    result: Optional[int] = 0
    for child in formula.children():
        result = _max(result, clock_horizon(child))
    return result


def future_horizon(formula: Formula) -> Optional[int]:
    """Maximum clock lookahead of ``formula`` (None = unbounded).

    The delayed checker can emit the verdict for a state once the
    clock has advanced this far beyond it.  Pure-past formulas have
    horizon 0; future windows compound additively under nesting, and
    an unbounded future operator (rejected by the safety check) makes
    the horizon None.
    """
    if isinstance(formula, (Next, Eventually)):
        return _add(formula.interval.high, future_horizon(formula.operand))
    if isinstance(formula, Until):
        children = _max(
            future_horizon(formula.left), future_horizon(formula.right)
        )
        return _add(formula.interval.high, children)
    result: Optional[int] = 0
    for child in formula.children():
        result = _max(result, future_horizon(child))
    return result


def max_anchor_window(formula: Formula) -> int:
    """Largest finite interval upper bound among temporal subformulas.

    Per valuation, a bounded ``ONCE``/``SINCE`` auxiliary relation holds
    at most this many + 1 timestamps (timestamps are integers, so a
    window of width ``w`` contains at most ``w + 1`` distinct values).
    """
    best = 0
    for node in formula.temporal_subformulas():
        if isinstance(node, (Once, Since)) and node.interval.is_bounded:
            best = max(best, node.interval.high)  # type: ignore[arg-type]
    return best


def has_unbounded_operator(formula: Formula) -> bool:
    """Whether any ``ONCE``/``SINCE`` node has an infinite window.

    Such nodes use the min-timestamp encoding: exactly one timestamp
    per valuation, never pruned (valuations themselves may still be
    dropped when a ``SINCE`` survival test fails).
    """
    return any(
        isinstance(node, (Once, Since)) and not node.interval.is_bounded
        for node in formula.temporal_subformulas()
    )


class FormulaProfile(NamedTuple):
    """Static space-relevant characteristics of one formula."""

    temporal_nodes: int
    prev_nodes: int
    once_nodes: int
    since_nodes: int
    temporal_depth: int
    horizon: Optional[int]
    max_window: int
    unbounded_nodes: int

    def describe(self) -> str:
        """One-line human-readable summary."""
        horizon = "unbounded" if self.horizon is None else str(self.horizon)
        return (
            f"{self.temporal_nodes} temporal node(s) "
            f"(prev={self.prev_nodes}, once={self.once_nodes}, "
            f"since={self.since_nodes}), depth {self.temporal_depth}, "
            f"clock horizon {horizon}, max window {self.max_window}, "
            f"{self.unbounded_nodes} unbounded"
        )


def profile(formula: Formula) -> FormulaProfile:
    """Compute the static space profile of a kernel formula."""
    nodes = list(formula.temporal_subformulas())
    return FormulaProfile(
        temporal_nodes=len(nodes),
        prev_nodes=sum(1 for n in nodes if isinstance(n, Prev)),
        once_nodes=sum(1 for n in nodes if isinstance(n, Once)),
        since_nodes=sum(1 for n in nodes if isinstance(n, Since)),
        temporal_depth=formula.temporal_depth,
        horizon=clock_horizon(formula),
        max_window=max_anchor_window(formula),
        unbounded_nodes=sum(
            1
            for n in nodes
            if isinstance(n, (Once, Since)) and not n.interval.is_bounded
        ),
    )


def node_tuple_bound(node: Formula, valuations: int) -> int:
    """Analytic tuple bound for one temporal node's auxiliary state.

    Given that the node currently stores ``valuations`` distinct
    valuations: a bounded ``ONCE``/``SINCE`` keeps at most ``window + 1``
    anchor timestamps per valuation; an unbounded one (min-timestamp
    collapse) and ``PREV`` keep exactly one entry per valuation.  This
    is the per-step conformance bound the state observatory
    (:mod:`repro.obs.statewatch`) checks measured state against.
    """
    if isinstance(node, (Once, Since)) and node.interval.is_bounded:
        return valuations * (node.interval.high + 1)  # type: ignore[operator]
    return valuations


def predicted_tuple_bound(
    formula: Formula, valuations_per_node: int
) -> Optional[int]:
    """A coarse upper bound on auxiliary tuples for the whole formula.

    Assumes at most ``valuations_per_node`` distinct valuations per
    temporal node (data-dependent); each node contributes its
    :func:`node_tuple_bound`.
    """
    total = 0
    for node in formula.temporal_subformulas():
        if isinstance(node, (Prev, Once, Since)):
            total += node_tuple_bound(node, valuations_per_node)
    return total


def estimate_valuations(
    formula: Formula,
    relation_sizes: Optional[Mapping[str, int]] = None,
    default_relation_size: int = DEFAULT_RELATION_SIZE,
) -> int:
    """Static estimate of how many valuations can satisfy ``formula``.

    The estimate is the cross-product bound over the formula's positive
    atoms — ``|R1| × |R2| × ...`` with each ``|R|`` taken from
    ``relation_sizes`` (a per-relation cardinality hint, e.g. expected
    active-domain sizes) or ``default_relation_size``.  Joins can only
    shrink a cross product and projection never grows it, so this is a
    sound worst case for the satisfying-valuation count; a formula with
    no atoms (pure comparisons) estimates to 1.  Used by the
    cross-constraint planner to turn :func:`node_tuple_bound` into
    predicted state sizes.
    """
    sizes = relation_sizes or {}
    estimate = 1
    for node in formula.walk():
        if isinstance(node, Atom):
            estimate *= max(1, int(sizes.get(
                node.relation, default_relation_size
            )))
    return estimate


class NodeCost(NamedTuple):
    """Static cost/memory model of one temporal node's auxiliary state.

    ``valuations`` is the :func:`estimate_valuations` figure for the
    node's anchor operand; ``tuple_bound`` feeds it through
    :func:`node_tuple_bound` (window × valuations for bounded
    ``ONCE``/``SINCE``); ``evals_per_step`` is the number of operand
    evaluations one update step costs (the quantity shared auxiliary
    maintenance saves); ``bounded`` is False for infinite windows
    (min-timestamp collapse: space stays finite but the window does
    not expire).
    """

    valuations: int
    tuple_bound: int
    evals_per_step: int
    bounded: bool


def node_cost(
    node: Formula,
    relation_sizes: Optional[Mapping[str, int]] = None,
    default_relation_size: int = DEFAULT_RELATION_SIZE,
) -> NodeCost:
    """The :class:`NodeCost` model of one temporal node.

    Past operators follow the auxiliary-state encodings exactly
    (:func:`node_tuple_bound`); future operators (handled by the
    delayed checker's obligation buffer) are modelled symmetrically —
    a bounded window buffers up to ``window + 1`` entries per
    valuation.
    """
    if not node.is_temporal:
        raise TypeError(
            f"not a temporal operator: {type(node).__name__}"
        )
    valuations = estimate_valuations(
        node, relation_sizes, default_relation_size
    )
    windowed = (Once, Since, Eventually, Until)
    bounded = not (
        isinstance(node, windowed) and not node.interval.is_bounded
    )
    if isinstance(node, windowed) and node.interval.is_bounded:
        bound = valuations * (node.interval.high + 1)  # type: ignore[operator]
    else:
        bound = valuations
    # binary operators evaluate both operands each step
    evals = 2 if isinstance(node, (Since, Until)) else 1
    return NodeCost(
        valuations=valuations,
        tuple_bound=bound,
        evals_per_step=evals,
        bounded=bounded,
    )
