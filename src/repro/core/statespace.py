"""Unified auxiliary-state accounting: the ``state_profile`` protocol.

Before this module each engine grew its own ad-hoc space hooks (three
divergent ``aux_tuple_count`` implementations, a ``stored_tuples``, a
``_plan_tuples``), which made cross-engine space claims — the paper's
central claims — hard to audit.  Every checking engine now answers the
same accounting questions through one documented protocol:

``aux_tuple_count() -> int``
    Stored (valuation, timestamp) entries across all auxiliary
    relations — the paper's space measure.  Engines without auxiliary
    relations (the naive checkers) report 0 here and expose their real
    footprint through engine-specific sections of ``state_profile``.

``aux_valuation_count() -> int``
    Distinct stored valuations across all auxiliary relations.

``aux_profile() -> Dict[str, int]``
    Per-temporal-subformula stored-entry counts.  Keys are **stable**:
    always ``str(node)`` of the temporal subformula, identical across
    engines monitoring the same constraints.

``aux_nodes() -> List[Formula]``
    The temporal subformulas with attributable auxiliary state, in
    registration (bottom-up) order.

``iter_state_valuations() -> Iterator[(label, valuation, weight)]``
    Every stored valuation with its entry count, labelled by node —
    the feed for heavy-hitter skew sketches.

``state_profile(deep=True) -> Dict``
    The full accounting snapshot::

        {
          "engine": <engine_label>,
          "nodes": {
            "<str(node)>": {
              "kind": ..., "tuples": ..., "valuations": ...,
              "bytes": ...,      # None when deep=False
              "oldest": ...,     # oldest retained anchor timestamp
              "constraints": [names sharing this node],
            }, ...
          },
          "total": {"tuples": ..., "valuations": ..., "bytes": ...},
          "space_tuples": <the uniform space hook value>,
        }

    plus engine-specific sections: ``"buffer"`` (delayed checker's
    verdict-delay window), ``"history"`` (naive checkers), ``"domain"``
    (active-domain checker).  ``deep=False`` skips the byte walk (the
    only expensive part), letting per-step samplers stay cheap.

:class:`AuxAccounting` implements the protocol once for every engine
that keeps a ``_aux: Dict[Formula, AuxiliaryState]`` map (incremental,
active-domain, delayed); the naive and active engines implement it
directly over their own stores.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.core.auxiliary import OnceState, SinceState, deep_size
from repro.core.formulas import Formula
from repro.db.types import Row


def constraint_node_names(constraints) -> Dict[Formula, List[str]]:
    """Map each temporal subformula to the constraints that share it."""
    shared: Dict[Formula, List[str]] = {}
    for c in constraints:
        for node in c.violation_formula.temporal_subformulas():
            names = shared.setdefault(node, [])
            if c.name not in names:
                names.append(c.name)
    return shared


def profile_totals(nodes: Dict[str, Dict]) -> Dict[str, object]:
    """Fold per-node profiles into the ``total`` section."""
    any_bytes = any(p.get("bytes") is not None for p in nodes.values())
    return {
        "tuples": sum(p["tuples"] for p in nodes.values()),
        "valuations": sum(p["valuations"] for p in nodes.values()),
        "bytes": (
            sum(p["bytes"] or 0 for p in nodes.values())
            if any_bytes
            else None
        ),
    }


class AuxAccounting:
    """The ``state_profile`` protocol over a ``_aux`` node map.

    Mixed into every engine that maintains one
    :class:`~repro.core.auxiliary.AuxiliaryState` per temporal node;
    subclasses extend :meth:`state_profile` with their own sections
    (delay buffer, active domain) and override :meth:`space_tuples`
    when their footprint includes more than the auxiliary relations.
    """

    def aux_nodes(self) -> List[Formula]:
        """Temporal subformulas with attributable auxiliary state."""
        return list(self._aux.keys())

    def _aux_labels(self) -> Dict[Formula, str]:
        """Cached ``node -> str(node)`` map (labels are per-step keys;
        re-rendering formulas every step would dominate the sampler).

        Engines that already maintain a ``_node_labels`` dict for their
        instrumentation hooks share it; others get a lazy cache.
        """
        labels = getattr(self, "_node_labels", None)
        if isinstance(labels, dict) and len(labels) == len(self._aux):
            return labels
        cache = getattr(self, "_aux_label_cache", None)
        if cache is None or len(cache) != len(self._aux):
            cache = {node: str(node) for node in self._aux}
            self._aux_label_cache = cache
        return cache

    def aux_tuple_count(self) -> int:
        """Total (valuation, timestamp) entries across all auxiliary
        relations — the paper's space measure."""
        return sum(a.tuple_count() for a in self._aux.values())

    def aux_valuation_count(self) -> int:
        """Total distinct valuations across all auxiliary relations."""
        return sum(a.valuation_count() for a in self._aux.values())

    def aux_profile(self) -> Dict[str, int]:
        """Per-temporal-subformula stored-entry counts (stable keys)."""
        return {
            str(node): aux.tuple_count() for node, aux in self._aux.items()
        }

    def aux_counts(self) -> Dict[str, Tuple[int, int]]:
        """Per-node ``(tuples, valuations)`` — the cheap per-step sample
        the state observatory's bound-conformance check runs on."""
        labels = self._aux_labels()
        return {
            labels[node]: (aux.tuple_count(), aux.valuation_count())
            for node, aux in self._aux.items()
        }

    def space_tuples(self) -> int:
        """Uniform space hook (stored tuples); every engine has one."""
        return self.aux_tuple_count()

    def tier_profile(self) -> Dict[str, Dict[str, object]]:
        """Per-node storage-tier classification: resident vs spilled.

        The durable store splits checkpoint state exactly along the
        paper's bounded-history line: a bounded-window node's tuples
        are **hot** — read every step, kept in RAM and in the hot
        checkpoint document — while an unbounded ``ONCE``/``SINCE``
        node collapses to minimal anchors that are written once and
        read only at checkpoint/recovery time, so the store spills
        them **cold** to its SQLite tier.  Keys are the stable
        ``str(node)`` labels the rest of the protocol uses.
        """
        labels = self._aux_labels()
        profile: Dict[str, Dict[str, object]] = {}
        for node, aux in self._aux.items():
            cold = isinstance(aux, (OnceState, SinceState)) and not (
                getattr(node, "interval", None) is not None
                and node.interval.is_bounded
            )
            profile[labels[node]] = {
                "tier": "cold" if cold else "hot",
                "tuples": aux.tuple_count(),
                "valuations": aux.valuation_count(),
            }
        return profile

    def tier_totals(self) -> Dict[str, int]:
        """Tuple totals by tier: ``{"hot": n, "cold": m}``.

        ``cold`` counts the anchor entries a durable checkpoint would
        spill to disk; ``hot`` is what stays in the checkpoint
        document (and always in RAM).
        """
        totals = {"hot": 0, "cold": 0}
        for entry in self.tier_profile().values():
            totals[entry["tier"]] += entry["tuples"]
        return totals

    def iter_state_valuations(self) -> Iterator[Tuple[str, Row, int]]:
        """Yield ``(node label, valuation, stored entries)`` triples."""
        for node, aux in self._aux.items():
            label = str(node)
            for valuation, weight in aux.iter_valuations():
                yield label, valuation, weight

    def state_profile(self, deep: bool = True) -> Dict[str, object]:
        """Full accounting snapshot (see the module docstring)."""
        shared = constraint_node_names(self.constraints)
        nodes: Dict[str, Dict] = {}
        for node, aux in self._aux.items():
            entry = aux.state_profile(deep)
            entry["constraints"] = sorted(shared.get(node, []))
            nodes[str(node)] = entry
        return {
            "engine": self.engine_label,
            "nodes": nodes,
            "total": profile_totals(nodes),
            "space_tuples": self.space_tuples(),
        }

    @property
    def temporal_node_count(self) -> int:
        """Number of distinct temporal subformulas being tracked."""
        return len(self._aux)


__all__ = [
    "AuxAccounting",
    "constraint_node_names",
    "deep_size",
    "profile_totals",
]
