"""First-order evaluation of kernel formulas over tables.

This evaluator is shared by the reference semantics, the naive
baseline, and the incremental checker: they differ only in the
:class:`AtomProvider` they plug in, which says how relational atoms and
*temporal* subformulas resolve to tables at the evaluation point.

Evaluation threads a *context table* through the formula: the result of
``evaluate(f, provider, ctx)`` has columns ``ctx.columns ∪ fv(f)`` and
contains exactly the context rows extended by every satisfying
valuation of ``f`` compatible with them.  Conjunctions are processed in
the order planned by :mod:`repro.core.safety`, negations become
anti-joins against the accumulated context, equalities bind or filter,
and quantifiers project.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.formulas import (
    Aggregate,
    And,
    Atom,
    Comparison,
    Const,
    Eventually,
    Exists,
    Formula,
    Next,
    Not,
    Once,
    Or,
    Prev,
    Since,
    Until,
    Var,
)
from repro.core.safety import analyze, explain_unsafe, order_conjuncts
from repro.db.algebra import Table
from repro.db.types import Row, Value
from repro.errors import UnsafeFormulaError

#: When True (default) conjunctions are processed selectivity-first:
#: among the evaluable conjuncts, filters (comparisons, negations) go
#: before table-producing ones, and tables are joined smallest-first
#: using the provider's actual cardinalities.  Set False to fall back
#: to the static greedy order (the E11 planner-ablation benchmark).
SELECTIVE_PLANNING = True


def _estimated_cardinality(
    formula: Formula, provider: AtomProvider
) -> int:
    """Current size of a positive conjunct's table, for join ordering."""
    try:
        if isinstance(formula, Atom):
            return len(provider.atom_table(formula))
        if isinstance(formula, (Prev, Once, Since, Next, Eventually, Until)):
            return len(provider.temporal_table(formula))
    except Exception:
        return 1 << 30
    return 1 << 20  # nested structure: no cheap estimate


def _plan_order(operands, ctx: Table, provider: AtomProvider):
    """Order a conjunction's operands for evaluation.

    Safety (which conjuncts are evaluable when) is always decided by
    :func:`repro.core.safety.analyze`; this only chooses among the
    *currently evaluable* candidates.  With selective planning, each
    round runs every applicable filter first (they only shrink the
    context), then joins the smallest available table.
    """
    bound = frozenset(ctx.columns)
    if not SELECTIVE_PLANNING:
        return order_conjuncts(operands, bound)

    remaining = list(range(len(operands)))
    order = []
    current = bound
    while remaining:
        candidates = [
            (i, analyze(operands[i], current))
            for i in remaining
        ]
        ready = [(i, res) for i, res in candidates if res is not None]
        if not ready:
            return None
        # filters: conjuncts that bind nothing new (negations, bound
        # comparisons) — always run them first, cheapest wins trivially
        filters = [i for i, res in ready if res == current]
        if filters:
            chosen = filters[0]
        else:
            # avoid Cartesian products: a conjunct sharing variables
            # with the bound context joins selectively; a disconnected
            # one multiplies.  Only fall back to disconnected picks
            # when nothing is connected (e.g. the very first conjunct).
            binders = [i for i, _ in ready]
            connected = [
                i
                for i in binders
                if not current or operands[i].free_vars & current
            ]
            pool = connected or binders
            chosen = min(
                pool,
                key=lambda i: _estimated_cardinality(operands[i], provider),
            )
        order.append(chosen)
        remaining.remove(chosen)
        updated = analyze(operands[chosen], current)
        assert updated is not None
        current = updated
    return order


class AtomProvider:
    """Resolves atoms and temporal subformulas to tables.

    Subclasses implement the two hooks; everything else in evaluation is
    provider-independent.
    """

    def atom_table(self, atom: Atom) -> Table:
        """Satisfying valuations of a relational atom at the eval point."""
        raise NotImplementedError

    def temporal_table(self, formula: Formula) -> Table:
        """Satisfying valuations of a temporal subformula at the eval point."""
        raise NotImplementedError


def match_atom(rows: Iterable[Row], atom: Atom) -> Table:
    """Pattern-match relation ``rows`` against an atom's term list.

    Constants select, repeated variables filter, and the result's
    columns are the atom's distinct variables in first-occurrence
    order — i.e. the satisfying valuations of the atom.
    """
    var_positions: Dict[str, int] = {}
    const_checks: List[Tuple[int, Value]] = []
    same_checks: List[Tuple[int, int]] = []
    for pos, term in enumerate(atom.terms):
        if isinstance(term, Const):
            const_checks.append((pos, term.value))
        else:
            assert isinstance(term, Var)
            first = var_positions.get(term.name)
            if first is None:
                var_positions[term.name] = pos
            else:
                same_checks.append((first, pos))
    columns = tuple(var_positions)
    take = [var_positions[c] for c in columns]
    out: List[Row] = []
    for row in rows:
        if any(row[p] != v for p, v in const_checks):
            continue
        if any(row[p] != row[q] for p, q in same_checks):
            continue
        out.append(tuple(row[p] for p in take))
    return Table(columns, out)


def relation_atom_table(relation, atom: Atom) -> Table:
    """Like :func:`match_atom`, but index-accelerated.

    When the atom carries a constant, the relation's hash index on that
    position narrows the candidate rows before pattern matching —
    constant-time for selective atoms like ``status(o, 'shipped')``.
    ``relation`` is a :class:`repro.db.relation.Relation`.
    """
    rows = relation.rows
    for position, term in enumerate(atom.terms):
        if isinstance(term, Const):
            rows = relation.lookup(position, term.value)
            break
    return match_atom(rows, atom)


def evaluate(
    formula: Formula,
    provider: AtomProvider,
    context: Optional[Table] = None,
) -> Table:
    """Evaluate a kernel formula in a binding context.

    Args:
        formula: a kernel formula (run :func:`repro.core.normalize.normalize`
            first); it must be evaluable given the context's columns —
            :func:`repro.core.safety.check_safe` guarantees this for
            whole constraints.
        provider: resolves atoms and temporal nodes.
        context: a table of candidate bindings; defaults to the one-row
            zero-column table (no prior bindings).

    Returns:
        A table with columns ``context.columns ∪ fv(formula)``.
    """
    ctx = context if context is not None else Table.nullary(True)

    if isinstance(formula, Atom):
        return ctx.join(provider.atom_table(formula))

    if isinstance(formula, (Prev, Once, Since, Next, Eventually, Until)):
        return ctx.join(provider.temporal_table(formula))

    if isinstance(formula, Aggregate):
        body_table = evaluate(formula.body, provider)
        grouped = body_table.aggregate(
            sorted(formula.group_vars),
            formula.over,
            formula.op.lower(),
            formula.result,
        )
        return ctx.join(grouped)

    if isinstance(formula, Comparison):
        return _evaluate_comparison(formula, ctx)

    if isinstance(formula, Not):
        if not formula.operand.free_vars <= set(ctx.columns):
            raise UnsafeFormulaError(explain_unsafe(formula, frozenset(ctx.columns)))
        satisfied = evaluate(formula.operand, provider, ctx)
        return ctx.difference(satisfied)

    if isinstance(formula, And):
        order = _plan_order(formula.operands, ctx, provider)
        if order is None:
            raise UnsafeFormulaError(
                explain_unsafe(formula, frozenset(ctx.columns))
            )
        current = ctx
        for index in order:
            current = evaluate(formula.operands[index], provider, current)
        return current

    if isinstance(formula, Or):
        parts = [
            evaluate(branch, provider, ctx) for branch in formula.operands
        ]
        headers = {frozenset(p.columns) for p in parts}
        if len(headers) != 1:
            raise UnsafeFormulaError(
                explain_unsafe(formula, frozenset(ctx.columns))
            )
        result = parts[0]
        for part in parts[1:]:
            result = result.union(part)
        return result

    if isinstance(formula, Exists):
        inner = evaluate(formula.operand, provider, ctx)
        return inner.drop(*formula.variables)

    raise UnsafeFormulaError(
        f"cannot evaluate non-kernel node {type(formula).__name__}: "
        f"{formula} — run normalize() first"
    )


def _evaluate_comparison(cmp: Comparison, ctx: Table) -> Table:
    bound = set(ctx.columns)
    left_var = cmp.left.name if isinstance(cmp.left, Var) else None
    right_var = cmp.right.name if isinstance(cmp.right, Var) else None
    left_bound = left_var is None or left_var in bound
    right_bound = right_var is None or right_var in bound

    if left_bound and right_bound:
        def row_value(row: Dict[str, Value], var: Optional[str], term) -> Value:
            return row[var] if var is not None else term.value

        return ctx.select(
            lambda row: cmp.evaluate(
                row_value(row, left_var, cmp.left),
                row_value(row, right_var, cmp.right),
            )
        )

    if cmp.op != "=":
        raise UnsafeFormulaError(explain_unsafe(cmp, frozenset(bound)))

    if left_bound and right_var is not None:
        if left_var is not None:
            return ctx.extend_copy(left_var, right_var)
        return ctx.extend_const(right_var, cmp.left.value)  # type: ignore[union-attr]
    if right_bound and left_var is not None:
        if right_var is not None:
            return ctx.extend_copy(right_var, left_var)
        return ctx.extend_const(left_var, cmp.right.value)  # type: ignore[union-attr]
    raise UnsafeFormulaError(explain_unsafe(cmp, frozenset(bound)))
