"""Bounded-future constraints, checked with finite delay.

Real-time integrity constraints often speak about the *future*: "every
request is granted within 10 time units", "a transaction stays open
until its commit, at most 30 units later".  With **bounded** future
windows such constraints are checkable online with a *finite verdict
delay*: the verdict for the state at time ``t`` is determined once the
clock reaches ``t + H``, where ``H`` is the constraint's future horizon
(:func:`repro.core.bounds.future_horizon`).

:class:`DelayedChecker` implements this with a sliding window:

1. arriving states advance the *past* auxiliary relations immediately
   (so past subformulas cost bounded space exactly as in the pure-past
   checker) and cache their virtual tables with the buffered state;
2. a buffered state is *finalised* once the newest arrival proves that
   every state inside its future horizon has been seen — future
   subformulas are then evaluated by direct recursion over the buffer
   (which is complete for them, by the horizon argument), past
   subformulas resolve from the cached tables, and the verdict is
   emitted;
3. :meth:`DelayedChecker.finish` declares the stream ended and
   finalises the remainder under the closed-world future (``EVENTUALLY``
   with no remaining states is false) — the same answers the reference
   semantics gives on the completed history, which is how the property
   tests validate this module.

Space: past state is the bounded encoding; the buffer holds only the
states of the last ``H`` clock units.  Both independent of the history
length.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.auxiliary import AuxiliaryState, make_auxiliary
from repro.core.bounds import future_horizon
from repro.core.checker import Constraint
from repro.core.statespace import AuxAccounting
from repro.core.foeval import AtomProvider, evaluate, relation_atom_table
from repro.core.formulas import (
    Atom,
    Eventually,
    Formula,
    Next,
    Until,
)
from repro.core.violations import RunReport, StepReport, Violation
from repro.db.algebra import Table
from repro.db.database import DatabaseState
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.errors import MonitorError
from repro.temporal.clock import Timestamp, validate_successor
from repro.temporal.stream import UpdateStream


def _header(formula: Formula) -> Tuple[str, ...]:
    return tuple(sorted(formula.free_vars))


class _BufferedState:
    """One pending state: data plus its past-node virtual tables."""

    __slots__ = ("index", "time", "state", "past_virtual")

    def __init__(
        self,
        index: int,
        time: Timestamp,
        state: DatabaseState,
        past_virtual: Dict[Formula, Table],
    ):
        self.index = index
        self.time = time
        self.state = state
        self.past_virtual = past_virtual


class _WindowProvider(AtomProvider):
    """Resolves formulas at one buffered position of the window."""

    def __init__(self, checker: "DelayedChecker", position: int):
        self.checker = checker
        self.position = position

    def atom_table(self, atom: Atom) -> Table:
        entry = self.checker._window[self.position]
        return relation_atom_table(entry.state.relation(atom.relation), atom)

    def temporal_table(self, formula: Formula) -> Table:
        if formula.is_future:
            return self.checker._future_table(formula, self.position)
        entry = self.checker._window[self.position]
        try:
            return entry.past_virtual[formula]
        except KeyError:
            raise MonitorError(
                f"past virtual table missing for {formula}"
            ) from None


class DelayedChecker(AuxAccounting):
    """Checks bounded-future constraints with finite verdict delay.

    The stepping API differs from the pure-past checkers in one way
    dictated by the semantics: :meth:`step` returns the (possibly
    empty) list of *newly finalised* verdicts, which lag the input by
    at most the future horizon, and :meth:`finish` flushes the rest.
    """

    #: engine label used in telemetry series and state profiles
    engine_label = "delayed"

    def __init__(
        self,
        schema: DatabaseSchema,
        constraints: Sequence[Constraint],
        initial: Optional[DatabaseState] = None,
    ):
        self.schema = schema
        self.constraints = list(constraints)
        horizons = []
        for c in self.constraints:
            c.validate_schema(schema)
            h = future_horizon(c.violation_formula)
            if h is None:
                raise MonitorError(
                    f"constraint {c.name!r} has an unbounded future "
                    f"horizon; the delayed checker needs finite windows"
                )
            horizons.append(h)
        #: verdict delay in clock units (0 = pure past)
        self.horizon: int = max(horizons, default=0)
        self.state = (
            initial if initial is not None else DatabaseState.empty(schema)
        )
        if self.state.schema != schema:
            raise MonitorError("initial state does not match schema")
        # past aux, advanced on arrival
        self._aux: Dict[Formula, AuxiliaryState] = {}
        self._past_nodes: List[Formula] = []
        self._future_nodes: List[Formula] = []
        for c in self.constraints:
            for node in c.violation_formula.temporal_subformulas():
                if node.is_future:
                    if node not in self._future_nodes:
                        self._future_nodes.append(node)
                elif node not in self._aux:
                    if node.has_future:
                        raise MonitorError(
                            f"future operator nested inside past operator "
                            f"({node}) is not supported by the delayed "
                            f"checker"
                        )
                    self._aux[node] = make_auxiliary(node)
                    self._past_nodes.append(node)
        self._window: List[_BufferedState] = []
        self._future_memo: Dict[Tuple[Formula, int], Table] = {}
        self._time: Optional[Timestamp] = None
        self._arrivals = -1
        self._finished = False

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    @property
    def now(self) -> Optional[Timestamp]:
        """Timestamp of the last *arrived* state (None before any)."""
        return self._time

    @property
    def pending_states(self) -> int:
        """States buffered awaiting their verdicts."""
        return len(self._window)

    def step(self, time: Timestamp, txn: Transaction) -> List[StepReport]:
        """Feed one transaction; return newly determined verdicts.

        Verdicts are emitted in state order, each for a state whose
        future horizon the clock has now passed.
        """
        if self._finished:
            raise MonitorError("checker already finished")
        validate_successor(self._time, time)
        self.state = self.state.apply(txn)
        self._time = time
        self._arrivals += 1
        self._absorb(time, self.state)
        emitted: List[StepReport] = []
        while self._window and time - self._window[0].time > self.horizon:
            emitted.append(self._finalize_front())
        return emitted

    def finish(self) -> List[StepReport]:
        """Declare the stream ended; flush all pending verdicts.

        The remaining states are judged under the closed-world future:
        an ``EVENTUALLY`` whose window extends past the last state is
        satisfied only by what actually happened.
        """
        if self._finished:
            raise MonitorError("checker already finished")
        self._finished = True
        emitted = []
        while self._window:
            emitted.append(self._finalize_front())
        return emitted

    def run(
        self, stream: Union[UpdateStream, Sequence]
    ) -> RunReport:
        """Process a whole stream, finish, and aggregate all verdicts."""
        report = RunReport()
        for time, txn in stream:
            for step_report in self.step(time, txn):
                report.add(step_report)
        for step_report in self.finish():
            report.add(step_report)
        return report

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _absorb(self, time: Timestamp, state: DatabaseState) -> None:
        """Advance past aux with the arriving state; buffer it."""
        past_virtual: Dict[Formula, Table] = {}
        provider = _ArrivalProvider(state, past_virtual)

        def evaluate_now(
            formula: Formula, context: Optional[Table] = None
        ) -> Table:
            return evaluate(formula, provider, context)

        for node in self._past_nodes:
            past_virtual[node] = self._aux[node].advance(time, evaluate_now)
        self._window.append(
            _BufferedState(self._arrivals, time, state, past_virtual)
        )

    def _finalize_front(self) -> StepReport:
        entry = self._window[0]
        provider = _WindowProvider(self, 0)
        violations: List[Violation] = []
        for c in self.constraints:
            witnesses = evaluate(c.violation_formula, provider)
            if not witnesses.is_empty:
                violations.append(
                    Violation(c.name, entry.time, entry.index, witnesses)
                )
        report = StepReport(entry.time, entry.index, violations)
        self._window.pop(0)
        # memo entries are keyed by window position; positions shift
        # when the front is popped, so drop them wholesale (they are
        # cheap to rebuild within one horizon)
        self._future_memo.clear()
        return report

    def _future_table(self, node: Formula, position: int) -> Table:
        key = (node, position)
        cached = self._future_memo.get(key)
        if cached is not None:
            return cached
        if isinstance(node, Next):
            result = self._next_table(node, position)
        elif isinstance(node, Eventually):
            result = self._eventually_table(node, position)
        elif isinstance(node, Until):
            result = self._until_table(node, position)
        else:  # pragma: no cover
            raise MonitorError(f"not a future node: {node}")
        self._future_memo[key] = result
        return result

    def _eval_at(self, formula: Formula, position: int) -> Table:
        return evaluate(formula, _WindowProvider(self, position))

    def _next_table(self, node: Next, position: int) -> Table:
        if position + 1 >= len(self._window):
            return Table.empty(_header(node))
        gap = (
            self._window[position + 1].time - self._window[position].time
        )
        if not node.interval.contains(gap):
            return Table.empty(_header(node))
        return self._eval_at(node.operand, position + 1).project(
            _header(node)
        )

    def _eventually_table(self, node: Eventually, position: int) -> Table:
        base_time = self._window[position].time
        result = Table.empty(_header(node))
        for j in range(position, len(self._window)):
            delta = self._window[j].time - base_time
            if node.interval.bounded_by(delta):
                break
            if node.interval.contains(delta):
                result = result.union(
                    self._eval_at(node.operand, j).project(_header(node))
                )
        return result

    def _until_table(self, node: Until, position: int) -> Table:
        """Mirror of the reference UNTIL scan over the buffer."""
        base_time = self._window[position].time
        pending = Table.empty(tuple(sorted(node.right.free_vars)))
        last = len(self._window) - 1
        for j in range(last, position - 1, -1):
            delta = self._window[j].time - base_time
            if node.interval.bounded_by(delta):
                continue  # beyond the window; nothing collected yet
            if j < last and not pending.is_empty:
                pending = evaluate(
                    node.left, _WindowProvider(self, j), pending
                )
            if node.interval.contains(delta):
                pending = pending.union(
                    self._eval_at(node.right, j).project(pending.columns)
                )
        return pending.project(_header(node))

    # ------------------------------------------------------------------
    # instrumentation: past-aux accounting is inherited from
    # repro.core.statespace.AuxAccounting; the verdict-delay buffer is
    # the delayed checker's own contribution
    # ------------------------------------------------------------------

    def buffered_tuples(self) -> int:
        """Tuples held by the finite verdict-delay buffer.

        Each buffered state retains its database rows *and* the cached
        virtual tables of every past node (needed to finalise the
        verdict later); both are lookahead state the space bound must
        cover.  Counting only the database rows — as an earlier
        revision did — under-counts the buffer.
        """
        total = 0
        for entry in self._window:
            total += entry.state.total_rows
            total += sum(
                len(table) for table in entry.past_virtual.values()
            )
        return total

    def buffered_virtual_tuples(self) -> int:
        """Cached past-node virtual-table rows across the buffer."""
        return sum(
            len(table)
            for entry in self._window
            for table in entry.past_virtual.values()
        )

    def space_tuples(self) -> int:
        """Uniform space hook: past aux entries plus the delay buffer."""
        return self.aux_tuple_count() + self.buffered_tuples()

    def state_profile(self, deep: bool = True) -> Dict[str, object]:
        """Uniform accounting snapshot, plus the ``buffer`` section."""
        profile = super().state_profile(deep)
        virtual = self.buffered_virtual_tuples()
        profile["buffer"] = {
            "states": len(self._window),
            "database_tuples": sum(
                entry.state.total_rows for entry in self._window
            ),
            "virtual_tuples": virtual,
        }
        return profile


class _ArrivalProvider(AtomProvider):
    """Provider used while advancing past aux at arrival time."""

    def __init__(self, state: DatabaseState, virtual: Dict[Formula, Table]):
        self.state = state
        self.virtual = virtual

    def atom_table(self, atom: Atom) -> Table:
        return relation_atom_table(self.state.relation(atom.relation), atom)

    def temporal_table(self, formula: Formula) -> Table:
        try:
            return self.virtual[formula]
        except KeyError:
            raise MonitorError(
                f"virtual table missing for {formula}; past nodes must "
                f"not contain future operators"
            ) from None
