"""Reference point-semantics of Past MFOTL over materialised histories.

This module is the *specification* against which both checkers are
validated: it evaluates a kernel formula at an arbitrary snapshot of a
:class:`~repro.temporal.history.History`, looking at the whole history
with no auxiliary encoding.  It is deliberately simple and direct; the
naive baseline checker wraps it, and the property-based tests assert
that the incremental checker agrees with it on random inputs.

Temporal operators are resolved by explicit recursion over past
snapshots (with memoisation per (subformula, index) inside one
evaluator, so repeated queries stay polynomial).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.foeval import AtomProvider, evaluate, relation_atom_table
from repro.core.formulas import (
    Atom,
    Eventually,
    Formula,
    Next,
    Once,
    Prev,
    Since,
    Until,
)
from repro.db.algebra import Table
from repro.errors import HistoryError
from repro.temporal.history import History


def _header(formula: Formula) -> Tuple[str, ...]:
    """Canonical column order for a formula's satisfaction table."""
    return tuple(sorted(formula.free_vars))


class HistoryEvaluator:
    """Evaluates kernel formulas at snapshots of one history.

    The evaluator may be kept while the history is appended to; caches
    are keyed by snapshot index, which never changes meaning because
    histories are append-only.
    """

    def __init__(self, history: History):
        self.history = history
        self._cache: Dict[Tuple[Formula, int], Table] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def table_at(self, formula: Formula, index: int) -> Table:
        """Satisfying valuations of ``formula`` at snapshot ``index``.

        Args:
            formula: a kernel formula (see :mod:`repro.core.normalize`).
            index: 0-based snapshot index into the history.

        Returns:
            A table over the formula's free variables.
        """
        self._check_index(index)
        key = (formula, index)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        provider = _PointProvider(self, index)
        result = evaluate(formula, provider)
        self._cache[key] = result
        return result

    def holds_at(self, formula: Formula, index: int) -> bool:
        """Truth of a *closed* kernel formula at snapshot ``index``."""
        table = self.table_at(formula, index)
        if table.columns:
            raise HistoryError(
                f"holds_at needs a closed formula; {formula} has free "
                f"variables {sorted(formula.free_vars)}"
            )
        return table.truth

    # ------------------------------------------------------------------
    # temporal operators
    # ------------------------------------------------------------------

    def temporal_table(self, formula: Formula, index: int) -> Table:
        """Satisfying valuations of a temporal node at ``index``."""
        key = (formula, index)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if isinstance(formula, Prev):
            result = self._prev_table(formula, index)
        elif isinstance(formula, Once):
            result = self._once_table(formula, index)
        elif isinstance(formula, Since):
            result = self._since_table(formula, index)
        elif isinstance(formula, Next):
            result = self._next_table(formula, index)
        elif isinstance(formula, Eventually):
            result = self._eventually_table(formula, index)
        elif isinstance(formula, Until):
            result = self._until_table(formula, index)
        else:
            raise HistoryError(
                f"not a temporal node: {type(formula).__name__}"
            )
        self._cache[key] = result
        return result

    def _prev_table(self, formula: Prev, index: int) -> Table:
        if index == 0:
            return Table.empty(_header(formula))
        gap = self.history.time_at(index) - self.history.time_at(index - 1)
        if not formula.interval.contains(gap):
            return Table.empty(_header(formula))
        return self.table_at(formula.operand, index - 1)

    def _once_table(self, formula: Once, index: int) -> Table:
        now = self.history.time_at(index)
        result = Table.empty(_header(formula))
        for j in range(index, -1, -1):
            delta = now - self.history.time_at(j)
            if formula.interval.bounded_by(delta):
                break  # older snapshots are even further away
            if formula.interval.contains(delta):
                result = result.union(self.table_at(formula.operand, j))
        return result

    def _since_table(self, formula: Since, index: int) -> Table:
        """Anchor-accumulation evaluation of SINCE.

        Sweeping snapshots oldest-to-newest: filter surviving anchors by
        the left operand at each state (strictly-after semantics: filter
        *before* adding that state's own anchors), and add the right
        operand's valuations as new anchors whenever the state's clock
        distance from ``index`` lies in the interval.
        """
        now = self.history.time_at(index)
        pending = Table.empty(tuple(sorted(formula.right.free_vars)))
        for j in range(0, index + 1):
            if j > 0 and not pending.is_empty:
                provider = _PointProvider(self, j)
                pending = evaluate(formula.left, provider, pending)
            delta = now - self.history.time_at(j)
            if formula.interval.contains(delta):
                pending = pending.union(
                    self.table_at(formula.right, j)
                )
        return pending.project(_header(formula))

    # -- future operators (over the materialised part of the history;
    #    a history that has ended gives the closed-world future the
    #    delayed checker's finish() also assumes) -----------------------

    def _next_table(self, formula: Next, index: int) -> Table:
        if index + 1 >= self.history.length:
            return Table.empty(_header(formula))
        gap = self.history.time_at(index + 1) - self.history.time_at(index)
        if not formula.interval.contains(gap):
            return Table.empty(_header(formula))
        return self.table_at(formula.operand, index + 1)

    def _eventually_table(self, formula: Eventually, index: int) -> Table:
        now = self.history.time_at(index)
        result = Table.empty(_header(formula))
        for j in range(index, self.history.length):
            delta = self.history.time_at(j) - now
            if formula.interval.bounded_by(delta):
                break  # later snapshots are even further ahead
            if formula.interval.contains(delta):
                result = result.union(self.table_at(formula.operand, j))
        return result

    def _until_table(self, formula: Until, index: int) -> Table:
        """Mirror of :meth:`_since_table`, scanning newest-to-oldest.

        Visiting ``j`` descending: anchors already collected come from
        states after ``j`` and therefore require the left operand at
        ``j`` (strictly-before semantics) — filter first, then add
        ``j``'s own anchors, which need nothing at ``j`` itself.
        """
        now = self.history.time_at(index)
        pending = Table.empty(tuple(sorted(formula.right.free_vars)))
        last = self.history.length - 1
        for j in range(last, index - 1, -1):
            delta = self.history.time_at(j) - now
            if formula.interval.bounded_by(delta):
                pending = Table.empty(pending.columns)
                continue
            if j < last and not pending.is_empty:
                provider = _PointProvider(self, j)
                pending = evaluate(formula.left, provider, pending)
            if formula.interval.contains(delta):
                pending = pending.union(self.table_at(formula.right, j))
        return pending.project(_header(formula))

    # ------------------------------------------------------------------

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.history.length:
            raise HistoryError(
                f"snapshot index {index} out of range "
                f"(history has {self.history.length} snapshots)"
            )


class _PointProvider(AtomProvider):
    """Resolves atoms/temporal nodes at a fixed snapshot of a history."""

    def __init__(self, evaluator: HistoryEvaluator, index: int):
        self.evaluator = evaluator
        self.index = index

    def atom_table(self, atom: Atom) -> Table:
        state = self.evaluator.history.state_at(self.index)
        return relation_atom_table(state.relation(atom.relation), atom)

    def temporal_table(self, formula: Formula) -> Table:
        return self.evaluator.temporal_table(formula, self.index)
