"""Concrete syntax for real-time integrity constraints.

Grammar (loosest to tightest binding)::

    formula  := iff
    iff      := implies ('<->' implies)*            (left associative)
    implies  := or ('->' implies)?                  (right associative)
    or       := and (OR and)*                       (n-ary)
    and      := since (AND since)*                  (n-ary)
    since    := unary ((SINCE|UNTIL) interval? unary)*  (left associative)
    unary    := NOT unary
              | EXISTS vars '.' formula             (maximal scope)
              | FORALL vars '.' formula
              | PREV interval? unary  | ONCE interval? unary
              | HIST interval? unary  | NEXT interval? unary
              | EVENTUALLY interval? unary | ALWAYS interval? unary
              | primary
    primary  := '(' formula ')' | TRUE | FALSE
              | IDENT '(' term (',' term)* ')'      (relational atom)
              | IDENT '(' ')'                       (nullary atom)
              | term cmp term                       (comparison)
    term     := IDENT | INT | FLOAT | STRING | '-' INT | '-' FLOAT
    cmp      := '=' | '!=' | '<' | '<=' | '>' | '>='
    interval := '[' INT ',' (INT | '*') ']'
    vars     := IDENT (',' IDENT)*

Keywords are case-insensitive and reserved (an identifier spelled like a
keyword cannot name a relation or variable).  ``&`` / ``|`` are accepted
as synonyms of ``AND`` / ``OR``.  Comments run from ``#`` or ``--`` to
end of line.  Strings are single-quoted with backslash escapes.

A *constraint file* is a sequence of constraints separated by ``;``;
each may carry a label: ``name : formula``.

``parse(str(f))`` returns a formula equal to ``f`` for every formula
``f`` (round-trip property, tested).
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.core.formulas import (
    AGGREGATE_OPS,
    Aggregate,
    Always,
    And,
    Atom,
    Comparison,
    Const,
    Eventually,
    Exists,
    Forall,
    Formula,
    Hist,
    Iff,
    Implies,
    Next,
    Not,
    Once,
    Or,
    Prev,
    Since,
    Term,
    Until,
    Var,
)
from repro.core.intervals import Interval
from repro.errors import ParseError

KEYWORDS = {
    "NOT",
    "AND",
    "OR",
    "EXISTS",
    "FORALL",
    "PREV",
    "ONCE",
    "HIST",
    "SINCE",
    "NEXT",
    "EVENTUALLY",
    "ALWAYS",
    "UNTIL",
    "CNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
    "TRUE",
    "FALSE",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>(\#|--)[^\n]*)
  | (?P<float>\d+\.\d+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<string>'(?:\\.|[^'\\])*')
  | (?P<op><->|->|!=|<=|>=|[=<>()\[\],.;:*&|-])
    """,
    re.VERBOSE,
)


class Token(NamedTuple):
    """One lexical token with source position (1-based)."""

    kind: str  # 'int' | 'float' | 'ident' | 'keyword' | 'string' | 'op' | 'eof'
    text: str
    line: int
    column: int


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens (keywords recognised case-insensitively).

    Raises:
        ParseError: on any character no rule matches.
    """
    tokens: List[Token] = []
    line, line_start = 1, 0
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            col = pos - line_start + 1
            raise ParseError(f"unexpected character {text[pos]!r}", line, col)
        kind = m.lastgroup or ""
        value = m.group()
        col = pos - line_start + 1
        if kind in ("ws", "comment"):
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = pos + value.rindex("\n") + 1
        elif kind == "ident" and value.upper() in KEYWORDS:
            tokens.append(Token("keyword", value.upper(), line, col))
        else:
            tokens.append(Token(kind, value, line, col))
        pos = m.end()
    tokens.append(Token("eof", "", line, len(text) - line_start + 1))
    return tokens


def _unescape(raw: str) -> str:
    """Decode a quoted string token (strip quotes, process backslashes)."""
    body = raw[1:-1]
    out: List[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            out.append(body[i + 1])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: Sequence[Token]):
        self._tokens = list(tokens)
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _error(self, message: str) -> ParseError:
        tok = self.current
        shown = tok.text or "end of input"
        return ParseError(f"{message} (found {shown!r})", tok.line, tok.column)

    def _match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.current
        if tok.kind == kind and (text is None or tok.text == text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self._match(kind, text)
        if tok is None:
            want = text if text is not None else kind
            raise self._error(f"expected {want!r}")
        return tok

    # -- grammar --------------------------------------------------------

    def parse_formula(self) -> Formula:
        """Parse one formula (the ``iff`` level)."""
        left = self._parse_implies()
        while self._match("op", "<->"):
            right = self._parse_implies()
            left = Iff(left, right)
        return left

    def _parse_implies(self) -> Formula:
        left = self._parse_or()
        if self._match("op", "->"):
            right = self._parse_implies()
            return Implies(left, right)
        return left

    def _parse_or(self) -> Formula:
        parts = [self._parse_and()]
        while self._match("keyword", "OR") or self._match("op", "|"):
            parts.append(self._parse_and())
        return parts[0] if len(parts) == 1 else Or(*parts)

    def _parse_and(self) -> Formula:
        parts = [self._parse_since()]
        while self._match("keyword", "AND") or self._match("op", "&"):
            parts.append(self._parse_since())
        return parts[0] if len(parts) == 1 else And(*parts)

    def _parse_since(self) -> Formula:
        left = self._parse_unary()
        while True:
            if self._match("keyword", "SINCE"):
                node = Since
            elif self._match("keyword", "UNTIL"):
                node = Until
            else:
                return left
            interval = self._parse_optional_interval()
            right = self._parse_unary()
            left = node(left, right, interval)

    def _parse_unary(self) -> Formula:
        if self._match("keyword", "NOT"):
            return Not(self._parse_unary())
        unary_words = (
            ("PREV", Prev),
            ("ONCE", Once),
            ("HIST", Hist),
            ("NEXT", Next),
            ("EVENTUALLY", Eventually),
            ("ALWAYS", Always),
        )
        for word, node in unary_words:
            if self._match("keyword", word):
                interval = self._parse_optional_interval()
                return node(self._parse_unary(), interval)
        for word, node in (("EXISTS", Exists), ("FORALL", Forall)):
            if self._match("keyword", word):
                names = self._parse_varlist()
                self._expect("op", ".")
                body = self.parse_formula()
                return node(names, body)
        return self._parse_primary()

    def _parse_varlist(self) -> List[str]:
        names = [self._expect("ident").text]
        while self._match("op", ","):
            names.append(self._expect("ident").text)
        return names

    def _parse_optional_interval(self) -> Optional[Interval]:
        if not self._match("op", "["):
            return None
        low = int(self._expect("int").text)
        self._expect("op", ",")
        if self._match("op", "*"):
            high: Optional[int] = None
        else:
            high = int(self._expect("int").text)
        self._expect("op", "]")
        return Interval(low, high)

    def _parse_primary(self) -> Formula:
        if self._match("op", "("):
            inner = self.parse_formula()
            self._expect("op", ")")
            return inner
        if self._match("keyword", "TRUE"):
            from repro.core.formulas import TRUE

            return TRUE
        if self._match("keyword", "FALSE"):
            from repro.core.formulas import FALSE

            return FALSE
        # relational atom: IDENT '(' ... ')'
        if (
            self.current.kind == "ident"
            and self._peek_next_is_open_paren()
        ):
            name = self._advance().text
            self._expect("op", "(")
            terms: List[Term] = []
            if not self._match("op", ")"):
                terms.append(self._parse_term())
                while self._match("op", ","):
                    terms.append(self._parse_term())
                self._expect("op", ")")
            return Atom(name, terms)
        # otherwise: a comparison or an aggregation atom
        left = self._parse_term()
        op_tok = self.current
        if (
            op_tok.kind == "op"
            and op_tok.text == "="
            and self._tokens[self._pos + 1].kind == "keyword"
            and self._tokens[self._pos + 1].text in AGGREGATE_OPS
        ):
            if not isinstance(left, Var):
                raise self._error(
                    "aggregate result must be a variable"
                )
            self._advance()  # '='
            agg_op = self._advance().text
            self._expect("op", "(")
            over = self._parse_varlist()
            self._expect("op", ";")
            body = self.parse_formula()
            self._expect("op", ")")
            return Aggregate(agg_op, left.name, over, body)
        if op_tok.kind == "op" and op_tok.text in ("=", "!=", "<", "<=", ">", ">="):
            self._advance()
            right = self._parse_term()
            return Comparison(left, op_tok.text, right)
        raise self._error("expected a formula")

    def _peek_next_is_open_paren(self) -> bool:
        nxt = self._tokens[self._pos + 1]
        return nxt.kind == "op" and nxt.text == "("

    def _parse_term(self) -> Term:
        tok = self.current
        if tok.kind == "ident":
            self._advance()
            return Var(tok.text)
        if tok.kind == "int":
            self._advance()
            return Const(int(tok.text))
        if tok.kind == "float":
            self._advance()
            return Const(float(tok.text))
        if tok.kind == "string":
            self._advance()
            return Const(_unescape(tok.text))
        if tok.kind == "op" and tok.text == "-":
            self._advance()
            num = self.current
            if num.kind == "int":
                self._advance()
                return Const(-int(num.text))
            if num.kind == "float":
                self._advance()
                return Const(-float(num.text))
            raise self._error("expected a number after '-'")
        raise self._error("expected a term")

    def at_end(self) -> bool:
        """Whether all input has been consumed."""
        return self.current.kind == "eof"


def parse(text: str) -> Formula:
    """Parse a single formula; the whole input must be consumed."""
    parser = Parser(tokenize(text))
    formula = parser.parse_formula()
    if not parser.at_end():
        raise parser._error("unexpected trailing input")
    return formula


def parse_constraints(text: str) -> List[Tuple[str, Formula]]:
    """Parse a constraint file: ``[name :] formula`` separated by ``;``.

    Unlabelled constraints are named ``c1``, ``c2``, ... by position.

    Returns:
        ``(name, formula)`` pairs in file order.
    """
    parser = Parser(tokenize(text))
    out: List[Tuple[str, Formula]] = []
    index = 0
    while not parser.at_end():
        index += 1
        name = _try_label(parser) or f"c{index}"
        out.append((name, parser.parse_formula()))
        if not parser._match("op", ";") and not parser.at_end():
            raise parser._error("expected ';' between constraints")
    return out


def _try_label(parser: Parser) -> Optional[str]:
    """Consume a ``name :`` label if present; names may contain ``-``.

    No formula can start with ``ident :`` (nor ``ident - ident ... :``),
    so scanning ahead for the colon and rewinding otherwise is safe.
    Hyphenated segments may be identifiers, keywords, or numbers
    (``window-0`` — the workload generators emit numbered labels).
    """
    if parser.current.kind != "ident":
        return None
    saved = parser._pos
    parts = [parser._advance().text]
    while (
        parser.current.kind == "op"
        and parser.current.text == "-"
        and parser._tokens[parser._pos + 1].kind
        in ("ident", "keyword", "int")
    ):
        parser._advance()
        parts.append(parser._advance().text)
    if parser._match("op", ":"):
        return "-".join(parts)
    parser._pos = saved
    return None
