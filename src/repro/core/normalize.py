"""Normalisation of constraint formulas.

Before compilation every formula is brought into a *kernel form* on
which the safety analysis, the evaluators, and the auxiliary-relation
machinery operate:

1. **Sugar elimination** — ``FORALL``, ``->``, ``<->`` and ``HIST`` are
   rewritten into the kernel connectives::

       FORALL x. f   =>  NOT EXISTS x. NOT f
       a -> b        =>  NOT a OR b
       a <-> b       =>  (NOT a OR b) AND (NOT b OR a)
       HIST[I] f     =>  NOT ONCE[I] NOT f

2. **Simplification** — double negations removed, nested ``AND``/``OR``
   flattened.

3. **Alpha-renaming** (:func:`rename_apart`) — every quantifier binds a
   variable distinct from all other bound variables and from the free
   variables of the whole formula, so evaluation contexts can use
   variable names as table columns without capture.

The kernel language is: ``Atom``, ``Comparison``, ``Not``, ``And``,
``Or``, ``Exists``, ``Prev``, ``Once``, ``Since``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Set

from repro.core.formulas import (
    Aggregate,
    Always,
    And,
    Atom,
    Comparison,
    Eventually,
    Exists,
    Forall,
    Formula,
    Hist,
    Iff,
    Implies,
    Next,
    Not,
    Once,
    Or,
    Prev,
    Since,
    Term,
    Until,
    Var,
)

#: Node types allowed in kernel form.
KERNEL_TYPES = (
    Atom, Comparison, Not, And, Or, Exists, Aggregate,
    Prev, Once, Since, Next, Eventually, Until,
)


def substitute_terms(term: Term, mapping: Mapping[str, str]) -> Term:
    """Rename a variable term according to ``mapping`` (constants pass)."""
    if isinstance(term, Var) and term.name in mapping:
        return Var(mapping[term.name])
    return term


def rename_variables(formula: Formula, mapping: Mapping[str, str]) -> Formula:
    """Rename *free* occurrences of variables according to ``mapping``.

    Quantifiers shadow: a binding for a name quantified inside is not
    applied under that quantifier.
    """
    if not mapping:
        return formula
    if isinstance(formula, Atom):
        return Atom(
            formula.relation,
            [substitute_terms(t, mapping) for t in formula.terms],
        )
    if isinstance(formula, Comparison):
        return Comparison(
            substitute_terms(formula.left, mapping),
            formula.op,
            substitute_terms(formula.right, mapping),
        )
    if isinstance(formula, Not):
        return Not(rename_variables(formula.operand, mapping))
    if isinstance(formula, And):
        return And(*[rename_variables(f, mapping) for f in formula.operands])
    if isinstance(formula, Or):
        return Or(*[rename_variables(f, mapping) for f in formula.operands])
    if isinstance(formula, Implies):
        return Implies(
            rename_variables(formula.antecedent, mapping),
            rename_variables(formula.consequent, mapping),
        )
    if isinstance(formula, Iff):
        return Iff(
            rename_variables(formula.left, mapping),
            rename_variables(formula.right, mapping),
        )
    if isinstance(formula, (Exists, Forall)):
        inner = {
            k: v for k, v in mapping.items() if k not in formula.variables
        }
        body = rename_variables(formula.operand, inner)
        return type(formula)(formula.variables, body)
    if isinstance(formula, Aggregate):
        inner = {
            k: v for k, v in mapping.items() if k not in formula.over
        }
        return Aggregate(
            formula.op,
            mapping.get(formula.result, formula.result),
            formula.over,
            rename_variables(formula.body, inner),
        )
    if isinstance(formula, (Prev, Once, Hist, Next, Eventually, Always)):
        return type(formula)(
            rename_variables(formula.operand, mapping), formula.interval
        )
    if isinstance(formula, (Since, Until)):
        return type(formula)(
            rename_variables(formula.left, mapping),
            rename_variables(formula.right, mapping),
            formula.interval,
        )
    raise TypeError(f"unknown formula node: {type(formula).__name__}")


def canonical_variables(formula: Formula) -> Dict[str, str]:
    """First-occurrence renumbering ``v1, v2, ...`` of *every* variable.

    Walks the formula in pre-order, visiting each node's local variable
    positions in a fixed order (atom/comparison terms left to right,
    quantifier binders in declaration order, aggregate result before
    its ``over`` variables).  Two rename-variants of the same formula
    therefore produce mappings with identical images position by
    position, which is what makes :func:`canonicalize_variant`
    canonical.
    """
    mapping: Dict[str, str] = {}

    def see(variable: str) -> None:
        if variable not in mapping:
            mapping[variable] = f"v{len(mapping) + 1}"

    stack = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, Atom):
            for term in node.terms:
                if isinstance(term, Var):
                    see(term.name)
        elif isinstance(node, Comparison):
            for term in (node.left, node.right):
                if isinstance(term, Var):
                    see(term.name)
        elif isinstance(node, (Exists, Forall)):
            for variable in node.variables:
                see(variable)
        elif isinstance(node, Aggregate):
            see(node.result)
            for variable in node.over:
                see(variable)
        stack.extend(reversed(node.children()))
    return mapping


def canonicalize_variant(
    formula: Formula,
) -> "tuple[Formula, Dict[str, str]]":
    """``(canonical alpha-variant, variable mapping)`` of a formula.

    The mapping sends each variable (free or bound) to its canonical
    ``vN`` name; applying it with :func:`rename_all_variables` yields
    the rename-equivalence class representative.  Two formulas are
    rename-equivalent iff their canonical variants are structurally
    equal — the hash-cons key of the cross-constraint planner
    (:mod:`repro.analysis.plan`) and of shared auxiliary maintenance
    (``Monitor(share_subformulas=True)``).
    """
    mapping = canonical_variables(formula)
    return rename_all_variables(formula, mapping), mapping


def rename_all_variables(
    formula: Formula, mapping: Mapping[str, str]
) -> Formula:
    """Rename *every* variable occurrence, binders included.

    Unlike :func:`rename_variables`, quantifier binders and aggregate
    ``result``/``over`` names are rewritten too, so the result is the
    alpha-variant obtained by applying ``mapping`` uniformly.  The
    mapping must be injective over the names it mentions — collapsing
    two distinct variables would change semantics — and is validated.
    Names absent from the mapping are kept.
    """
    values = list(mapping.values())
    if len(set(values)) != len(values):
        raise ValueError(
            f"rename_all_variables mapping is not injective: {dict(mapping)}"
        )
    return _rename_all(formula, mapping)


def _rename_all(formula: Formula, mapping: Mapping[str, str]) -> Formula:
    if isinstance(formula, Atom):
        return Atom(
            formula.relation,
            [substitute_terms(t, mapping) for t in formula.terms],
        )
    if isinstance(formula, Comparison):
        return Comparison(
            substitute_terms(formula.left, mapping),
            formula.op,
            substitute_terms(formula.right, mapping),
        )
    if isinstance(formula, Not):
        return Not(_rename_all(formula.operand, mapping))
    if isinstance(formula, And):
        return And(*[_rename_all(f, mapping) for f in formula.operands])
    if isinstance(formula, Or):
        return Or(*[_rename_all(f, mapping) for f in formula.operands])
    if isinstance(formula, Implies):
        return Implies(
            _rename_all(formula.antecedent, mapping),
            _rename_all(formula.consequent, mapping),
        )
    if isinstance(formula, Iff):
        return Iff(
            _rename_all(formula.left, mapping),
            _rename_all(formula.right, mapping),
        )
    if isinstance(formula, (Exists, Forall)):
        return type(formula)(
            [mapping.get(v, v) for v in formula.variables],
            _rename_all(formula.operand, mapping),
        )
    if isinstance(formula, Aggregate):
        return Aggregate(
            formula.op,
            mapping.get(formula.result, formula.result),
            [mapping.get(v, v) for v in formula.over],
            _rename_all(formula.body, mapping),
        )
    if isinstance(formula, (Prev, Once, Hist, Next, Eventually, Always)):
        return type(formula)(
            _rename_all(formula.operand, mapping), formula.interval
        )
    if isinstance(formula, (Since, Until)):
        return type(formula)(
            _rename_all(formula.left, mapping),
            _rename_all(formula.right, mapping),
            formula.interval,
        )
    raise TypeError(f"unknown formula node: {type(formula).__name__}")


def _desugar(formula: Formula) -> Formula:
    """Eliminate FORALL, ->, <->, HIST; recurse everywhere."""
    if isinstance(formula, (Atom, Comparison)):
        return formula
    if isinstance(formula, Not):
        return Not(_desugar(formula.operand))
    if isinstance(formula, And):
        return And(*[_desugar(f) for f in formula.operands])
    if isinstance(formula, Or):
        return Or(*[_desugar(f) for f in formula.operands])
    if isinstance(formula, Implies):
        return Or(
            Not(_desugar(formula.antecedent)), _desugar(formula.consequent)
        )
    if isinstance(formula, Iff):
        left = _desugar(formula.left)
        right = _desugar(formula.right)
        return And(Or(Not(left), right), Or(Not(right), left))
    if isinstance(formula, Forall):
        return Not(Exists(formula.variables, Not(_desugar(formula.operand))))
    if isinstance(formula, Aggregate):
        return Aggregate(
            formula.op, formula.result, formula.over,
            _desugar(formula.body),
        )
    if isinstance(formula, Exists):
        return Exists(formula.variables, _desugar(formula.operand))
    if isinstance(formula, Hist):
        return Not(Once(Not(_desugar(formula.operand)), formula.interval))
    if isinstance(formula, Always):
        return Not(
            Eventually(Not(_desugar(formula.operand)), formula.interval)
        )
    if isinstance(formula, (Prev, Once, Next, Eventually)):
        return type(formula)(_desugar(formula.operand), formula.interval)
    if isinstance(formula, (Since, Until)):
        return type(formula)(
            _desugar(formula.left),
            _desugar(formula.right),
            formula.interval,
        )
    raise TypeError(f"unknown formula node: {type(formula).__name__}")


_NEGATED_OP = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


def _push_negations(formula: Formula, negate: bool = False) -> Formula:
    """Push negations through the boolean connectives (De Morgan).

    Negations stop at atoms, quantifiers, and temporal operators (there
    is no universal quantifier or dual temporal operator in the kernel,
    and a stopped negation is evaluable once its variables are bound).
    Negated comparisons flip their operator, so ``NOT x = y`` becomes
    the directly evaluable ``x != y``.
    """
    if isinstance(formula, Atom):
        return Not(formula) if negate else formula
    if isinstance(formula, Comparison):
        if negate:
            return Comparison(
                formula.left, _NEGATED_OP[formula.op], formula.right
            )
        return formula
    if isinstance(formula, Not):
        return _push_negations(formula.operand, not negate)
    if isinstance(formula, (And, Or)):
        parts = [_push_negations(f, negate) for f in formula.operands]
        flipped = isinstance(formula, And) == negate  # And+neg or Or+pos → Or
        return Or(*parts) if flipped else And(*parts)
    if isinstance(formula, Exists):
        inner = Exists(
            formula.variables, _push_negations(formula.operand, False)
        )
        return Not(inner) if negate else inner
    if isinstance(formula, Aggregate):
        inner_agg: Formula = Aggregate(
            formula.op, formula.result, formula.over,
            _push_negations(formula.body, False),
        )
        return Not(inner_agg) if negate else inner_agg
    if isinstance(formula, (Prev, Once, Next, Eventually)):
        inner_unary: Formula = type(formula)(
            _push_negations(formula.operand, False), formula.interval
        )
        return Not(inner_unary) if negate else inner_unary
    if isinstance(formula, (Since, Until)):
        inner_binary: Formula = type(formula)(
            _push_negations(formula.left, False),
            _push_negations(formula.right, False),
            formula.interval,
        )
        return Not(inner_binary) if negate else inner_binary
    raise TypeError(
        f"non-kernel node in negation pushing: {type(formula).__name__}"
    )


def _simplify(formula: Formula) -> Formula:
    """Remove double negations; flatten nested AND/OR."""
    if isinstance(formula, (Atom, Comparison)):
        return formula
    if isinstance(formula, Not):
        inner = _simplify(formula.operand)
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)
    if isinstance(formula, (And, Or)):
        node_type = type(formula)
        flat: List[Formula] = []
        for op in formula.operands:
            s = _simplify(op)
            if isinstance(s, node_type):
                flat.extend(s.operands)
            else:
                flat.append(s)
        return node_type(*flat) if len(flat) > 1 else flat[0]
    if isinstance(formula, Exists):
        inner = _simplify(formula.operand)
        if isinstance(inner, Exists) and not (
            set(formula.variables) & set(inner.variables)
        ):
            return Exists(formula.variables + inner.variables, inner.operand)
        return Exists(formula.variables, inner)
    if isinstance(formula, Aggregate):
        return Aggregate(
            formula.op, formula.result, formula.over,
            _simplify(formula.body),
        )
    if isinstance(formula, (Prev, Once, Next, Eventually)):
        return type(formula)(_simplify(formula.operand), formula.interval)
    if isinstance(formula, (Since, Until)):
        return type(formula)(
            _simplify(formula.left),
            _simplify(formula.right),
            formula.interval,
        )
    raise TypeError(f"non-kernel node after desugaring: {type(formula).__name__}")


class _Renamer:
    """Generates fresh variable names for :func:`rename_apart`."""

    def __init__(self, used: Set[str]):
        self.used = set(used)

    def fresh(self, base: str) -> str:
        """A name not used yet, derived from ``base``."""
        if base not in self.used:
            self.used.add(base)
            return base
        i = 2
        while f"{base}_{i}" in self.used:
            i += 1
        name = f"{base}_{i}"
        self.used.add(name)
        return name


def _rename_apart(formula: Formula, renamer: _Renamer) -> Formula:
    if isinstance(formula, (Atom, Comparison)):
        return formula
    if isinstance(formula, Not):
        return Not(_rename_apart(formula.operand, renamer))
    if isinstance(formula, And):
        return And(*[_rename_apart(f, renamer) for f in formula.operands])
    if isinstance(formula, Or):
        return Or(*[_rename_apart(f, renamer) for f in formula.operands])
    if isinstance(formula, Exists):
        mapping: Dict[str, str] = {}
        new_names = []
        for name in formula.variables:
            fresh = renamer.fresh(name)
            new_names.append(fresh)
            if fresh != name:
                mapping[name] = fresh
        body = rename_variables(formula.operand, mapping)
        return Exists(new_names, _rename_apart(body, renamer))
    if isinstance(formula, Aggregate):
        agg_mapping: Dict[str, str] = {}
        agg_names = []
        for name in formula.over:
            fresh = renamer.fresh(name)
            agg_names.append(fresh)
            if fresh != name:
                agg_mapping[name] = fresh
        agg_body = rename_variables(formula.body, agg_mapping)
        return Aggregate(
            formula.op, formula.result, tuple(agg_names),
            _rename_apart(agg_body, renamer),
        )
    if isinstance(formula, (Prev, Once, Next, Eventually)):
        return type(formula)(
            _rename_apart(formula.operand, renamer), formula.interval
        )
    if isinstance(formula, (Since, Until)):
        return type(formula)(
            _rename_apart(formula.left, renamer),
            _rename_apart(formula.right, renamer),
            formula.interval,
        )
    raise TypeError(f"non-kernel node: {type(formula).__name__}")


def rename_apart(formula: Formula) -> Formula:
    """Alpha-rename a kernel formula so all bound variables are distinct
    from each other and from the formula's free variables."""
    return _rename_apart(formula, _Renamer(set(formula.free_vars)))


def is_kernel(formula: Formula) -> bool:
    """Whether every node of ``formula`` is a kernel node."""
    return all(isinstance(f, KERNEL_TYPES) for f in formula.walk())


def normalize(formula: Formula) -> Formula:
    """Full pipeline: desugar, simplify, alpha-rename apart.

    The result is in kernel form, has the same free variables and the
    same satisfying valuations as the input, and is what the safety
    checker and both evaluators consume.
    """
    return rename_apart(_simplify(_push_negations(_desugar(formula))))
