"""Safe-range (monitorability) analysis.

A constraint can be checked against finite database states only if its
answers are determined by the data — the classical *safe-range*
requirement, extended here to the temporal operators the way the
bounded-history encoding needs:

* ``PREV[I] f`` and ``ONCE[I] f``: ``f`` must itself be safe, because
  the auxiliary relation materialises ``f``'s satisfying valuations.
* ``f SINCE[I] g``: ``g`` must be safe (anchors are created from its
  answers), ``fv(f) ⊆ fv(g)`` (anchors must bind every variable the
  survival test needs), and ``f`` must be evaluable *given* ``fv(g)``
  bound — so ``NOT p(x) SINCE q(x)`` is fine.
* a negated conjunct is evaluable once the positive conjuncts have
  bound its free variables; order comparisons need both sides bound;
  an equality binds one side from the other.

The central routine is :func:`analyze`, a planner that decides whether
a kernel formula is evaluable given a set of already-bound variables,
and in what order a conjunction's parts must be processed.  The
evaluators (:mod:`repro.core.foeval`) execute exactly the plans this
module produces, so "passes :func:`check_safe`" and "evaluates without
error" coincide by construction.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.core.formulas import (
    Aggregate,
    And,
    Atom,
    Comparison,
    Eventually,
    Exists,
    Formula,
    Next,
    Not,
    Once,
    Or,
    Prev,
    Since,
    Until,
    Var,
)
from repro.core.paths import ROOT, FormulaPath, walk_with_paths
from repro.errors import UnsafeFormulaError

EMPTY: FrozenSet[str] = frozenset()


def analyze(formula: Formula, bound: FrozenSet[str] = EMPTY) -> Optional[FrozenSet[str]]:
    """Decide evaluability of a kernel ``formula`` given ``bound`` variables.

    Returns:
        The set of variables bound *after* evaluating the formula in a
        context binding ``bound`` (always a superset of ``bound``), or
        ``None`` if the formula cannot be evaluated yet in that context
        (it may become evaluable once more variables are bound, which
        is how conjunction planning uses this function).
    """
    if isinstance(formula, Atom):
        return bound | formula.free_vars
    if isinstance(formula, (Prev, Once, Since, Next, Eventually, Until)):
        # internal safety is checked once, in check_safe(); as a
        # conjunct, a temporal node behaves like an atom over its
        # virtual relation.
        return bound | formula.free_vars
    if isinstance(formula, Aggregate):
        # body safety is checked once, in check_safe(); as a conjunct
        # the aggregation produces (group vars + result) bindings
        return bound | formula.free_vars
    if isinstance(formula, Comparison):
        return _analyze_comparison(formula, bound)
    if isinstance(formula, Not):
        inner_fv = formula.operand.free_vars
        if not inner_fv <= bound:
            return None
        if analyze(formula.operand, bound) is None:
            return None
        return bound
    if isinstance(formula, And):
        order = order_conjuncts(formula.operands, bound)
        if order is None:
            return None
        result = bound
        for index in order:
            step = analyze(formula.operands[index], result)
            assert step is not None, "planner accepted an unprocessable conjunct"
            result = step
        return result
    if isinstance(formula, Or):
        results = []
        for branch in formula.operands:
            r = analyze(branch, bound)
            if r is None:
                return None
            results.append(r)
        if len(set(results)) != 1:
            return None
        return results[0]
    if isinstance(formula, Exists):
        inner = analyze(formula.operand, bound)
        if inner is None:
            return None
        missing = frozenset(formula.variables) - inner
        if missing:
            return None
        return inner - frozenset(formula.variables)
    raise UnsafeFormulaError(
        f"formula is not in kernel form (found {type(formula).__name__}): "
        f"{formula} — run normalize() first"
    )


def _analyze_comparison(
    cmp: Comparison, bound: FrozenSet[str]
) -> Optional[FrozenSet[str]]:
    left_var = cmp.left.name if isinstance(cmp.left, Var) else None
    right_var = cmp.right.name if isinstance(cmp.right, Var) else None
    left_bound = left_var is None or left_var in bound
    right_bound = right_var is None or right_var in bound
    if cmp.op == "=":
        if left_bound or right_bound:
            return bound | cmp.free_vars
        return None
    if left_bound and right_bound:
        return bound
    return None


def order_conjuncts(
    conjuncts: Sequence[Formula], bound: FrozenSet[str] = EMPTY
) -> Optional[List[int]]:
    """Plan a processing order for a conjunction.

    Greedy rounds: repeatedly process the first conjunct evaluable under
    the variables bound so far.  Returns the order as a list of indices,
    or ``None`` if some conjuncts can never be scheduled.
    """
    remaining = list(range(len(conjuncts)))
    order: List[int] = []
    current = bound
    while remaining:
        progressed = False
        for index in list(remaining):
            result = analyze(conjuncts[index], current)
            if result is not None:
                order.append(index)
                remaining.remove(index)
                current = result
                progressed = True
                break
        if not progressed:
            return None
    return order


def locate_unsafe(
    formula: Formula,
    bound: FrozenSet[str] = EMPTY,
    path: FormulaPath = ROOT,
) -> Tuple[FormulaPath, Formula, str]:
    """Find the *innermost* subformula responsible for unevaluability.

    Descends through negations, stuck conjuncts, unsafe disjuncts, and
    quantifier bodies until no further blame can be assigned.  Returns
    ``(path, node, reason)`` where ``path`` addresses ``node`` within
    the ``formula`` passed at the top of the recursion.  Only
    meaningful when ``analyze(formula, bound)`` is ``None``.
    """
    if isinstance(formula, Not):
        loose = formula.operand.free_vars - bound
        if loose:
            return path, formula, (
                f"negation {formula} has free variables {sorted(loose)} "
                f"not bound by any positive conjunct"
            )
        return locate_unsafe(formula.operand, bound, path.child(0))
    if isinstance(formula, Comparison):
        return path, formula, (
            f"comparison {formula} needs its variables bound by other "
            f"conjuncts (bound here: {sorted(bound) or '{}'})"
        )
    if isinstance(formula, And):
        order = order_conjuncts(formula.operands, bound)
        if order is None:
            # replay the greedy planner to find the bindings actually
            # available when the first conjunct gets stuck, then blame
            # inside that conjunct
            remaining = list(range(len(formula.operands)))
            current = bound
            progressed = True
            while progressed and remaining:
                progressed = False
                for index in list(remaining):
                    result = analyze(formula.operands[index], current)
                    if result is not None:
                        remaining.remove(index)
                        current = result
                        progressed = True
                        break
            stuck = [str(formula.operands[i]) for i in remaining]
            first = remaining[0]
            inner_path, inner_node, inner_reason = locate_unsafe(
                formula.operands[first], current, path.child(first)
            )
            return inner_path, inner_node, (
                f"{inner_reason} (conjunction cannot be ordered; stuck "
                f"conjuncts: {'; '.join(stuck)})"
            )
    if isinstance(formula, Or):
        for index, branch in enumerate(formula.operands):
            if analyze(branch, bound) is None:
                inner_path, inner_node, inner_reason = locate_unsafe(
                    branch, bound, path.child(index)
                )
                return inner_path, inner_node, (
                    f"disjunct {branch} is unsafe: " + inner_reason
                )
        results = {analyze(b, bound) for b in formula.operands}
        if len(results) > 1:
            return path, formula, (
                f"disjuncts of {formula} bind different variable sets; "
                f"each disjunct must bind the same free variables"
            )
    if isinstance(formula, Exists):
        inner = analyze(formula.operand, bound)
        if inner is None:
            return locate_unsafe(formula.operand, bound, path.child(0))
        missing = frozenset(formula.variables) - inner
        if missing:
            return path, formula, (
                f"quantified variables {sorted(missing)} of {formula} are "
                f"not bound by the body"
            )
    return path, formula, f"subformula {formula} is not evaluable"


def explain_unsafe(formula: Formula, bound: FrozenSet[str] = EMPTY) -> str:
    """Produce a human-readable reason why ``formula`` is unevaluable.

    The reason blames the *innermost* offending subformula (found by
    :func:`locate_unsafe`); when that subformula is not the whole
    formula, its path is appended as an ``[at ...]`` breadcrumb.
    """
    path, _node, reason = locate_unsafe(formula, bound)
    if path.is_root:
        return reason
    return f"{reason} [at {path.render(formula)}]"


def check_safe(formula: Formula) -> None:
    """Verify a kernel formula is safely evaluable from scratch.

    Checks the internal conditions of every temporal subformula, then
    overall evaluability.  Raises :class:`UnsafeFormulaError` with an
    explanation on failure; returns ``None`` on success.
    """
    check_node_conditions(formula)
    if analyze(formula, EMPTY) is None:
        raise UnsafeFormulaError(explain_unsafe(formula, EMPTY))


def check_node_conditions(formula: Formula) -> None:
    """The per-node half of :func:`check_safe`: temporal-operand and
    aggregation well-formedness, everywhere in the formula — including
    branches an optimiser might later fold away."""
    for sub in formula.walk():
        if sub.is_future and not getattr(sub, "interval").is_bounded:
            raise UnsafeFormulaError(
                f"future operator {sub} has an unbounded interval; "
                f"bounded-future constraints are monitorable with "
                f"finite delay only when every future window is finite"
            )
        if isinstance(sub, Aggregate):
            if analyze(sub.body, EMPTY) is None:
                raise UnsafeFormulaError(
                    "aggregate body must be safe on its own: "
                    + explain_unsafe(sub.body, EMPTY)
                )
            loose = frozenset(sub.over) - sub.body.free_vars
            if loose:
                raise UnsafeFormulaError(
                    f"aggregated variables {sorted(loose)} do not occur "
                    f"in the aggregate body (in {sub})"
                )
            if sub.result in sub.body.free_vars:
                raise UnsafeFormulaError(
                    f"result variable {sub.result!r} also occurs in the "
                    f"aggregate body (in {sub}); use a fresh name"
                )
        elif isinstance(sub, (Prev, Once, Next, Eventually)):
            if analyze(sub.operand, EMPTY) is None:
                raise UnsafeFormulaError(
                    f"operand of {type(sub).__name__} must be safe on its "
                    f"own: " + explain_unsafe(sub.operand, EMPTY)
                )
        elif isinstance(sub, (Since, Until)):
            word = type(sub).__name__.upper()
            if analyze(sub.right, EMPTY) is None:
                raise UnsafeFormulaError(
                    f"right operand of {word} must be safe on its own: "
                    + explain_unsafe(sub.right, EMPTY)
                )
            extra = sub.left.free_vars - sub.right.free_vars
            if extra:
                raise UnsafeFormulaError(
                    f"left operand of {word} uses variables "
                    f"{sorted(extra)} that its right operand does not "
                    f"bind (in {sub})"
                )
            if analyze(sub.left, frozenset(sub.right.free_vars)) is None:
                raise UnsafeFormulaError(
                    f"left operand of {word} is not evaluable even with "
                    "the right operand's variables bound: "
                    + explain_unsafe(sub.left, frozenset(sub.right.free_vars))
                )


def collect_unsafe(
    formula: Formula,
) -> List[Tuple[FormulaPath, Formula, str]]:
    """All safety problems of a kernel formula, each with a path.

    The exception-based :func:`check_safe` stops at the first problem;
    this variant (used by the linter) gathers every per-node condition
    violation, then — only if the nodes themselves are fine — the
    top-level evaluability failure.  Paths address the innermost node
    to blame where one can be found.
    """

    def deeper(base: FormulaPath, operand: Formula,
               bound: FrozenSet[str]) -> FormulaPath:
        inner_path, _node, _reason = locate_unsafe(operand, bound)
        return FormulaPath(base.steps + inner_path.steps)

    problems: List[Tuple[FormulaPath, Formula, str]] = []
    for path, sub in walk_with_paths(formula):
        if sub.is_future and not getattr(sub, "interval").is_bounded:
            problems.append((path, sub, (
                f"future operator {sub} has an unbounded interval; "
                f"bounded-future constraints are monitorable with "
                f"finite delay only when every future window is finite"
            )))
        if isinstance(sub, Aggregate):
            if analyze(sub.body, EMPTY) is None:
                problems.append((deeper(path.child(0), sub.body, EMPTY),
                                 sub.body,
                                 "aggregate body must be safe on its own: "
                                 + explain_unsafe(sub.body, EMPTY)))
            loose = frozenset(sub.over) - sub.body.free_vars
            if loose:
                problems.append((path, sub, (
                    f"aggregated variables {sorted(loose)} do not occur "
                    f"in the aggregate body (in {sub})"
                )))
            if sub.result in sub.body.free_vars:
                problems.append((path, sub, (
                    f"result variable {sub.result!r} also occurs in the "
                    f"aggregate body (in {sub}); use a fresh name"
                )))
        elif isinstance(sub, (Prev, Once, Next, Eventually)):
            if analyze(sub.operand, EMPTY) is None:
                problems.append((deeper(path.child(0), sub.operand, EMPTY),
                                 sub.operand,
                                 f"operand of {type(sub).__name__} must be "
                                 f"safe on its own: "
                                 + explain_unsafe(sub.operand, EMPTY)))
        elif isinstance(sub, (Since, Until)):
            word = type(sub).__name__.upper()
            right_fv = frozenset(sub.right.free_vars)
            if analyze(sub.right, EMPTY) is None:
                problems.append((deeper(path.child(1), sub.right, EMPTY),
                                 sub.right,
                                 f"right operand of {word} must be safe on "
                                 f"its own: "
                                 + explain_unsafe(sub.right, EMPTY)))
            extra = sub.left.free_vars - sub.right.free_vars
            if extra:
                problems.append((path, sub, (
                    f"left operand of {word} uses variables "
                    f"{sorted(extra)} that its right operand does not "
                    f"bind (in {sub})"
                )))
            elif analyze(sub.left, right_fv) is None:
                problems.append((deeper(path.child(0), sub.left, right_fv),
                                 sub.left,
                                 f"left operand of {word} is not evaluable "
                                 f"even with the right operand's variables "
                                 f"bound: "
                                 + explain_unsafe(sub.left, right_fv)))
    if not problems and analyze(formula, EMPTY) is None:
        located_path, located_node, reason = locate_unsafe(formula, EMPTY)
        problems.append((located_path, located_node, reason))
    return problems


def is_safe(formula: Formula) -> bool:
    """Boolean form of :func:`check_safe`."""
    try:
        check_safe(formula)
    except UnsafeFormulaError:
        return False
    return True
