"""Violation reporting.

A constraint is an (implicitly universally closed) formula that must
hold at every state of the history.  When it fails, the checker reports
a :class:`Violation` carrying the *witnesses*: the valuations of the
constraint's free variables for which the formula is false at that
state (an empty-tuple witness for closed constraints).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.db.algebra import Table
from repro.db.types import Value
from repro.temporal.clock import Timestamp


class Violation:
    """One constraint failure at one history state."""

    __slots__ = ("constraint", "time", "index", "witnesses")

    def __init__(
        self,
        constraint: str,
        time: Timestamp,
        index: int,
        witnesses: Table,
    ):
        self.constraint = constraint
        self.time = time
        self.index = index
        self.witnesses = witnesses

    @property
    def witness_count(self) -> int:
        """Number of violating valuations (1 for closed constraints)."""
        return max(1, len(self.witnesses))

    def witness_dicts(self) -> List[Dict[str, Value]]:
        """Witnesses as ``{variable: value}`` dicts (deterministic order)."""
        return list(self.witnesses.assignments())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Violation)
            and self.constraint == other.constraint
            and self.time == other.time
            and self.index == other.index
            and self.witnesses == other.witnesses
        )

    def __repr__(self) -> str:
        if self.witnesses.columns:
            detail = f"{len(self.witnesses)} witness(es)"
        else:
            detail = "closed"
        return (
            f"Violation({self.constraint!r} at t={self.time} "
            f"[state {self.index}], {detail})"
        )


class StepReport:
    """Outcome of checking all constraints at one new state."""

    __slots__ = ("time", "index", "violations")

    def __init__(
        self, time: Timestamp, index: int, violations: Sequence[Violation]
    ):
        self.time = time
        self.index = index
        self.violations = list(violations)

    @property
    def ok(self) -> bool:
        """Whether every constraint held at this state."""
        return not self.violations

    def violated_constraints(self) -> List[str]:
        """Names of constraints that failed at this state."""
        return [v.constraint for v in self.violations]

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        if self.ok:
            return f"StepReport(t={self.time}, ok)"
        names = ", ".join(self.violated_constraints())
        return f"StepReport(t={self.time}, violated: {names})"


class RunReport:
    """Aggregated outcome of checking a whole update stream."""

    __slots__ = ("steps",)

    def __init__(self, steps: Sequence[StepReport] = ()):
        self.steps = list(steps)

    def add(self, step: StepReport) -> None:
        """Append one step's report."""
        self.steps.append(step)

    @property
    def ok(self) -> bool:
        """Whether the whole run was violation-free."""
        return all(s.ok for s in self.steps)

    @property
    def violations(self) -> List[Violation]:
        """All violations, in history order."""
        return [v for s in self.steps for v in s.violations]

    @property
    def violation_count(self) -> int:
        """Total number of violations over the run."""
        return sum(len(s.violations) for s in self.steps)

    def first_violation(self) -> Violation:
        """The earliest violation.

        Raises:
            IndexError: if the run was clean.
        """
        return self.violations[0]

    def by_constraint(self) -> Dict[str, List[Violation]]:
        """Group violations by constraint name."""
        grouped: Dict[str, List[Violation]] = {}
        for v in self.violations:
            grouped.setdefault(v.constraint, []).append(v)
        return grouped

    def __iter__(self) -> Iterator[StepReport]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        return (
            f"RunReport({len(self.steps)} steps, "
            f"{self.violation_count} violation(s))"
        )
