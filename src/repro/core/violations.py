"""Violation reporting.

A constraint is an (implicitly universally closed) formula that must
hold at every state of the history.  When it fails, the checker reports
a :class:`Violation` carrying the *witnesses*: the valuations of the
constraint's free variables for which the formula is false at that
state (an empty-tuple witness for closed constraints).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.db.algebra import Table
from repro.db.types import Value
from repro.temporal.clock import Timestamp


class Violation:
    """One constraint failure at one history state."""

    __slots__ = ("constraint", "time", "index", "witnesses")

    def __init__(
        self,
        constraint: str,
        time: Timestamp,
        index: int,
        witnesses: Table,
    ):
        self.constraint = constraint
        self.time = time
        self.index = index
        self.witnesses = witnesses

    @property
    def witness_count(self) -> int:
        """Number of violating valuations (1 for closed constraints)."""
        return max(1, len(self.witnesses))

    def witness_dicts(self) -> List[Dict[str, Value]]:
        """Witnesses as ``{variable: value}`` dicts (deterministic order)."""
        return list(self.witnesses.assignments())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Violation)
            and self.constraint == other.constraint
            and self.time == other.time
            and self.index == other.index
            and self.witnesses == other.witnesses
        )

    def __repr__(self) -> str:
        if self.witnesses.columns:
            detail = f"{len(self.witnesses)} witness(es)"
        else:
            detail = "closed"
        return (
            f"Violation({self.constraint!r} at t={self.time} "
            f"[state {self.index}], {detail})"
        )


class StepReport:
    """Outcome of checking all constraints at one new state.

    Besides the violations, a report can carry two resilience markers:

    * ``deferred`` — constraints whose evaluation was shed because the
      step exceeded its deadline budget (the step is *degraded*: the
      verdicts it does carry are sound, but the deferred constraints
      were not checked at this state);
    * ``fault`` — set when a fault policy *skipped* the step entirely
      (the input was quarantined or dropped; no state transition
      happened).  A faulted report carries no violations.
    """

    __slots__ = ("time", "index", "violations", "deferred", "fault")

    def __init__(
        self,
        time: Timestamp,
        index: int,
        violations: Sequence[Violation],
        deferred: Sequence[str] = (),
        fault: Optional[object] = None,
    ):
        self.time = time
        self.index = index
        self.violations = list(violations)
        self.deferred = tuple(deferred)
        self.fault = fault

    @property
    def ok(self) -> bool:
        """Whether every constraint held at this state."""
        return not self.violations

    @property
    def degraded(self) -> bool:
        """Whether any constraint evaluation was shed at this state."""
        return bool(self.deferred)

    @property
    def skipped(self) -> bool:
        """Whether a fault policy skipped this step (no state change)."""
        return self.fault is not None

    def violated_constraints(self) -> List[str]:
        """Names of constraints that failed at this state."""
        return [v.constraint for v in self.violations]

    def __bool__(self) -> bool:
        return self.ok

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StepReport)
            and self.time == other.time
            and self.index == other.index
            and self.violations == other.violations
            and self.deferred == other.deferred
            and self.fault == other.fault
        )

    def __repr__(self) -> str:
        if self.skipped:
            return f"StepReport(t={self.time}, skipped: {self.fault})"
        marks = f", {len(self.deferred)} deferred" if self.deferred else ""
        if self.ok:
            return f"StepReport(t={self.time}, ok{marks})"
        names = ", ".join(self.violated_constraints())
        return f"StepReport(t={self.time}, violated: {names}{marks})"


class RunReport:
    """Aggregated outcome of checking a whole update stream."""

    __slots__ = ("steps",)

    def __init__(self, steps: Sequence[StepReport] = ()):
        self.steps = list(steps)

    def add(self, step: StepReport) -> None:
        """Append one step's report."""
        self.steps.append(step)

    @property
    def ok(self) -> bool:
        """Whether the whole run was violation-free."""
        return all(s.ok for s in self.steps)

    @property
    def violations(self) -> List[Violation]:
        """All violations, in history order."""
        return [v for s in self.steps for v in s.violations]

    @property
    def violation_count(self) -> int:
        """Total number of violations over the run."""
        return sum(len(s.violations) for s in self.steps)

    @property
    def degraded_steps(self) -> List[StepReport]:
        """Steps whose constraint evaluation was partially shed."""
        return [s for s in self.steps if s.degraded]

    @property
    def skipped_steps(self) -> List[StepReport]:
        """Steps a fault policy skipped (inputs that never applied)."""
        return [s for s in self.steps if s.skipped]

    @property
    def checked_steps(self) -> List[StepReport]:
        """Steps that actually transitioned the database (not skipped)."""
        return [s for s in self.steps if not s.skipped]

    def first_violation(self) -> Violation:
        """The earliest violation.

        Raises:
            IndexError: if the run was clean.
        """
        return self.violations[0]

    def by_constraint(self) -> Dict[str, List[Violation]]:
        """Group violations by constraint name."""
        grouped: Dict[str, List[Violation]] = {}
        for v in self.violations:
            grouped.setdefault(v.constraint, []).append(v)
        return grouped

    def __iter__(self) -> Iterator[StepReport]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RunReport) and self.steps == other.steps

    def __repr__(self) -> str:
        marks = ""
        skipped = len(self.skipped_steps)
        degraded = len(self.degraded_steps)
        if skipped:
            marks += f", {skipped} skipped"
        if degraded:
            marks += f", {degraded} degraded"
        return (
            f"RunReport({len(self.steps)} steps, "
            f"{self.violation_count} violation(s){marks})"
        )
