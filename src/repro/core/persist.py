"""Checkpoint / restore / crash recovery for the incremental checker.

A monitor that never stores the history is exactly the kind of process
one wants to stop and resume: the whole checkpoint is the (small)
auxiliary state plus the current database state.  This module
serialises an :class:`~repro.core.checker.IncrementalChecker` to a
versioned JSON document and restores it to a checker that continues
the run *exactly* where the original left off — the round-trip
property ``resume(save(checker)) ≡ checker`` is verified by property
tests.

Constraints are stored as their concrete syntax (``str(formula)``),
which the parser round-trips; auxiliary relations are stored in the
checker's bottom-up registration order, which reconstruction
reproduces deterministically from the constraints.

Crash safety is layered on top:

* :func:`save_checker` writes **atomically** (temp file + rename), so
  a crash mid-checkpoint can never leave a torn checkpoint behind;
* :class:`RunJournal` keeps a **journal** of every applied
  ``(timestamp, transaction)`` pair between periodic automatic
  checkpoints (one JSONL record per step, flushed immediately);
* :func:`recover` restores the last checkpoint and replays the journal,
  resuming a killed monitor at exactly the last completed step.

The journal directory layout is two files::

    <dir>/checkpoint.json   # last atomic checkpoint
    <dir>/journal.jsonl     # steps applied since that checkpoint

Records are appended *after* a step commits, so a quarantined or
faulted input never reaches the journal and a crash mid-step loses at
most that one uncommitted step.  A journal tail torn by a crash is
detected during recovery and reported as
:class:`~repro.errors.RecoveryError`, never as a raw parse exception.

Two durability levels exist.  The default (``sync=False``) flushes
every record to the OS, which survives a *process* kill but can lose
acknowledged steps to a *host* crash (the page cache dies with the
machine).  ``sync=True`` additionally ``fsync``\\ s every journal
record, the checkpoint temp file before its rename, and the journal
directory after the rename — the full write-ahead discipline — at the
cost of one fsync per step.  Shard worker journals
(:mod:`repro.shard`) default to ``sync=True`` because a shard's
acknowledgement is consumed by the supervisor as a durability promise.

A journal directory is additionally guarded by a ``journal.lock``
file: a second live writer attaching to the same directory is refused
(its records would interleave and corrupt the tail), while a lock left
behind by a dead process is detected by pid-liveness and stolen.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.core.auxiliary import OnceState, PrevState, SinceState
from repro.core.checker import Constraint, IncrementalChecker
from repro.core.parser import parse
from repro.core.violations import RunReport
from repro.db.algebra import Table
from repro.db.database import DatabaseState
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.errors import MonitorError, RecoveryError, ReproError

FORMAT_VERSION = 1

#: File names inside a journal directory.
CHECKPOINT_NAME = "checkpoint.json"
JOURNAL_NAME = "journal.jsonl"
LOCK_NAME = "journal.lock"

PathLike = Union[str, Path]


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a just-renamed entry survives a host crash."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def checkpoint_dict(checker: IncrementalChecker) -> dict:
    """Serialise a checker to a JSON-able checkpoint document."""
    aux_states: List[dict] = []
    for node, aux in checker._aux.items():
        if isinstance(aux, PrevState):
            aux_states.append(
                {
                    "type": "prev",
                    "last_time": aux._last_time,
                    "columns": list(aux._last_table.columns),
                    "rows": sorted(
                        [list(r) for r in aux._last_table.rows], key=repr
                    ),
                }
            )
        elif isinstance(aux, (OnceState, SinceState)):
            aux_states.append(
                {
                    "type": "once" if isinstance(aux, OnceState) else "since",
                    "anchors": sorted(
                        (
                            [list(valuation), list(times)]
                            for valuation, times in aux._anchors.anchors.items()
                        ),
                        key=repr,
                    ),
                }
            )
        else:  # pragma: no cover - no other aux kinds exist
            raise MonitorError(f"cannot checkpoint {type(aux).__name__}")
    return {
        "version": FORMAT_VERSION,
        "schema": checker.schema.to_dict(),
        "constraints": [
            {"name": c.name, "formula": str(c.formula)}
            for c in checker.constraints
        ],
        "collapse_unbounded": checker.collapse_unbounded,
        "share_subformulas": checker.share_subformulas,
        "time": checker._time,
        "index": checker._index,
        "state": checker.state.to_dict(),
        "aux": aux_states,
    }


def restore_checker(document: dict) -> IncrementalChecker:
    """Rebuild a checker from a checkpoint document."""
    version = document.get("version")
    if isinstance(version, int) and version > FORMAT_VERSION:
        raise MonitorError(
            f"checkpoint format version {version} is newer than this "
            f"build supports (<= {FORMAT_VERSION}); upgrade the library "
            f"to restore it"
        )
    if version != FORMAT_VERSION:
        raise MonitorError(
            f"unsupported checkpoint version: {version!r}"
        )
    schema = DatabaseSchema.from_dict(
        {
            name: [tuple(a) for a in attrs]
            for name, attrs in document["schema"].items()
        }
    )
    constraints = [
        Constraint(entry["name"], parse(entry["formula"]))
        for entry in document["constraints"]
    ]
    state = DatabaseState.from_rows(
        schema,
        {
            name: [tuple(row) for row in rows]
            for name, rows in document["state"].items()
        },
    )
    checker = IncrementalChecker(
        schema,
        constraints,
        initial=state,
        collapse_unbounded=document["collapse_unbounded"],
        share_subformulas=document.get("share_subformulas", False),
    )
    checker._time = document["time"]
    checker._index = document["index"]

    saved = document["aux"]
    nodes = list(checker._aux)
    if len(saved) != len(nodes):
        raise MonitorError(
            f"checkpoint has {len(saved)} auxiliary states but the "
            f"constraints define {len(nodes)} temporal nodes"
        )
    for node, entry in zip(nodes, saved):
        aux = checker._aux[node]
        if isinstance(aux, PrevState):
            if entry["type"] != "prev":
                raise MonitorError("auxiliary state kind mismatch")
            aux._last_time = entry["last_time"]
            aux._last_table = Table(
                tuple(entry["columns"]),
                [tuple(r) for r in entry["rows"]],
            )
        else:
            expected = "once" if isinstance(aux, OnceState) else "since"
            if entry["type"] != expected:
                raise MonitorError("auxiliary state kind mismatch")
            aux._anchors.anchors = {
                tuple(valuation): list(times)
                for valuation, times in entry["anchors"]
            }
    return checker


def save_checker(
    checker: IncrementalChecker, path: PathLike, sync: bool = False
) -> None:
    """Write a checker checkpoint to ``path`` as JSON, atomically.

    The document is written to a sibling temp file and renamed into
    place, so readers (and crash recovery) only ever see either the
    previous complete checkpoint or the new complete one — never a
    torn write.  With ``sync=True`` the temp file is fsynced before
    the rename and the containing directory after it, so the rename
    itself survives a host crash (rename-without-fsync may surface as
    a zero-length or missing file on some filesystems).
    """
    path = Path(path)
    payload = json.dumps(checkpoint_dict(checker), sort_keys=True) + "\n"
    tmp = path.with_name(path.name + ".tmp")
    if sync:
        with open(tmp, "w") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
    else:
        tmp.write_text(payload)
    os.replace(tmp, path)
    if sync:
        _fsync_dir(path.parent)


def load_checker(path: PathLike) -> IncrementalChecker:
    """Restore a checker from a checkpoint file.

    Raises:
        MonitorError: if the file is missing, unreadable, not valid
            JSON, structurally incomplete, or written by an unsupported
            (including newer) format version — always with the path
            and reason; raw ``FileNotFoundError``/``JSONDecodeError``/
            ``KeyError`` never escape.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise MonitorError(
            f"checkpoint {path} does not exist"
        ) from None
    except OSError as exc:
        raise MonitorError(
            f"cannot read checkpoint {path}: {exc}"
        ) from None
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise MonitorError(
            f"malformed checkpoint {path}: not valid JSON ({exc})"
        ) from None
    if not isinstance(document, dict):
        raise MonitorError(
            f"malformed checkpoint {path}: expected a JSON object, "
            f"got {type(document).__name__}"
        )
    try:
        return restore_checker(document)
    except (KeyError, TypeError, AttributeError) as exc:
        raise MonitorError(
            f"malformed checkpoint {path}: missing or ill-typed field "
            f"({type(exc).__name__}: {exc})"
        ) from None


# ----------------------------------------------------------------------
# journaled auto-checkpointing
# ----------------------------------------------------------------------


class JournalLock:
    """Single-writer guard for a journal directory.

    Two live processes appending to one ``journal.jsonl`` would
    interleave records and corrupt the tail, so :class:`RunJournal`
    takes this lock on attach.  The lock file holds the owner's pid; a
    lock whose owner is no longer alive (the crash-recovery case) is
    stolen rather than refused, so a killed monitor never wedges its
    own journal directory.
    """

    def __init__(self, directory: PathLike):
        self.path = Path(directory) / LOCK_NAME
        self._held = False

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # pragma: no cover - exists, not ours
            return True
        return True

    def acquire(self) -> None:
        """Take the lock, stealing it only from a dead owner.

        Raises:
            MonitorError: when a *live* process holds the lock.
        """
        while not self._held:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                try:
                    owner = int(self.path.read_text().strip() or "-1")
                except (OSError, ValueError):
                    owner = -1
                if owner == os.getpid():
                    self._held = True
                    return
                if owner > 0 and self._pid_alive(owner):
                    raise MonitorError(
                        f"journal directory {self.path.parent} is "
                        f"locked by live process {owner}; a second "
                        f"writer would corrupt the journal"
                    ) from None
                # stale lock from a dead process: steal it
                try:
                    self.path.unlink()
                except FileNotFoundError:  # pragma: no cover - raced
                    pass
                continue
            with os.fdopen(fd, "w") as fh:
                fh.write(str(os.getpid()))
            self._held = True

    def release(self) -> None:
        """Drop the lock (idempotent; only the holder's file is removed)."""
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    @property
    def held(self) -> bool:
        """Whether this instance currently holds the lock."""
        return self._held

    def __repr__(self) -> str:
        state = "held" if self._held else "free"
        return f"JournalLock({self.path}, {state})"


class RunJournal:
    """Write-ahead journal + periodic atomic checkpoints for one run.

    Attach it to a checker, then call :meth:`record` after every
    committed step: the pair is appended to ``journal.jsonl`` and
    flushed; every ``checkpoint_every`` records a fresh atomic
    checkpoint is written and the journal truncated.  The directory is
    therefore always recoverable to the last *completed* step via
    :func:`recover`.
    """

    def __init__(
        self,
        directory: PathLike,
        checkpoint_every: int = 64,
        sync: bool = False,
    ):
        if not isinstance(checkpoint_every, int) or checkpoint_every < 1:
            raise MonitorError(
                f"checkpoint_every must be a positive int, "
                f"got {checkpoint_every!r}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = checkpoint_every
        #: fsync every record and checkpoint (host-crash durability);
        #: the default False survives process kills only
        self.sync = bool(sync)
        self.records_written = 0
        self.checkpoints_written = 0
        self._since_checkpoint = 0
        self._fh = None
        self._lock = JournalLock(self.directory)
        self._lock.acquire()

    @property
    def checkpoint_path(self) -> Path:
        """Path of the checkpoint file inside the journal directory."""
        return self.directory / CHECKPOINT_NAME

    @property
    def steps_since_checkpoint(self) -> int:
        """Journaled steps not yet covered by a checkpoint (the
        checkpoint's age — how much replay a crash right now would
        cost)."""
        return self._since_checkpoint

    @property
    def journal_path(self) -> Path:
        """Path of the journal file inside the journal directory."""
        return self.directory / JOURNAL_NAME

    def attach(self, checker: IncrementalChecker) -> None:
        """Write an initial checkpoint of ``checker`` and open the journal."""
        self.checkpoint(checker)

    def record(
        self,
        time: int,
        txn: Transaction,
        checker: IncrementalChecker,
    ) -> bool:
        """Journal one applied step; maybe auto-checkpoint.

        Returns:
            True when this record triggered an automatic checkpoint.
        """
        if self._fh is None:
            self._fh = open(self.journal_path, "a")
        entry = {"t": time}
        entry.update(txn.to_dict())
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self.records_written += 1
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_every:
            self.checkpoint(checker)
            return True
        return False

    def checkpoint(self, checker: IncrementalChecker) -> None:
        """Write an atomic checkpoint now and truncate the journal.

        The checkpoint is renamed into place *before* the journal is
        truncated; a crash between the two leaves journal records that
        are already covered by the checkpoint, which :func:`recover`
        detects by timestamp and skips.
        """
        save_checker(checker, self.checkpoint_path, sync=self.sync)
        self.checkpoints_written += 1
        if self._fh is not None:
            self._fh.close()
        self._fh = open(self.journal_path, "w")
        if self.sync:
            os.fsync(self._fh.fileno())
            _fsync_dir(self.directory)
        self._since_checkpoint = 0

    def close(self) -> None:
        """Flush and close the journal file; release the writer lock."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._lock.release()

    def __repr__(self) -> str:
        return (
            f"RunJournal({self.directory}, "
            f"every={self.checkpoint_every}, "
            f"{self.records_written} record(s), "
            f"{self.checkpoints_written} checkpoint(s))"
        )


def read_journal(path: PathLike) -> Iterator[Tuple[int, Transaction]]:
    """Parse a journal file, mapping any damage to ``RecoveryError``.

    A record that fails to parse — typically the tail of a journal torn
    by a crash mid-write — is reported with its line number; recovery
    must stop there rather than silently skip, because later records
    would replay against the wrong state.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise RecoveryError(
            f"cannot read journal {path}: {exc}"
        ) from None
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            time = record["t"]
            txn = Transaction.from_dict(record)
        except (ValueError, KeyError, TypeError, ReproError) as exc:
            tail = " (torn tail from a crash mid-write?)" if (
                lineno == len(lines)
            ) else ""
            raise RecoveryError(
                f"{path}:{lineno}: corrupted journal record"
                f"{tail}: {type(exc).__name__}: {exc}"
            ) from None
        if not isinstance(time, int):
            raise RecoveryError(
                f"{path}:{lineno}: corrupted journal record: "
                f"timestamp must be an int, got {time!r}"
            )
        yield time, txn


class RecoveryResult:
    """Outcome of :func:`recover`: the restored checker plus replay facts."""

    __slots__ = (
        "checker", "replayed", "checkpoint_time", "journal_entries"
    )

    def __init__(
        self,
        checker: IncrementalChecker,
        replayed: RunReport,
        checkpoint_time: Optional[int],
        journal_entries: int,
    ):
        #: the restored checker, positioned at the last completed step
        self.checker = checker
        #: step reports produced while replaying the journal
        self.replayed = replayed
        #: checker time as of the restored checkpoint (before replay)
        self.checkpoint_time = checkpoint_time
        #: journal records replayed on top of the checkpoint
        self.journal_entries = journal_entries

    def __repr__(self) -> str:
        return (
            f"RecoveryResult(checkpoint t={self.checkpoint_time}, "
            f"replayed {self.journal_entries} journal record(s), "
            f"now at t={self.checker.now})"
        )


def recover(directory: PathLike) -> RecoveryResult:
    """Restore a crashed run from its journal directory.

    Loads ``checkpoint.json``, then replays every ``journal.jsonl``
    record whose timestamp lies after the checkpoint (records at or
    before it are left-overs of a crash between checkpoint-write and
    journal-truncate, and are skipped).  The returned checker is
    bit-for-bit the checker of an uninterrupted run over the same
    prefix — the chaos suite asserts this across crash points.

    Raises:
        RecoveryError: if the checkpoint or journal is missing,
            corrupt, or inconsistent with the restored state.
    """
    directory = Path(directory)
    try:
        checker = load_checker(directory / CHECKPOINT_NAME)
    except MonitorError as exc:
        raise RecoveryError(f"cannot recover from {directory}: {exc}") from None
    checkpoint_time = checker.now
    replayed = RunReport()
    entries = 0
    journal = directory / JOURNAL_NAME
    if journal.exists():
        for time, txn in read_journal(journal):
            if checker.now is not None and time <= checker.now:
                continue  # already covered by the checkpoint
            try:
                replayed.add(checker.step(time, txn))
            except ReproError as exc:
                raise RecoveryError(
                    f"{journal}: journal record at t={time} does not "
                    f"replay against the restored checkpoint: {exc}"
                ) from None
            entries += 1
    return RecoveryResult(checker, replayed, checkpoint_time, entries)
