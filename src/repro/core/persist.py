"""Checkpoint / restore / crash recovery for the incremental checker.

A monitor that never stores the history is exactly the kind of process
one wants to stop and resume: the whole checkpoint is the (small)
auxiliary state plus the current database state.  This module
serialises an :class:`~repro.core.checker.IncrementalChecker` to a
versioned JSON document and restores it to a checker that continues
the run *exactly* where the original left off — the round-trip
property ``resume(save(checker)) ≡ checker`` is verified by property
tests.

Constraints are stored as their concrete syntax (``str(formula)``),
which the parser round-trips; auxiliary relations are stored in the
checker's bottom-up registration order, which reconstruction
reproduces deterministically from the constraints.

Durability is delegated to the :mod:`repro.store` seam:

* every durable record — checkpoint and journal step alike — is a
  framed line carrying a format version, length prefix, and blake2s
  checksum, so torn writes and bit flips are *detected* instead of
  silently corrupting recovery;
* :class:`RunJournal` appends each applied ``(timestamp,
  transaction)`` pair through a :class:`~repro.store.StateStore`
  backend (checksummed segment WAL by default, in-memory for
  ephemeral runs) with periodic atomic checkpoints;
* :func:`recover` restores the newest usable checkpoint — falling
  back to the retained previous generation when the current one is
  damaged — and replays the journal, **leniently**: a damaged record
  truncates the replay at the last valid record, and the count of
  records lost that way is reported as
  :attr:`RecoveryResult.torn_records`.

State is **tiered** by the paper's bounded-history split
(:mod:`repro.core.bounds`): bounded-window ``ONCE``/``SINCE`` state —
at most ``window + 1`` timestamps per valuation, touched every step —
stays in the hot checkpoint document, while the minimal anchors of
*unbounded* operators spill to the store's SQLite cold tier
(:mod:`repro.store.sqlite`), keyed per aux node and bound to the
checkpoint by per-node digests.  ``cold="auto"`` spills whenever the
backend is durable and ``sqlite3`` is available.

Records are appended *after* a step commits, so a quarantined or
faulted input never reaches the journal and a crash mid-step loses at
most that one uncommitted step.

Three durability levels exist.  ``sync=False`` (default) flushes every
record to the OS, which survives a *process* kill but can lose
acknowledged steps to a *host* crash.  ``sync=True`` additionally
``fsync``\\ s every record and checkpoint boundary — unless the
``REPRO_FSYNC=off`` escape hatch downgrades it (test suites).
``sync="force"`` fsyncs regardless of the environment; the chaos and
durability jobs use it so no environment variable can weaken the
property under test.  Shard worker journals (:mod:`repro.shard`)
default to ``sync=True`` because a shard's acknowledgement is consumed
by the supervisor as a durability promise.

A journal directory is guarded by a ``journal.lock`` file stamped with
the owner's ``(pid, process start token)`` — see
:class:`repro.store.JournalLock` — so a second live writer is refused
while a dead owner's lock (even under a recycled pid) is stolen.

Legacy layouts — plain-JSON checkpoints and ``journal.jsonl`` files
written before the framed store existed — are still recovered
(:func:`load_checker` sniffs the format; :func:`recover` falls back to
the legacy reader when the checkpoint is plain JSON).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.auxiliary import OnceState, PrevState, SinceState
from repro.core.checker import Constraint, IncrementalChecker
from repro.core.parser import parse
from repro.core.violations import RunReport
from repro.db.algebra import Table
from repro.db.database import DatabaseState
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.errors import (
    MonitorError,
    RecoveryError,
    ReproError,
    StoreCorruption,
)
from repro.store import (
    JournalLock,
    MemoryStore,
    SegmentStore,
    StateStore,
    StoreSnapshot,
    decode_record,
    encode_record,
    sqlite_available,
)
from repro.store.lock import LOCK_NAME
from repro.store.record import STORE_MAGIC

FORMAT_VERSION = 1

#: File names inside a journal directory.  ``CHECKPOINT_NAME`` is the
#: framed current checkpoint; ``JOURNAL_NAME`` is the *legacy* plain
#: JSONL journal (the segment backend writes ``wal-*.log`` instead).
CHECKPOINT_NAME = "checkpoint.json"
JOURNAL_NAME = "journal.jsonl"

__all__ = [
    "CHECKPOINT_NAME", "JOURNAL_NAME", "LOCK_NAME", "FORMAT_VERSION",
    "JournalLock", "RunJournal", "RecoveryResult", "checkpoint_dict",
    "restore_checker", "save_checker", "load_checker", "read_journal",
    "recover", "tiered_checkpoint", "merge_cold_rows", "cold_node_ids",
]

PathLike = Union[str, Path]


def checkpoint_dict(checker: IncrementalChecker) -> dict:
    """Serialise a checker to a JSON-able checkpoint document."""
    aux_states: List[dict] = []
    for node, aux in checker._aux.items():
        if isinstance(aux, PrevState):
            aux_states.append(
                {
                    "type": "prev",
                    "last_time": aux._last_time,
                    "columns": list(aux._last_table.columns),
                    "rows": sorted(
                        [list(r) for r in aux._last_table.rows], key=repr
                    ),
                }
            )
        elif isinstance(aux, (OnceState, SinceState)):
            aux_states.append(
                {
                    "type": "once" if isinstance(aux, OnceState) else "since",
                    "anchors": sorted(
                        (
                            [list(valuation), list(times)]
                            for valuation, times in aux._anchors.anchors.items()
                        ),
                        key=repr,
                    ),
                }
            )
        else:  # pragma: no cover - no other aux kinds exist
            raise MonitorError(f"cannot checkpoint {type(aux).__name__}")
    return {
        "version": FORMAT_VERSION,
        "schema": checker.schema.to_dict(),
        "constraints": [
            {"name": c.name, "formula": str(c.formula)}
            for c in checker.constraints
        ],
        "collapse_unbounded": checker.collapse_unbounded,
        "share_subformulas": checker.share_subformulas,
        "time": checker._time,
        "index": checker._index,
        "state": checker.state.to_dict(),
        "aux": aux_states,
    }


def cold_node_ids(checker: IncrementalChecker) -> List[str]:
    """The aux node ids whose state is cold (unbounded ``ONCE``/``SINCE``).

    The paper's encoding makes the split exact: a bounded-window node
    keeps at most ``window + 1`` timestamps per valuation and is read
    every step (hot), while an unbounded node collapses to one minimal
    anchor per valuation — written once, read only at checkpoint and
    recovery time (cold).  Ids are positional (``aux<i>`` in the
    checker's registration order), the same order the checkpoint
    document's ``aux`` list uses.
    """
    ids = []
    for index, (node, aux) in enumerate(checker._aux.items()):
        if isinstance(aux, (OnceState, SinceState)) and (
            not node.interval.is_bounded
        ):
            ids.append(f"aux{index}")
    return ids


def tiered_checkpoint(
    checker: IncrementalChecker, spill: bool = True
) -> Tuple[dict, Dict[str, list]]:
    """Split a checkpoint into its hot document and cold anchor rows.

    Returns ``(document, cold_rows)``: the document is
    :func:`checkpoint_dict` with each cold node's ``anchors`` replaced
    by ``"cold": true``, and ``cold_rows`` maps the node id to the
    extracted ``[valuation, times]`` rows.  With ``spill=False`` (or
    no cold nodes) the document is the full classic checkpoint and
    ``cold_rows`` is empty.
    """
    document = checkpoint_dict(checker)
    cold_rows: Dict[str, list] = {}
    if not spill:
        return document, cold_rows
    for node_id in cold_node_ids(checker):
        index = int(node_id[len("aux"):])
        entry = document["aux"][index]
        cold_rows[node_id] = entry.pop("anchors")
        entry["cold"] = True
    return document, cold_rows


def merge_cold_rows(document: dict, cold_rows: Dict[str, list]) -> dict:
    """Fold spilled cold rows back into a tiered checkpoint document.

    Raises:
        RecoveryError: a document entry is marked cold but the store
            snapshot carries no rows for it (the cold tier and the
            checkpoint disagree about what was spilled).
    """
    for index, entry in enumerate(document.get("aux") or []):
        if not (isinstance(entry, dict) and entry.get("cold")):
            continue
        node_id = f"aux{index}"
        if node_id not in cold_rows:
            raise RecoveryError(
                f"checkpoint marks {node_id} as spilled but the cold "
                f"tier has no rows for it"
            )
        entry.pop("cold")
        entry["anchors"] = cold_rows[node_id]
    return document


def restore_checker(document: dict) -> IncrementalChecker:
    """Rebuild a checker from a checkpoint document."""
    version = document.get("version")
    if isinstance(version, int) and version > FORMAT_VERSION:
        raise MonitorError(
            f"checkpoint format version {version} is newer than this "
            f"build supports (<= {FORMAT_VERSION}); upgrade the library "
            f"to restore it"
        )
    if version != FORMAT_VERSION:
        raise MonitorError(
            f"unsupported checkpoint version: {version!r}"
        )
    schema = DatabaseSchema.from_dict(
        {
            name: [tuple(a) for a in attrs]
            for name, attrs in document["schema"].items()
        }
    )
    constraints = [
        Constraint(entry["name"], parse(entry["formula"]))
        for entry in document["constraints"]
    ]
    state = DatabaseState.from_rows(
        schema,
        {
            name: [tuple(row) for row in rows]
            for name, rows in document["state"].items()
        },
    )
    checker = IncrementalChecker(
        schema,
        constraints,
        initial=state,
        collapse_unbounded=document["collapse_unbounded"],
        share_subformulas=document.get("share_subformulas", False),
    )
    checker._time = document["time"]
    checker._index = document["index"]

    saved = document["aux"]
    nodes = list(checker._aux)
    if len(saved) != len(nodes):
        raise MonitorError(
            f"checkpoint has {len(saved)} auxiliary states but the "
            f"constraints define {len(nodes)} temporal nodes"
        )
    for node, entry in zip(nodes, saved):
        aux = checker._aux[node]
        if isinstance(aux, PrevState):
            if entry["type"] != "prev":
                raise MonitorError("auxiliary state kind mismatch")
            aux._last_time = entry["last_time"]
            aux._last_table = Table(
                tuple(entry["columns"]),
                [tuple(r) for r in entry["rows"]],
            )
        else:
            expected = "once" if isinstance(aux, OnceState) else "since"
            if entry["type"] != expected:
                raise MonitorError("auxiliary state kind mismatch")
            if entry.get("cold") or "anchors" not in entry:
                raise MonitorError(
                    "checkpoint entry was spilled to the cold tier and "
                    "never merged back (recover from the store, not "
                    "the raw document)"
                )
            aux._anchors.anchors = {
                tuple(valuation): list(times)
                for valuation, times in entry["anchors"]
            }
    return checker


def save_checker(
    checker: IncrementalChecker, path: PathLike, sync=False
) -> None:
    """Write a checker checkpoint to ``path``, atomically and framed.

    The document is wrapped in one checksummed frame (magic + length
    prefix + blake2s digest, :mod:`repro.store.record`), written to a
    sibling temp file, and renamed into place — readers and crash
    recovery only ever see a complete old or complete new checkpoint,
    and any later torn write or bit flip fails the checksum instead of
    parsing as garbage.  ``sync`` follows the store discipline
    (``False`` / ``True`` / ``"force"``).
    """
    from repro.store.base import fsync_dir, fsync_file

    path = Path(path)
    frame = encode_record({
        "epoch": 0,
        "document": checkpoint_dict(checker),
        "cold": {},
    })
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(frame)
        fh.flush()
        fsync_file(fh, sync)
    os.replace(tmp, path)
    fsync_dir(path.parent, sync)


def _checkpoint_frame_document(record: dict, path: Path) -> dict:
    """Unwrap a framed checkpoint record to its document."""
    document = record.get("document")
    if not isinstance(document, dict):
        raise MonitorError(
            f"malformed checkpoint {path}: frame carries no document"
        )
    return document


def load_checker(path: PathLike) -> IncrementalChecker:
    """Restore a checker from a checkpoint file (framed or legacy JSON).

    Raises:
        MonitorError: if the file is missing, unreadable, fails its
            checksum, is not valid JSON, structurally incomplete, or
            written by an unsupported (including newer) format version
            — always with the path and reason; raw
            ``FileNotFoundError``/``JSONDecodeError``/``KeyError``
            never escape.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        raise MonitorError(
            f"checkpoint {path} does not exist"
        ) from None
    except OSError as exc:
        raise MonitorError(
            f"cannot read checkpoint {path}: {exc}"
        ) from None
    if data.lstrip().startswith(STORE_MAGIC.encode("ascii") + b" "):
        try:
            record = decode_record(data.strip(), path=path, offset=0)
        except StoreCorruption as exc:
            raise MonitorError(
                f"corrupt checkpoint {path}: {exc}"
            ) from None
        document = _checkpoint_frame_document(record, path)
    else:
        # legacy plain-JSON checkpoint (pre-store format)
        try:
            document = json.loads(data.decode("utf-8", errors="strict"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise MonitorError(
                f"malformed checkpoint {path}: not valid JSON ({exc})"
            ) from None
        if not isinstance(document, dict):
            raise MonitorError(
                f"malformed checkpoint {path}: expected a JSON object, "
                f"got {type(document).__name__}"
            )
    try:
        return restore_checker(document)
    except (KeyError, TypeError, AttributeError) as exc:
        raise MonitorError(
            f"malformed checkpoint {path}: missing or ill-typed field "
            f"({type(exc).__name__}: {exc})"
        ) from None


# ----------------------------------------------------------------------
# journaled auto-checkpointing
# ----------------------------------------------------------------------


class RunJournal:
    """Write-ahead journal + periodic atomic checkpoints for one run.

    Attach it to a checker, then call :meth:`record` after every
    committed step: the pair is appended through the store backend and
    every ``checkpoint_every`` records a fresh atomic checkpoint is
    written and the journal segment rotated.  The directory is
    therefore always recoverable to the last *completed* step via
    :func:`recover`.

    Args:
        directory: store directory (required for the segment backend;
            ignored by an explicit in-memory backend).
        checkpoint_every: automatic checkpoint period, in records.
        sync: durability level (``False`` / ``True`` / ``"force"``,
            see the module docstring).
        backend: ``"segment"`` (durable, default), ``"memory"``, or a
            ready-made :class:`~repro.store.StateStore` instance.
        cold: spill unbounded-operator anchors to the store's SQLite
            cold tier — ``"auto"`` (default: spill when the backend is
            durable and ``sqlite3`` exists), ``True`` (require the
            tier), or ``False`` (keep everything in the hot document).
        failpoints: storage failpoint names forwarded to the segment
            backend (chaos tests).
    """

    def __init__(
        self,
        directory: Optional[PathLike] = None,
        checkpoint_every: int = 64,
        sync=False,
        backend="segment",
        cold="auto",
        failpoints=(),
    ):
        if not isinstance(checkpoint_every, int) or checkpoint_every < 1:
            raise MonitorError(
                f"checkpoint_every must be a positive int, "
                f"got {checkpoint_every!r}"
            )
        self.directory = Path(directory) if directory is not None else None
        self.checkpoint_every = checkpoint_every
        #: durability level, passed through to the backend
        self.sync = sync
        if isinstance(backend, StateStore):
            self.store = backend
        elif backend == "memory":
            self.store = MemoryStore()
        elif backend == "segment":
            if self.directory is None:
                raise MonitorError(
                    "the segment journal backend needs a directory"
                )
            self.store = SegmentStore(
                self.directory, sync=sync, failpoints=failpoints
            )
        else:
            raise MonitorError(
                f"unknown journal backend {backend!r}; expected "
                f"'segment', 'memory', or a StateStore instance"
            )
        if cold == "auto":
            self._spill = self.store.durable and sqlite_available()
        elif cold:
            if not sqlite_available():  # pragma: no cover - stdlib absent
                raise MonitorError(
                    "cold=True requires the sqlite3 module"
                )
            self._spill = True
        else:
            self._spill = False
        self.records_written = 0
        self.checkpoints_written = 0
        self._since_checkpoint = 0

    @property
    def spills_cold(self) -> bool:
        """Whether checkpoints spill cold anchors to the SQLite tier."""
        return self._spill

    @property
    def checkpoint_path(self) -> Optional[Path]:
        """Path of the current checkpoint file (None for in-memory)."""
        return getattr(self.store, "checkpoint_path", None)

    @property
    def journal_path(self) -> Optional[Path]:
        """Path of the active journal segment (None for in-memory)."""
        return getattr(self.store, "journal_path", None)

    @property
    def steps_since_checkpoint(self) -> int:
        """Journaled steps not yet covered by a checkpoint (the
        checkpoint's age — how much replay a crash right now would
        cost)."""
        return self._since_checkpoint

    def attach(self, checker: IncrementalChecker) -> None:
        """Write an initial checkpoint of ``checker``."""
        self.checkpoint(checker)

    def record(
        self,
        time: int,
        txn: Transaction,
        checker: IncrementalChecker,
    ) -> bool:
        """Journal one applied step; maybe auto-checkpoint.

        Returns:
            True when this record triggered an automatic checkpoint.
        """
        entry = {"t": time}
        entry.update(txn.to_dict())
        self.store.append(entry)
        self.records_written += 1
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_every:
            self.checkpoint(checker)
            return True
        return False

    def checkpoint(self, checker: IncrementalChecker) -> None:
        """Write an atomic checkpoint now and rotate the journal.

        The checkpoint commits *before* old journal segments are
        reclaimed; a crash between the two leaves records that are
        already covered by the checkpoint, which :func:`recover`
        detects by timestamp and skips.
        """
        document, cold_rows = tiered_checkpoint(
            checker, spill=self._spill
        )
        self.store.checkpoint(document, cold_rows)
        self.checkpoints_written += 1
        self._since_checkpoint = 0

    def abandon(self) -> None:
        """Simulate this journal's process dying (chaos tests): leave
        every on-disk artifact as a kill would, but drop the writer
        lock's in-process claim so recovery in this same process can
        steal it like a respawn."""
        self.store.abandon()

    def close(self) -> None:
        """Flush and close the backend; release the writer lock."""
        self.store.close()

    def __repr__(self) -> str:
        return (
            f"RunJournal({self.directory}, "
            f"every={self.checkpoint_every}, "
            f"backend={type(self.store).__name__}, "
            f"{self.records_written} record(s), "
            f"{self.checkpoints_written} checkpoint(s))"
        )


def read_journal(path: PathLike) -> Iterator[Tuple[int, Transaction]]:
    """Parse a *legacy* plain-JSONL journal file, strictly.

    A record that fails to parse is reported as
    :class:`RecoveryError` with its line number.  This is the strict
    reader for legacy files; recovery itself goes through the store's
    lenient truncate-to-last-valid scan and never raises for a torn
    tail.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise RecoveryError(
            f"cannot read journal {path}: {exc}"
        ) from None
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            time = record["t"]
            txn = Transaction.from_dict(record)
        except (ValueError, KeyError, TypeError, ReproError) as exc:
            tail = " (torn tail from a crash mid-write?)" if (
                lineno == len(lines)
            ) else ""
            raise RecoveryError(
                f"{path}:{lineno}: corrupted journal record"
                f"{tail}: {type(exc).__name__}: {exc}"
            ) from None
        if not isinstance(time, int):
            raise RecoveryError(
                f"{path}:{lineno}: corrupted journal record: "
                f"timestamp must be an int, got {time!r}"
            )
        yield time, txn


class RecoveryResult:
    """Outcome of :func:`recover`: the restored checker plus replay facts."""

    __slots__ = (
        "checker", "replayed", "checkpoint_time", "journal_entries",
        "torn_records", "fallback",
    )

    def __init__(
        self,
        checker: IncrementalChecker,
        replayed: RunReport,
        checkpoint_time: Optional[int],
        journal_entries: int,
        torn_records: int = 0,
        fallback: bool = False,
    ):
        #: the restored checker, positioned at the last completed step
        self.checker = checker
        #: step reports produced while replaying the journal
        self.replayed = replayed
        #: checker time as of the restored checkpoint (before replay)
        self.checkpoint_time = checkpoint_time
        #: journal records replayed on top of the checkpoint
        self.journal_entries = journal_entries
        #: journal records lost to damage (truncated at the last valid
        #: record); 0 for a clean directory
        self.torn_records = torn_records
        #: True when the current checkpoint was damaged and the
        #: retained previous generation was restored instead
        self.fallback = fallback

    def __repr__(self) -> str:
        extra = ""
        if self.torn_records:
            extra += f", {self.torn_records} torn"
        if self.fallback:
            extra += ", fallback"
        return (
            f"RecoveryResult(checkpoint t={self.checkpoint_time}, "
            f"replayed {self.journal_entries} journal record(s), "
            f"now at t={self.checker.now}{extra})"
        )


def _legacy_snapshot(directory: Path) -> StoreSnapshot:
    """Snapshot of a pre-store layout: plain-JSON checkpoint + JSONL
    journal, read with the same lenient truncate-to-last-valid rule."""
    try:
        checker_doc = json.loads(
            (directory / CHECKPOINT_NAME).read_text()
        )
    except (OSError, ValueError) as exc:
        raise RecoveryError(
            f"cannot recover from {directory}: malformed legacy "
            f"checkpoint: {exc}"
        ) from None
    records: List[dict] = []
    torn = 0
    journal = directory / JOURNAL_NAME
    if journal.exists():
        lines = [
            line for line in journal.read_text().splitlines()
            if line.strip()
        ]
        for position, line in enumerate(lines):
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or not isinstance(
                    record.get("t"), int
                ):
                    raise ValueError("not a journal record")
            except ValueError:
                torn = len(lines) - position
                break
            records.append(record)
    return StoreSnapshot(checker_doc, records=records, torn_records=torn)


def _load_snapshot(directory: Path) -> StoreSnapshot:
    """The directory's recoverable state, via the store or legacy path."""
    checkpoint = directory / CHECKPOINT_NAME
    if checkpoint.exists():
        try:
            with open(checkpoint, "rb") as fh:
                head = fh.read(len(STORE_MAGIC) + 1)
        except OSError:
            head = b""
        if head.lstrip()[:1] == b"{":
            return _legacy_snapshot(directory)
    with SegmentStore(directory, lock=False) as store:
        return store.load()


def recover(directory: PathLike) -> RecoveryResult:
    """Restore a crashed run from its journal directory, leniently.

    Loads the newest usable checkpoint (falling back to the retained
    previous generation when the current one fails its checksum or its
    cold-tier digests), merges spilled cold anchors back in, then
    replays every retained journal record whose timestamp lies after
    the checkpoint (records at or before it are left-overs of a crash
    between checkpoint-write and segment-reclaim, and are skipped).
    Journal damage does not abort recovery: the replay is truncated at
    the last valid record and the loss reported via
    :attr:`RecoveryResult.torn_records`.  The returned checker is
    bit-for-bit the checker of an uninterrupted run over the same
    prefix — the chaos suite asserts this across crash points and
    injected corruptions.

    Raises:
        RecoveryError: if no usable checkpoint survives (both
            generations missing or damaged), or a verified journal
            record does not replay against the restored state.
    """
    directory = Path(directory)
    snapshot = _load_snapshot(directory)
    if snapshot.document is None:
        raise RecoveryError(
            f"cannot recover from {directory}: no usable checkpoint "
            f"(missing, or every generation failed verification)"
        )
    try:
        document = merge_cold_rows(snapshot.document, snapshot.cold_rows)
        checker = restore_checker(document)
    except RecoveryError:
        raise
    except (MonitorError, KeyError, TypeError, AttributeError) as exc:
        raise RecoveryError(
            f"cannot recover from {directory}: {exc}"
        ) from None
    checkpoint_time = checker.now
    replayed = RunReport()
    entries = 0
    for record in snapshot.records:
        time = record.get("t")
        if not isinstance(time, int):
            raise RecoveryError(
                f"{directory}: journal record lacks an integer "
                f"timestamp: {record!r}"
            )
        if checker.now is not None and time <= checker.now:
            continue  # already covered by the checkpoint
        try:
            txn = Transaction.from_dict(record)
            replayed.add(checker.step(time, txn))
        except ReproError as exc:
            raise RecoveryError(
                f"{directory}: journal record at t={time} does not "
                f"replay against the restored checkpoint: {exc}"
            ) from None
        entries += 1
    return RecoveryResult(
        checker, replayed, checkpoint_time, entries,
        torn_records=snapshot.torn_records,
        fallback=snapshot.fallback,
    )
