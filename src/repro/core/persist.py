"""Checkpoint / restore for the incremental checker.

A monitor that never stores the history is exactly the kind of process
one wants to stop and resume: the whole checkpoint is the (small)
auxiliary state plus the current database state.  This module
serialises an :class:`~repro.core.checker.IncrementalChecker` to a
versioned JSON document and restores it to a checker that continues
the run *exactly* where the original left off — the round-trip
property ``resume(save(checker)) ≡ checker`` is verified by property
tests.

Constraints are stored as their concrete syntax (``str(formula)``),
which the parser round-trips; auxiliary relations are stored in the
checker's bottom-up registration order, which reconstruction
reproduces deterministically from the constraints.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.auxiliary import OnceState, PrevState, SinceState
from repro.core.checker import Constraint, IncrementalChecker
from repro.core.parser import parse
from repro.db.algebra import Table
from repro.db.database import DatabaseState
from repro.db.schema import DatabaseSchema
from repro.errors import MonitorError

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def checkpoint_dict(checker: IncrementalChecker) -> dict:
    """Serialise a checker to a JSON-able checkpoint document."""
    aux_states: List[dict] = []
    for node, aux in checker._aux.items():
        if isinstance(aux, PrevState):
            aux_states.append(
                {
                    "type": "prev",
                    "last_time": aux._last_time,
                    "columns": list(aux._last_table.columns),
                    "rows": sorted(
                        [list(r) for r in aux._last_table.rows], key=repr
                    ),
                }
            )
        elif isinstance(aux, (OnceState, SinceState)):
            aux_states.append(
                {
                    "type": "once" if isinstance(aux, OnceState) else "since",
                    "anchors": sorted(
                        (
                            [list(valuation), list(times)]
                            for valuation, times in aux._anchors.anchors.items()
                        ),
                        key=repr,
                    ),
                }
            )
        else:  # pragma: no cover - no other aux kinds exist
            raise MonitorError(f"cannot checkpoint {type(aux).__name__}")
    return {
        "version": FORMAT_VERSION,
        "schema": checker.schema.to_dict(),
        "constraints": [
            {"name": c.name, "formula": str(c.formula)}
            for c in checker.constraints
        ],
        "collapse_unbounded": checker.collapse_unbounded,
        "time": checker._time,
        "index": checker._index,
        "state": checker.state.to_dict(),
        "aux": aux_states,
    }


def restore_checker(document: dict) -> IncrementalChecker:
    """Rebuild a checker from a checkpoint document."""
    if document.get("version") != FORMAT_VERSION:
        raise MonitorError(
            f"unsupported checkpoint version: {document.get('version')!r}"
        )
    schema = DatabaseSchema.from_dict(
        {
            name: [tuple(a) for a in attrs]
            for name, attrs in document["schema"].items()
        }
    )
    constraints = [
        Constraint(entry["name"], parse(entry["formula"]))
        for entry in document["constraints"]
    ]
    state = DatabaseState.from_rows(
        schema,
        {
            name: [tuple(row) for row in rows]
            for name, rows in document["state"].items()
        },
    )
    checker = IncrementalChecker(
        schema,
        constraints,
        initial=state,
        collapse_unbounded=document["collapse_unbounded"],
    )
    checker._time = document["time"]
    checker._index = document["index"]

    saved = document["aux"]
    nodes = list(checker._aux)
    if len(saved) != len(nodes):
        raise MonitorError(
            f"checkpoint has {len(saved)} auxiliary states but the "
            f"constraints define {len(nodes)} temporal nodes"
        )
    for node, entry in zip(nodes, saved):
        aux = checker._aux[node]
        if isinstance(aux, PrevState):
            if entry["type"] != "prev":
                raise MonitorError("auxiliary state kind mismatch")
            aux._last_time = entry["last_time"]
            aux._last_table = Table(
                tuple(entry["columns"]),
                [tuple(r) for r in entry["rows"]],
            )
        else:
            expected = "once" if isinstance(aux, OnceState) else "since"
            if entry["type"] != expected:
                raise MonitorError("auxiliary state kind mismatch")
            aux._anchors.anchors = {
                tuple(valuation): list(times)
                for valuation, times in entry["anchors"]
            }
    return checker


def save_checker(checker: IncrementalChecker, path: PathLike) -> None:
    """Write a checker checkpoint to ``path`` as JSON."""
    Path(path).write_text(
        json.dumps(checkpoint_dict(checker), sort_keys=True) + "\n"
    )


def load_checker(path: PathLike) -> IncrementalChecker:
    """Restore a checker from a checkpoint file."""
    try:
        document = json.loads(Path(path).read_text())
    except ValueError as exc:
        raise MonitorError(f"malformed checkpoint: {exc}") from None
    return restore_checker(document)
