"""Human-readable compilation reports for constraints.

``explain(constraint)`` describes what the checker will actually do
for a constraint: the normalised violation formula, every temporal
subformula with the auxiliary encoding chosen for it, and the horizon
analysis — the first thing to reach for when a constraint behaves
unexpectedly or stores more than anticipated.  Exposed on the CLI as
``repro-check analyze --verbose``.
"""

from __future__ import annotations

from typing import List

from repro.core.bounds import clock_horizon, future_horizon
from repro.core.checker import Constraint
from repro.core.formulas import (
    Eventually,
    Formula,
    Next,
    Once,
    Prev,
    Since,
    Until,
)


def describe_encoding(node: Formula) -> str:
    """One line describing the auxiliary encoding of a temporal node."""
    if isinstance(node, Prev):
        return "one state of lookback (previous satisfying valuations)"
    if isinstance(node, Next):
        return "one state of lookahead (buffered, delayed verdict)"
    if isinstance(node, (Once, Since)):
        kind = "anchors" if isinstance(node, Since) else "timestamps"
        if node.interval.is_bounded:
            return (
                f"per-valuation {kind}, pruned beyond "
                f"{node.interval.high} clock units"
            )
        return f"per-valuation minimal timestamp ({kind} collapse)"
    if isinstance(node, (Eventually, Until)):
        return (
            f"buffer scan up to {node.interval.high} clock units ahead "
            f"(delayed verdict)"
        )
    return "unknown"


def explain(constraint: Constraint) -> str:
    """A multi-line compilation report for one constraint."""
    violation = constraint.violation_formula
    lines: List[str] = [
        f"constraint {constraint.name!r}",
        f"  formula:   {constraint.formula}",
        f"  violation: {violation}",
    ]
    nodes = list(dict.fromkeys(violation.temporal_subformulas()))
    if not nodes:
        lines.append("  temporal nodes: none (state-local constraint)")
    else:
        lines.append(f"  temporal nodes ({len(nodes)}, bottom-up):")
        for i, node in enumerate(nodes):
            fv = ", ".join(sorted(node.free_vars)) or "(closed)"
            lines.append(
                f"    [{i}] {type(node).__name__.upper()}{node.interval} "
                f"over ({fv})"
            )
            lines.append(f"        encoding: {describe_encoding(node)}")
    past = clock_horizon(violation)
    future = future_horizon(violation)
    lines.append(
        "  clock lookback: "
        + (
            "unbounded in clock units (space still bounded per encoding)"
            if past is None
            else f"{past} units"
        )
    )
    if violation.has_future:
        lines.append(
            "  verdict delay:  "
            + ("unbounded — NOT monitorable" if future is None
               else f"{future} units (DelayedChecker required)")
        )
    return "\n".join(lines)
