"""The `Monitor` façade — the library's main entry point.

Wraps constraint registration, parsing, compilation, safety checking,
and an exchangeable checking engine behind one object::

    from repro import Monitor, Transaction

    monitor = Monitor(schema)
    monitor.add_constraint(
        "return-window",
        "FORALL p, b. returned(p, b) -> ONCE[0,14] borrowed(p, b)",
    )
    report = monitor.step(3, Transaction.builder()
                              .insert("borrowed", ("ann", 7)).build())
    assert report.ok

Engines:

* ``"incremental"`` (default) — the paper's bounded-history checker;
* ``"naive"`` — stores the history, re-evaluates from scratch each step;
* ``"naive-memo"`` — stores the history with cross-step memoisation;
* ``"active"`` — the ECA-rule (trigger) implementation over the active
  database substrate (:mod:`repro.active`);
* ``"adom"`` — prefix-active-domain semantics (:mod:`repro.core.adom`),
  which accepts constraints outside the safe-range fragment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.checker import Constraint, IncrementalChecker
from repro.core.formulas import Formula
from repro.core.naive import NaiveChecker
from repro.core.parser import parse_constraints
from repro.core.violations import RunReport, StepReport
from repro.db.database import DatabaseState
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.errors import MonitorError
from repro.temporal.clock import Timestamp
from repro.temporal.stream import UpdateStream

ENGINES = ("incremental", "naive", "naive-memo", "active", "adom")


class Monitor:
    """Registers constraints and checks them over an update stream."""

    def __init__(
        self,
        schema: DatabaseSchema,
        engine: str = "incremental",
        initial: Optional[DatabaseState] = None,
        instrumentation=None,
    ):
        """Args:
            schema: the database schema.
            engine: one of :data:`ENGINES`.
            initial: base state the first transaction applies to.
            instrumentation: optional
                :class:`repro.obs.instrument.Instrumentation` (e.g. a
                :class:`repro.obs.instrument.MonitorInstrumentation`)
                receiving runtime telemetry from the engine; ``None``
                (default) disables all hooks.
        """
        if engine not in ENGINES:
            raise MonitorError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        self.schema = schema
        self.engine = engine
        self.initial = initial
        self.instrumentation = instrumentation
        self.constraints: List[Constraint] = []
        self._checker = None
        self._violation_handlers: List = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def add_constraint(
        self, name: str, formula: Union[str, Formula]
    ) -> Constraint:
        """Register one constraint (text or formula) before stepping.

        Compilation (normalisation + safety check + schema validation)
        happens immediately, so unsafe or mistyped constraints fail
        fast with a diagnostic rather than at the first step.
        """
        if self._checker is not None:
            raise MonitorError(
                "constraints must be registered before the first step"
            )
        if any(c.name == name for c in self.constraints):
            raise MonitorError(f"duplicate constraint name {name!r}")
        constraint = Constraint(
            name, formula, require_safe=self.engine != "adom"
        )
        constraint.validate_schema(self.schema)
        if self.engine == "adom":
            from repro.core.adom import check_adom_compatible

            check_adom_compatible(constraint.violation_formula)
        self.constraints.append(constraint)
        return constraint

    def add_constraints_text(self, text: str) -> List[Constraint]:
        """Register a whole constraint file (``[name :] formula ; ...``)."""
        return [
            self.add_constraint(name, formula)
            for name, formula in parse_constraints(text)
        ]

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------

    @property
    def checker(self):
        """The underlying engine (created lazily at first use)."""
        if self._checker is None:
            self._checker = self._build_checker()
        return self._checker

    def _build_checker(self):
        if self.engine == "incremental":
            return IncrementalChecker(
                self.schema, self.constraints, initial=self.initial,
                instrumentation=self.instrumentation,
            )
        if self.engine == "naive":
            return NaiveChecker(
                self.schema, self.constraints, initial=self.initial,
                memoize=False, instrumentation=self.instrumentation,
            )
        if self.engine == "naive-memo":
            return NaiveChecker(
                self.schema, self.constraints, initial=self.initial,
                memoize=True, instrumentation=self.instrumentation,
            )
        if self.engine == "active":
            from repro.active.compiler import ActiveChecker

            return ActiveChecker(
                self.schema, self.constraints, initial=self.initial,
                instrumentation=self.instrumentation,
            )
        from repro.core.adom import ActiveDomainChecker

        return ActiveDomainChecker(
            self.schema, self.constraints, initial=self.initial,
            instrumentation=self.instrumentation,
        )

    def instrument(self, instrumentation) -> None:
        """Attach (or detach, with ``None``) runtime instrumentation.

        Takes effect immediately, including on an already-built engine —
        the hook for resuming from a checkpoint and for toggling
        telemetry mid-run.
        """
        self.instrumentation = instrumentation
        if self._checker is not None:
            self._checker.instrumentation = instrumentation
            engine = getattr(self._checker, "engine", None)
            if engine is not None and hasattr(engine, "instrumentation"):
                engine.instrumentation = instrumentation

    def on_violation(self, handler) -> None:
        """Register ``handler(violation)`` to run on every violation.

        Handlers fire synchronously inside :meth:`step`/:meth:`run`, in
        registration order — the hook for alerting, journaling, or
        compensation logic.  A handler exception propagates to the
        caller (monitoring must not silently drop reactions).
        """
        self._violation_handlers.append(handler)

    def _dispatch(self, report: StepReport) -> StepReport:
        if self._violation_handlers:
            for violation in report.violations:
                for handler in self._violation_handlers:
                    handler(violation)
        return report

    def step(self, time: Timestamp, txn: Transaction) -> StepReport:
        """Apply one transaction at ``time`` and check all constraints."""
        return self._dispatch(self.checker.step(time, txn))

    def step_state(self, time: Timestamp, state: DatabaseState) -> StepReport:
        """Record a full successor state at ``time`` and check."""
        return self._dispatch(self.checker.step_state(time, state))

    def run(self, stream: Union[UpdateStream, Sequence]) -> RunReport:
        """Process a whole update stream; return the aggregate report."""
        if not self._violation_handlers:
            return self.checker.run(stream)
        report = RunReport()
        for time, txn in stream:
            report.add(self.step(time, txn))
        return report

    @property
    def now(self) -> Optional[Timestamp]:
        """Timestamp of the last processed state (None before any)."""
        return self.checker.now if self._checker is not None else None

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Write a checkpoint of the monitoring run to ``path``.

        Only the incremental engine supports checkpointing (its state
        is the small bounded encoding; the naive engines' state is the
        whole history, which defeats the point).
        """
        from repro.core.persist import save_checker

        if self.engine != "incremental":
            raise MonitorError(
                f"checkpointing requires the incremental engine, "
                f"not {self.engine!r}"
            )
        save_checker(self.checker, path)

    @classmethod
    def resume(cls, path) -> "Monitor":
        """Restore a monitor from a checkpoint written by :meth:`save`."""
        from repro.core.persist import load_checker

        checker = load_checker(path)
        monitor = cls(checker.schema, engine="incremental")
        monitor.constraints = list(checker.constraints)
        monitor._checker = checker
        return monitor

    def __repr__(self) -> str:
        return (
            f"Monitor({len(self.constraints)} constraint(s), "
            f"engine={self.engine!r})"
        )
