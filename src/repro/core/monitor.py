"""The `Monitor` façade — the library's main entry point.

Wraps constraint registration, parsing, compilation, safety checking,
and an exchangeable checking engine behind one object::

    from repro import Monitor, Transaction

    monitor = Monitor(schema)
    monitor.add_constraint(
        "return-window",
        "FORALL p, b. returned(p, b) -> ONCE[0,14] borrowed(p, b)",
    )
    report = monitor.step(3, Transaction.builder()
                              .insert("borrowed", ("ann", 7)).build())
    assert report.ok

Engines:

* ``"incremental"`` (default) — the paper's bounded-history checker;
* ``"naive"`` — stores the history, re-evaluates from scratch each step;
* ``"naive-memo"`` — stores the history with cross-step memoisation;
* ``"active"`` — the ECA-rule (trigger) implementation over the active
  database substrate (:mod:`repro.active`);
* ``"adom"`` — prefix-active-domain semantics (:mod:`repro.core.adom`),
  which accepts constraints outside the safe-range fragment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.checker import Constraint, IncrementalChecker
from repro.core.formulas import Formula
from repro.core.naive import NaiveChecker
from repro.core.parser import parse, parse_constraints
from repro.core.violations import RunReport, StepReport
from repro.db.database import DatabaseState
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.errors import HandlerError, HistoryError, MonitorError
from repro.temporal.clock import Timestamp
from repro.temporal.stream import UpdateStream

ENGINES = ("incremental", "naive", "naive-memo", "active", "adom")

#: Engines whose per-constraint evaluation loop supports deadline
#: shedding (the active engine evaluates inside rule firings).
SHEDDING_ENGINES = ("incremental", "naive", "naive-memo", "adom")


class Monitor:
    """Registers constraints and checks them over an update stream."""

    def __init__(
        self,
        schema: DatabaseSchema,
        engine: str = "incremental",
        initial: Optional[DatabaseState] = None,
        instrumentation=None,
        fault_policy=None,
        quarantine_log=None,
        step_deadline=None,
        urgent: Sequence[str] = (),
        strict: bool = False,
        lint_config=None,
        share_subformulas: bool = False,
    ):
        """Args:
            schema: the database schema.
            engine: one of :data:`ENGINES`.
            initial: base state the first transaction applies to.
            instrumentation: optional
                :class:`repro.obs.instrument.Instrumentation` (e.g. a
                :class:`repro.obs.instrument.MonitorInstrumentation`)
                receiving runtime telemetry from the engine; ``None``
                (default) disables all hooks.
            fault_policy: optional
                :class:`~repro.resilience.FaultPolicy` (or its string
                name): ``"fail_fast"``, ``"skip"``, or ``"quarantine"``.
                ``None`` (default) disables the fault boundary entirely
                — faults raise, and the step hot path carries no guard.
            quarantine_log: optional
                :class:`~repro.resilience.QuarantineLog` or a path for
                one; implies ``fault_policy="quarantine"`` when no
                policy is given.
            step_deadline: optional per-step evaluation budget — either
                seconds (a float) or a prepared
                :class:`~repro.resilience.StepBudget`.  When a step
                exceeds it, non-urgent constraint evaluations are shed
                and the step is reported ``degraded``.  Supported by
                the :data:`SHEDDING_ENGINES`.
            urgent: constraint names never shed under deadline pressure
                (only meaningful with ``step_deadline`` seconds).
            strict: lint each constraint at registration and reject it
                with :class:`~repro.errors.LintError` when the linter
                reports an error-severity diagnostic (see
                :mod:`repro.lint`).
            lint_config: optional
                :class:`~repro.lint.LintConfig` used by ``strict``
                registration; defaults to the standard configuration
                (with the safe-range rule disabled for the ``adom``
                engine, which evaluates outside the safe fragment).
            share_subformulas: maintain one auxiliary state per
                rename-equivalence class of temporal subformulas
                instead of one per structurally distinct node, fanning
                each class's virtual table out to its owning
                constraints.  Verdicts are bit-for-bit identical to the
                unshared run; overlapping constraint sets get faster
                steps and less state (see :mod:`repro.analysis.plan`,
                ``repro plan``, and benchmark E14).  Incremental
                engine only.
        """
        if engine not in ENGINES:
            raise MonitorError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        if share_subformulas and engine != "incremental":
            raise MonitorError(
                f"share_subformulas requires the incremental engine, "
                f"not {engine!r}"
            )
        self.schema = schema
        self.engine = engine
        self.share_subformulas = bool(share_subformulas)
        self.initial = initial
        self.instrumentation = instrumentation
        self.constraints: List[Constraint] = []
        self.strict = strict
        self.lint_config = lint_config
        self._checker = None
        self._violation_handlers: List = []
        self._alert_handlers: List = []
        self._journal = None
        self._budget = None
        self._resilience = None
        self._ingest = None
        self._telemetry = None
        self._statewatch = None
        if step_deadline is not None:
            self._configure_deadline(step_deadline, urgent)
        if fault_policy is not None or quarantine_log is not None:
            self._configure_fault_policy(fault_policy, quarantine_log)

    # ------------------------------------------------------------------
    # resilience configuration
    # ------------------------------------------------------------------

    def _metrics(self):
        """The metrics registry behind the instrumentation, if any."""
        return getattr(self.instrumentation, "metrics", None)

    def _publish_sharing_metrics(self, checker) -> None:
        """Expose the checker's subformula-dedup accounting as gauges."""
        metrics = self._metrics()
        if metrics is None:
            return
        stats = checker.sharing_stats()
        metrics.gauge(
            "repro_aux_classes",
            help="auxiliary states maintained (equivalence classes)",
            engine=self.engine,
        ).set(stats["classes"])
        metrics.gauge(
            "repro_aux_shared_nodes",
            help="temporal nodes served by another class member's state",
            engine=self.engine,
        ).set(stats["shared_nodes"])
        metrics.gauge(
            "repro_aux_dedup_ratio",
            help="maintained auxiliary states over distinct temporal "
                 "nodes (1.0 = nothing shared)",
            engine=self.engine,
        ).set(stats["dedup_ratio"])

    def _configure_fault_policy(self, fault_policy, quarantine_log) -> None:
        from repro.resilience import FaultPolicy, QuarantineLog, ResilienceRuntime

        if quarantine_log is not None and not isinstance(
            quarantine_log, QuarantineLog
        ):
            quarantine_log = QuarantineLog(quarantine_log)
        if fault_policy is None:
            fault_policy = FaultPolicy.QUARANTINE
        self._resilience = ResilienceRuntime(
            fault_policy,
            quarantine=quarantine_log,
            metrics=self._metrics(),
            engine=self.engine,
        )

    def _configure_deadline(self, step_deadline, urgent) -> None:
        from repro.resilience import StepBudget

        if self.engine not in SHEDDING_ENGINES:
            raise MonitorError(
                f"step deadlines require an engine with a sheddable "
                f"evaluation loop {SHEDDING_ENGINES}, not {self.engine!r}"
            )
        if not isinstance(step_deadline, StepBudget):
            step_deadline = StepBudget(step_deadline, urgent=urgent)
        if step_deadline.telemetry is None:
            step_deadline.telemetry = self._telemetry
        self._budget = step_deadline
        if self._checker is not None:
            self._checker.budget = step_deadline

    def set_step_deadline(self, step_deadline, urgent: Sequence[str] = ()):
        """Install, replace, or (with ``None``) clear the step budget.

        Takes effect immediately, including on an already-built engine —
        the hook the ingest pipeline uses to arm a tighter deadline
        while its queue runs hot and disarm it once the backlog drains.
        """
        if step_deadline is None:
            self._budget = None
            if self._checker is not None:
                self._checker.budget = None
            return
        self._configure_deadline(step_deadline, urgent)

    def enable_telemetry(self, slo=None, clock=None):
        """Attach end-to-end event-time telemetry (and, optionally, SLOs).

        Stamps every event through the arrival → reorder-release →
        check → verdict path into per-stage latency histograms (see
        :class:`~repro.obs.telemetry.EventTimeTelemetry`), samples
        frontier lag and queue pressure continuously, and — when
        ``slo`` is given — evaluates burn-rate alert rules on every
        verdict, routing fired alerts to :meth:`on_alert` handlers.

        Args:
            slo: anything :func:`repro.obs.slo.coerce_slo_engine`
                accepts — an :class:`~repro.obs.slo.SLOEngine`, specs,
                an SLO document dict, or a path to an SLO file.
            clock: optional wall-clock source (tests inject a fake).

        Must be called before the first step/feed; the pipeline and
        step path pick the telemetry up when they start.  The metric
        families land in the instrumentation's registry when one is
        attached (otherwise in the telemetry's own registry).
        """
        from repro.obs.slo import coerce_slo_engine
        from repro.obs.telemetry import EventTimeTelemetry

        if self._telemetry is not None:
            raise MonitorError("telemetry is already enabled")
        kwargs = {} if clock is None else {"clock": clock}
        self._telemetry = EventTimeTelemetry(
            metrics=self._metrics(), slo=coerce_slo_engine(slo), **kwargs
        )
        if self._budget is not None:
            self._budget.telemetry = self._telemetry
        return self._telemetry

    def enable_statewatch(
        self,
        sample_every: int = 8,
        leak_window: int = 32,
        leak_slope: float = 1.0,
        top_k: int = 8,
        flight=None,
        flight_capacity: int = 256,
    ):
        """Attach the state observatory (and, optionally, a flight box).

        After every step, measures the engine's auxiliary state per
        temporal subformula (via the uniform
        :mod:`~repro.core.statespace` protocol), compares it against
        the analytic per-node bound of
        :func:`repro.core.bounds.node_tuple_bound`, and tracks growth
        and heavy-hitter valuations.  Fired
        :class:`~repro.obs.statewatch.StateAlert` bound/leak alerts
        route to :meth:`on_alert` handlers — the same channel as SLO
        alerts, including handler isolation.

        Args:
            sample_every: cadence (steps) of the expensive work (deep
                byte sizes, sketch updates, metric exports); the bound
                and leak rules run every step regardless.
            leak_window: sliding window (steps) of the growth rule.
            leak_slope: tuples/step slope at which the leak rule fires.
            top_k: heavy-hitter valuations retained per node.
            flight: optional flight recorder — a
                :class:`~repro.obs.flight.FlightRecorder` or a path to
                dump ``repro-flight/1`` artifacts at.
            flight_capacity: ring size when ``flight`` is a path.

        Returns:
            The attached :class:`~repro.obs.statewatch.StateWatch`.
        """
        from repro.obs.flight import FlightRecorder
        from repro.obs.statewatch import StateWatch

        if self._statewatch is not None:
            raise MonitorError("statewatch is already enabled")
        if flight is not None and not isinstance(flight, FlightRecorder):
            flight = FlightRecorder(flight, capacity=flight_capacity)
        self._statewatch = StateWatch(
            metrics=self._metrics(),
            sample_every=sample_every,
            leak_window=leak_window,
            leak_slope=leak_slope,
            top_k=top_k,
            flight=flight,
        )
        return self._statewatch

    def on_alert(self, handler) -> None:
        """Register ``handler(alert)`` to run on every SLO alert.

        Alerts are :class:`~repro.obs.slo.SLOAlert` instances, fired
        synchronously inside :meth:`step` when a burn-rate rule
        crosses its threshold — the same channel discipline as
        :meth:`on_violation`, including handler isolation.
        """
        self._alert_handlers.append(handler)

    def _emit_alerts(self, alerts) -> None:
        if not alerts or not self._alert_handlers:
            return
        failures = []
        for alert in alerts:
            for handler in self._alert_handlers:
                try:
                    handler(alert)
                except Exception as exc:  # noqa: BLE001 — isolation point
                    failures.append((alert, exc))
        if failures:
            raise HandlerError(alerts, failures) from failures[0][1]

    def health(self):
        """The monitor's current state as a mergeable health snapshot.

        A versioned JSON-able dict (``repro-health/1``) aggregating
        stage latencies, frontier lag, ingest/fault/shed accounting,
        journal age, and SLO budget state; see
        :func:`repro.obs.health.build_health`.  Snapshots from N
        shards fold into one with
        :func:`repro.obs.health.merge_health`.
        """
        from repro.obs.health import build_health

        return build_health(self)

    @property
    def telemetry(self):
        """The attached event-time telemetry (None when disabled)."""
        return self._telemetry

    @property
    def statewatch(self):
        """The attached state observatory (None when disabled)."""
        return self._statewatch

    @property
    def resilience(self):
        """The fault-handling runtime (None when no policy is set)."""
        return self._resilience

    @property
    def ingest(self):
        """The last :class:`~repro.ingest.IngestPipeline` fed (or None)."""
        return self._ingest

    @property
    def journal(self):
        """The attached :class:`~repro.core.persist.RunJournal`, if any."""
        return self._journal

    @property
    def budget(self):
        """The per-step :class:`~repro.resilience.StepBudget`, if any."""
        return self._budget

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def add_constraint(
        self, name: str, formula: Union[str, Formula]
    ) -> Constraint:
        """Register one constraint (text or formula) before stepping.

        Compilation (normalisation + safety check + schema validation)
        happens immediately, so unsafe or mistyped constraints fail
        fast with a diagnostic rather than at the first step.
        """
        if self._checker is not None:
            raise MonitorError(
                "constraints must be registered before the first step"
            )
        if any(c.name == name for c in self.constraints):
            raise MonitorError(f"duplicate constraint name {name!r}")
        if isinstance(formula, str):
            formula = parse(formula)
        if self.strict:
            self._lint_registration(name, formula)
        constraint = Constraint(
            name, formula, require_safe=self.engine != "adom"
        )
        constraint.validate_schema(self.schema)
        if self.engine == "adom":
            from repro.core.adom import check_adom_compatible

            check_adom_compatible(constraint.violation_formula)
        self.constraints.append(constraint)
        return constraint

    def _lint_registration(self, name: str, formula: Formula) -> None:
        """Strict-mode gate: reject ``formula`` on lint errors.

        The whole registered set plus the newcomer is linted so
        cross-constraint rules (duplicates) see the new constraint in
        context; previously accepted constraints cannot re-fail, since
        they passed the same gate.
        """
        from repro.lint import LintConfig
        from repro.lint.linter import reject_lint_errors

        config = self.lint_config
        if config is None and self.engine == "adom":
            config = LintConfig(disabled=frozenset({"RTC004"}))
        pairs = [(c.name, c.formula) for c in self.constraints]
        pairs.append((name, formula))
        reject_lint_errors(self.schema, pairs, config)

    def add_constraints_text(self, text: str) -> List[Constraint]:
        """Register a whole constraint file (``[name :] formula ; ...``)."""
        return [
            self.add_constraint(name, formula)
            for name, formula in parse_constraints(text)
        ]

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------

    @property
    def checker(self):
        """The underlying engine (created lazily at first use)."""
        if self._checker is None:
            self._checker = self._build_checker()
            if self._budget is not None:
                self._checker.budget = self._budget
        return self._checker

    def _build_checker(self):
        if self.engine == "incremental":
            checker = IncrementalChecker(
                self.schema, self.constraints, initial=self.initial,
                instrumentation=self.instrumentation,
                share_subformulas=self.share_subformulas,
            )
            self._publish_sharing_metrics(checker)
            return checker
        if self.engine == "naive":
            return NaiveChecker(
                self.schema, self.constraints, initial=self.initial,
                memoize=False, instrumentation=self.instrumentation,
            )
        if self.engine == "naive-memo":
            return NaiveChecker(
                self.schema, self.constraints, initial=self.initial,
                memoize=True, instrumentation=self.instrumentation,
            )
        if self.engine == "active":
            from repro.active.compiler import ActiveChecker

            return ActiveChecker(
                self.schema, self.constraints, initial=self.initial,
                instrumentation=self.instrumentation,
            )
        from repro.core.adom import ActiveDomainChecker

        return ActiveDomainChecker(
            self.schema, self.constraints, initial=self.initial,
            instrumentation=self.instrumentation,
        )

    def instrument(self, instrumentation) -> None:
        """Attach (or detach, with ``None``) runtime instrumentation.

        Takes effect immediately, including on an already-built engine —
        the hook for resuming from a checkpoint and for toggling
        telemetry mid-run.
        """
        self.instrumentation = instrumentation
        if self._resilience is not None:
            self._resilience.metrics = self._metrics()
        if self._checker is not None:
            self._checker.instrumentation = instrumentation
            engine = getattr(self._checker, "engine", None)
            if engine is not None and hasattr(engine, "instrumentation"):
                engine.instrumentation = instrumentation

    def on_violation(self, handler) -> None:
        """Register ``handler(violation)`` to run on every violation.

        Handlers fire synchronously inside :meth:`step`/:meth:`run`, in
        registration order — the hook for alerting, journaling, or
        compensation logic.  Each handler call is isolated: a raising
        handler can neither mask the step's report nor skip the
        handlers after it.  Collected failures are re-raised as one
        :class:`~repro.errors.HandlerError` after dispatch (monitoring
        must not silently drop reactions) — unless a ``skip`` or
        ``quarantine`` fault policy is active, in which case they are
        counted and dead-lettered instead.
        """
        self._violation_handlers.append(handler)

    def _dispatch(self, report: StepReport) -> StepReport:
        if not self._violation_handlers:
            return report
        failures = []
        for violation in report.violations:
            for handler in self._violation_handlers:
                try:
                    handler(violation)
                except Exception as exc:  # noqa: BLE001 — isolation point
                    failures.append((violation, exc))
        if failures:
            resilience = self._resilience
            if resilience is not None and resilience.policy.value != "fail_fast":
                resilience.handle_handler_failures(report, failures)
            else:
                raise HandlerError(report, failures) from failures[0][1]
        return report

    def step(self, time: Timestamp, txn: Transaction) -> StepReport:
        """Apply one transaction at ``time`` and check all constraints.

        With a fault policy configured, input faults (schema,
        transaction, clock, malformed payloads) are intercepted here —
        the step boundary — and skipped or quarantined instead of
        raising; the checker is untouched by a faulted step because
        every engine validates before mutating.
        """
        telemetry = self._telemetry
        if telemetry is None:
            if self._resilience is None and self._journal is None:
                return self._observe_state(
                    self._note(
                        self._dispatch(self.checker.step(time, txn))
                    )
                )
            return self._observe_state(self._guarded_step(time, txn))
        try:
            telemetry.check_begin(time)
        except TypeError:  # unhashable timestamp — the fault boundary's job
            telemetry = None
        if self._resilience is None and self._journal is None:
            report = self._note(self._dispatch(self.checker.step(time, txn)))
        else:
            report = self._guarded_step(time, txn)
        if telemetry is not None:
            self._emit_alerts(telemetry.verdict(time, report))
        return self._observe_state(report)

    def _observe_state(self, report: StepReport) -> StepReport:
        if self._statewatch is not None:
            self._emit_alerts(self._statewatch.observe(self.checker, report))
        return report

    def _note(self, report: StepReport) -> StepReport:
        if self._budget is None or not report.degraded:
            return report
        if self._resilience is not None:
            self._resilience.note_step(report)
            return report
        metrics = self._metrics()
        if metrics is not None:
            from repro.resilience.policy import (
                DEFERRED_EVALS_TOTAL,
                DEGRADED_STEPS_TOTAL,
            )

            metrics.counter(
                DEGRADED_STEPS_TOTAL,
                help="Steps that shed evaluations",
                engine=self.engine,
            ).inc()
            for name in report.deferred:
                metrics.counter(
                    DEFERRED_EVALS_TOTAL,
                    constraint=name,
                    help="Constraint evaluations shed under deadline",
                    engine=self.engine,
                ).inc()
        return report

    def _guarded_step(self, time: Timestamp, txn) -> StepReport:
        from repro.resilience import FAULT_ERRORS, classify_fault

        resilience = self._resilience
        checker = self.checker
        tracer = getattr(self.instrumentation, "tracer", None)
        depth = tracer.open_spans if tracer is not None else 0
        try:
            if resilience is not None and not isinstance(txn, Transaction):
                raise HistoryError(
                    f"stream element at t={time!r} is not a Transaction "
                    f"but {type(txn).__name__}"
                )
            report = checker.step(time, txn)
        except FAULT_ERRORS as exc:
            # abandon any trace spans the failed step left open
            if tracer is not None:
                while tracer.open_spans > depth:
                    tracer.end(error=type(exc).__name__)
            if resilience is None:
                raise
            return resilience.handle(
                classify_fault(exc), exc, time, txn, checker.steps_processed
            )
        if self._journal is not None:
            self._journal_record(time, txn)
        return self._note(self._dispatch(report))

    def _journal_record(self, time: Timestamp, txn: Transaction) -> None:
        from repro.resilience.policy import (
            CHECKPOINTS_TOTAL,
            JOURNAL_RECORDS_TOTAL,
        )

        checkpointed = self._journal.record(time, txn, self.checker)
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter(
                JOURNAL_RECORDS_TOTAL,
                help="Steps appended to the run journal",
                engine=self.engine,
            ).inc()
            if checkpointed:
                metrics.counter(
                    CHECKPOINTS_TOTAL,
                    help="Automatic checkpoints written",
                    engine=self.engine,
                ).inc()

    def step_state(self, time: Timestamp, state: DatabaseState) -> StepReport:
        """Record a full successor state at ``time`` and check."""
        if self._journal is not None:
            raise MonitorError(
                "step_state cannot be journaled (the journal records "
                "transactions); derive a transaction and use step()"
            )
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.check_begin(time)
        report = self._note(
            self._dispatch(self.checker.step_state(time, state))
        )
        if telemetry is not None:
            self._emit_alerts(telemetry.verdict(time, report))
        return self._observe_state(report)

    def run(self, stream: Union[UpdateStream, Sequence]) -> RunReport:
        """Process a whole update stream; return the aggregate report."""
        if (
            not self._violation_handlers
            and self._resilience is None
            and self._journal is None
            and self._budget is None
            and self._telemetry is None
            and self._statewatch is None
        ):
            return self.checker.run(stream)
        report = RunReport()
        for time, txn in stream:
            report.add(self.step(time, txn))
        return report

    def feed(
        self,
        sources,
        watermark: int = 0,
        max_lateness: Optional[int] = None,
        skew=None,
        retry=None,
        queue_capacity: int = 1024,
        backpressure: str = "block",
        consumer_rate: Optional[int] = None,
        pressure_deadline: Optional[float] = None,
        urgent: Sequence[str] = (),
        max_buffer: int = 4096,
    ) -> RunReport:
        """Pull from unordered, unreliable sources until they run dry.

        The ingestion counterpart of :meth:`run`: where ``run`` demands
        a clean, strictly-increasing stream, ``feed`` accepts a list of
        :class:`~repro.ingest.Source`-likes (any iterable of
        ``(time, txn)`` pairs qualifies) and hardens the boundary — a
        watermark reorderer absorbs disorder up to ``watermark`` clock
        units, normalises per-source ``skew``, deduplicates replays,
        and dead-letters too-late events; flaky sources are retried
        per ``retry``; a bounded queue applies ``backpressure``.  See
        :class:`~repro.ingest.IngestPipeline` for every knob, and
        :attr:`ingest` for the accounting after the run.
        """
        from repro.ingest import IngestPipeline

        pipeline = IngestPipeline(
            self,
            sources,
            watermark=watermark,
            max_lateness=max_lateness,
            skew=skew,
            retry=retry,
            queue_capacity=queue_capacity,
            backpressure=backpressure,
            consumer_rate=consumer_rate,
            pressure_deadline=pressure_deadline,
            urgent=urgent,
            max_buffer=max_buffer,
        )
        self._ingest = pipeline
        return pipeline.run()

    def record_fault(
        self,
        kind: str,
        reason: str,
        time: Optional[Timestamp] = None,
        payload=None,
    ) -> StepReport:
        """Report an out-of-band fault (e.g. an unparseable stream line).

        For callers that decode the stream themselves — such as the CLI
        reading a history file leniently — and hit records that never
        become a transaction at all.  Routed through the same fault
        policy as step-boundary faults, so it raises under ``fail_fast``
        (or with no policy configured).
        """
        error = HistoryError(reason)
        if self._resilience is None:
            raise error
        from repro.resilience import classify_fault

        return self._resilience.handle(
            classify_fault(error) if kind is None else kind,
            error,
            time,
            payload,
            self.checker.steps_processed,
        )

    @property
    def now(self) -> Optional[Timestamp]:
        """Timestamp of the last processed state (None before any)."""
        return self.checker.now if self._checker is not None else None

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def enable_journal(
        self, directory, checkpoint_every: int = 64, sync=False,
        backend="segment", cold="auto", failpoints=(),
    ):
        """Journal every applied step under ``directory``.

        Writes an initial checkpoint immediately, appends each
        successfully applied ``(time, transaction)`` as a checksummed
        framed record to the store backend, and rewrites the
        checkpoint (atomically, rotating the journal segment) every
        ``checkpoint_every`` steps.  After a crash,
        :meth:`Monitor.recover` restores the newest usable checkpoint
        and replays the journal tail.

        ``sync`` selects the durability level: ``False`` flush-only
        (survives process kills), ``True`` fsync at every record and
        rotation boundary (host-crash durability — the shard workers'
        default; honours the ``REPRO_FSYNC=off`` escape hatch), or
        ``"force"`` to fsync regardless of the environment (chaos and
        durability jobs).  ``backend``/``cold``/``failpoints`` are
        passed to :class:`~repro.core.persist.RunJournal`: the durable
        segment store (default, with ``cold="auto"`` spilling
        unbounded-operator anchors to its SQLite tier) or an in-memory
        store.  Incremental engine only, like :meth:`save`.
        """
        from repro.core.persist import RunJournal

        if self.engine != "incremental":
            raise MonitorError(
                f"journaling requires the incremental engine, "
                f"not {self.engine!r}"
            )
        if self._journal is not None:
            raise MonitorError("a journal is already attached")
        journal = RunJournal(
            directory, checkpoint_every=checkpoint_every, sync=sync,
            backend=backend, cold=cold, failpoints=failpoints,
        )
        journal.attach(self.checker)
        self._journal = journal
        return journal

    def checkpoint(self) -> None:
        """Force a checkpoint now (requires :meth:`enable_journal`)."""
        if self._journal is None:
            raise MonitorError(
                "no journal attached to this monitor; call "
                "enable_journal(directory) before checkpoint()"
            )
        try:
            self._journal.checkpoint(self.checker)
        except OSError as exc:
            raise MonitorError(
                f"cannot checkpoint journal directory "
                f"{self._journal.directory}: {exc}"
            ) from exc

    @classmethod
    def recover(cls, directory, resume_journal: bool = True,
                sync=False, checkpoint_every: int = 64,
                backend="segment", cold="auto"):
        """Rebuild a monitor after a crash from checkpoint + journal.

        Restores the newest usable checkpoint under ``directory``
        (falling back to the retained previous generation when the
        current one fails its checksums), replays the journal tail on
        top — truncating leniently at the first damaged record, see
        :attr:`~repro.core.persist.RecoveryResult.torn_records` — and
        (by default) re-attaches the journal so monitoring continues
        exactly where the killed process stopped (``sync``/``backend``/
        ``cold`` select the re-attached journal's configuration).

        Returns:
            ``(monitor, result)`` where ``result`` is the
            :class:`~repro.core.persist.RecoveryResult` describing what
            was restored and replayed.
        """
        from repro.core.persist import RunJournal
        from repro.core.persist import recover as recover_run

        result = recover_run(directory)
        checker = result.checker
        monitor = cls(
            checker.schema, engine="incremental",
            share_subformulas=getattr(
                checker, "share_subformulas", False
            ),
        )
        monitor.constraints = list(checker.constraints)
        monitor._checker = checker
        if resume_journal:
            journal = RunJournal(
                directory, checkpoint_every=checkpoint_every,
                sync=sync, backend=backend, cold=cold,
            )
            journal.attach(checker)
            monitor._journal = journal
        return monitor, result

    def save(self, path) -> None:
        """Write a checkpoint of the monitoring run to ``path``.

        Only the incremental engine supports checkpointing (its state
        is the small bounded encoding; the naive engines' state is the
        whole history, which defeats the point).
        """
        from repro.core.persist import save_checker

        if self.engine != "incremental":
            raise MonitorError(
                f"checkpointing requires the incremental engine, "
                f"not {self.engine!r}"
            )
        save_checker(self.checker, path)

    @classmethod
    def resume(cls, path) -> "Monitor":
        """Restore a monitor from a checkpoint written by :meth:`save`."""
        from repro.core.persist import load_checker

        checker = load_checker(path)
        monitor = cls(
            checker.schema, engine="incremental",
            share_subformulas=getattr(
                checker, "share_subformulas", False
            ),
        )
        monitor.constraints = list(checker.constraints)
        monitor._checker = checker
        return monitor

    def __repr__(self) -> str:
        return (
            f"Monitor({len(self.constraints)} constraint(s), "
            f"engine={self.engine!r})"
        )
