"""Active-domain semantics (the paper's original setting).

Chomicki's temporal-database line of work interprets quantifiers and
negation relative to the *active domain* — the values occurring in the
database (plus the constraint's constants) — rather than requiring
syntactic safe-range restrictions.  This module implements that
semantics as an alternative engine, which accepts constraints outside
the safe fragment, e.g. ``HIST[0,10] warning(x)`` with ``x`` open.

Two deliberate refinements make the semantics *incrementally
checkable* (and are documented because they differ from a
whole-history active domain):

* **prefix domain** — at state ``i`` the domain is
  ``constants ∪ ⋃_{j<=i} adom(state_j)``: values never seen cannot be
  quantified over yet.  Cumulative, so it only grows.
* **anchor-time evaluation** — a temporal subformula's valuations at a
  past state ``j`` are those computed *at* ``j`` with ``j``'s domain;
  a value first appearing later does not retroactively satisfy
  ``ONCE NOT p(x)`` for the time before it existed.

Both are exactly what an implementation maintaining auxiliary
relations forward-in-time computes; the reference evaluator
(:class:`AdomHistoryEvaluator`) implements the same definition over a
materialised history, and property tests assert the two agree — and
that on *safe* (domain-independent) constraints the active-domain
engine agrees with the safe-range engines.

The one syntactic condition retained is ``fv(f) ⊆ fv(g)`` for
``f SINCE g`` (anchors must bind every variable the survival test
needs; without it anchors would need speculative domain extensions).

Cost caveat: negation and comparisons materialise ``domain^k`` tables;
this engine trades efficiency for expressiveness, by design.
"""

from __future__ import annotations

import itertools
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.core.auxiliary import AuxiliaryState, make_auxiliary
from repro.core.checker import Constraint, reject_future_constraints
from repro.core.statespace import AuxAccounting
from repro.core.foeval import AtomProvider, relation_atom_table
from repro.core.formulas import (
    Aggregate,
    And,
    Atom,
    Comparison,
    Const,
    Exists,
    Formula,
    Not,
    Once,
    Or,
    Prev,
    Since,
    Var,
)
from repro.core.violations import RunReport, StepReport, Violation
from repro.db.algebra import Table
from repro.db.database import DatabaseState
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.db.types import Value
from repro.errors import HistoryError, MonitorError, UnsafeFormulaError
from repro.temporal.clock import Timestamp, validate_successor
from repro.temporal.history import History
from repro.temporal.stream import UpdateStream


def formula_constants(formula: Formula) -> FrozenSet[Value]:
    """All constants mentioned by a formula (part of the domain)."""
    out: Set[Value] = set()
    for sub in formula.walk():
        if isinstance(sub, Atom):
            terms = sub.terms
        elif isinstance(sub, Comparison):
            terms = (sub.left, sub.right)
        else:
            continue
        out.update(t.value for t in terms if isinstance(t, Const))
    return frozenset(out)


def check_adom_compatible(formula: Formula) -> None:
    """Verify the one syntactic condition of the active-domain engine."""
    for sub in formula.walk():
        if isinstance(sub, Since):
            extra = sub.left.free_vars - sub.right.free_vars
            if extra:
                raise UnsafeFormulaError(
                    f"left operand of SINCE uses variables "
                    f"{sorted(extra)} that its right operand does not "
                    f"bind (in {sub}); required even under active-domain "
                    f"semantics"
                )


def _full_table(columns: Sequence[str], domain: FrozenSet[Value]) -> Table:
    """The table ``domain^k`` under the given header."""
    return Table(
        tuple(columns),
        itertools.product(domain, repeat=len(columns)),
    )


def evaluate_adom(
    formula: Formula,
    provider: AtomProvider,
    domain: FrozenSet[Value],
) -> Table:
    """Satisfying valuations of a kernel formula over ``domain``.

    Unlike the safe-range evaluator, every subformula produces a
    *complete* table over its free variables: negation complements
    against ``domain^k``, disjuncts are padded with domain columns, and
    comparisons enumerate the domain.  Result columns are the sorted
    free variables.
    """
    header = tuple(sorted(formula.free_vars))

    if isinstance(formula, Atom):
        return provider.atom_table(formula).project(header)

    if isinstance(formula, (Prev, Once, Since)):
        return provider.temporal_table(formula).project(header)

    if isinstance(formula, Aggregate):
        body_table = evaluate_adom(formula.body, provider, domain)
        return body_table.aggregate(
            sorted(formula.group_vars),
            formula.over,
            formula.op.lower(),
            formula.result,
        ).project(header)

    if isinstance(formula, Comparison):
        return _comparison_table(formula, domain, header)

    if isinstance(formula, Not):
        inner = evaluate_adom(formula.operand, provider, domain)
        return _full_table(header, domain).difference(inner)

    if isinstance(formula, And):
        result = Table.nullary(True)
        for operand in formula.operands:
            result = result.join(
                evaluate_adom(operand, provider, domain)
            )
        return result.project(header)

    if isinstance(formula, Or):
        result = Table.empty(header)
        for operand in formula.operands:
            part = evaluate_adom(operand, provider, domain)
            missing = [c for c in header if c not in part.columns]
            if missing:
                part = part.join(_full_table(missing, domain))
            result = result.union(part.project(header))
        return result

    if isinstance(formula, Exists):
        inner = evaluate_adom(formula.operand, provider, domain)
        return inner.drop(*formula.variables).project(header)

    raise MonitorError(
        f"cannot evaluate non-kernel node {type(formula).__name__}; "
        f"run normalize() first"
    )


def _comparison_table(
    cmp: Comparison, domain: FrozenSet[Value], header: Tuple[str, ...]
) -> Table:
    left_var = cmp.left.name if isinstance(cmp.left, Var) else None
    right_var = cmp.right.name if isinstance(cmp.right, Var) else None

    def value_of(row: dict, var: Optional[str], term) -> Value:
        return row[var] if var is not None else term.value

    candidates = _full_table(header, domain)
    rows = []
    for row in candidates.rows:
        bound = dict(zip(header, row))
        try:
            ok = cmp.evaluate(
                value_of(bound, left_var, cmp.left),
                value_of(bound, right_var, cmp.right),
            )
        except Exception:
            ok = False  # incomparable values never satisfy
        if ok:
            rows.append(row)
    return Table(header, rows)


# ----------------------------------------------------------------------
# reference semantics over a materialised history
# ----------------------------------------------------------------------

class AdomHistoryEvaluator:
    """Reference prefix-active-domain semantics over a history.

    Mirrors :class:`~repro.core.semantics.HistoryEvaluator`, with the
    domain at snapshot ``i`` being the cumulative active domain of
    snapshots ``0..i`` plus ``extra_constants``.
    """

    def __init__(self, history: History, extra_constants: FrozenSet[Value] = frozenset()):
        self.history = history
        self.extra_constants = frozenset(extra_constants)
        self._domains: List[FrozenSet[Value]] = []
        self._cache: Dict[Tuple[Formula, int], Table] = {}

    def domain_at(self, index: int) -> FrozenSet[Value]:
        """Cumulative active domain at snapshot ``index``."""
        while len(self._domains) <= index:
            j = len(self._domains)
            previous = (
                self._domains[j - 1] if j else self.extra_constants
            )
            self._domains.append(
                previous | self.history.state_at(j).active_domain()
            )
        return self._domains[index]

    def table_at(self, formula: Formula, index: int) -> Table:
        """Satisfying valuations of a kernel formula at ``index``."""
        if not 0 <= index < self.history.length:
            raise HistoryError(f"snapshot index {index} out of range")
        key = (formula, index)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        provider = _AdomPointProvider(self, index)
        result = evaluate_adom(formula, provider, self.domain_at(index))
        self._cache[key] = result
        return result

    def temporal_table(self, formula: Formula, index: int) -> Table:
        """Satisfying valuations of a temporal node at ``index``."""
        key = (formula, index)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        header = tuple(sorted(formula.free_vars))
        if isinstance(formula, Prev):
            if index == 0:
                result = Table.empty(header)
            else:
                gap = (
                    self.history.time_at(index)
                    - self.history.time_at(index - 1)
                )
                if formula.interval.contains(gap):
                    result = self.table_at(formula.operand, index - 1)
                else:
                    result = Table.empty(header)
        elif isinstance(formula, Once):
            now = self.history.time_at(index)
            result = Table.empty(header)
            for j in range(index, -1, -1):
                delta = now - self.history.time_at(j)
                if formula.interval.bounded_by(delta):
                    break
                if formula.interval.contains(delta):
                    result = result.union(self.table_at(formula.operand, j))
        elif isinstance(formula, Since):
            result = self._since_table(formula, index)
        else:
            raise HistoryError(f"not a temporal node: {formula}")
        self._cache[key] = result
        return result

    def _since_table(self, formula: Since, index: int) -> Table:
        now = self.history.time_at(index)
        header = tuple(sorted(formula.right.free_vars))
        pending = Table.empty(header)
        for j in range(0, index + 1):
            if j > 0 and not pending.is_empty:
                # anchors survive iff the left operand holds at j for
                # their valuation (fv(left) ⊆ fv(right), so this join
                # is a semijoin)
                left = self.table_at(formula.left, j)
                pending = pending.join(left).project(header)
            delta = now - self.history.time_at(j)
            if formula.interval.contains(delta):
                pending = pending.union(
                    self.table_at(formula.right, j).project(header)
                )
        return pending.project(tuple(sorted(formula.free_vars)))


class _AdomPointProvider(AtomProvider):
    def __init__(self, evaluator: AdomHistoryEvaluator, index: int):
        self.evaluator = evaluator
        self.index = index

    def atom_table(self, atom: Atom) -> Table:
        state = self.evaluator.history.state_at(self.index)
        return relation_atom_table(state.relation(atom.relation), atom)

    def temporal_table(self, formula: Formula) -> Table:
        return self.evaluator.temporal_table(formula, self.index)


# ----------------------------------------------------------------------
# the incremental active-domain checker
# ----------------------------------------------------------------------

class _AdomStateProvider(AtomProvider):
    def __init__(self, state: DatabaseState, virtual: Dict[Formula, Table]):
        self.state = state
        self.virtual = virtual

    def atom_table(self, atom: Atom) -> Table:
        return relation_atom_table(self.state.relation(atom.relation), atom)

    def temporal_table(self, formula: Formula) -> Table:
        try:
            return self.virtual[formula]
        except KeyError:
            raise MonitorError(
                f"virtual table missing for {formula}"
            ) from None


class ActiveDomainChecker(AuxAccounting):
    """Incremental checking under prefix-active-domain semantics.

    Same stepping API as
    :class:`~repro.core.checker.IncrementalChecker`; accepts
    constraints outside the safe-range fragment (build them with
    ``Constraint(name, formula, require_safe=False)``).
    """

    #: engine label used in telemetry series and by ``space_of``
    engine_label = "adom"

    #: optional per-step :class:`~repro.resilience.degrade.StepBudget`
    #: (set by the monitor; ``None`` keeps the hot path budget-free)
    budget = None

    def __init__(
        self,
        schema: DatabaseSchema,
        constraints: Sequence[Constraint],
        initial: Optional[DatabaseState] = None,
        instrumentation=None,
    ):
        self.schema = schema
        self.constraints = list(constraints)
        for c in self.constraints:
            c.validate_schema(schema)
            check_adom_compatible(c.violation_formula)
        reject_future_constraints(self.constraints, "adom")
        #: hook sink (None = disabled; see repro.obs.instrument)
        self.instrumentation = instrumentation
        self.state = (
            initial if initial is not None else DatabaseState.empty(schema)
        )
        if self.state.schema != schema:
            raise MonitorError("initial state does not match schema")
        self.domain: Set[Value] = set(self.state.active_domain())
        for c in self.constraints:
            self.domain |= formula_constants(c.violation_formula)
        self._aux: Dict[Formula, AuxiliaryState] = {}
        for c in self.constraints:
            for node in c.violation_formula.temporal_subformulas():
                if node not in self._aux:
                    self._aux[node] = make_auxiliary(node)
        self._time: Optional[Timestamp] = None
        self._index = -1
        #: virtual tables of the most recent step (for diagnose())
        self._last_virtual: Dict[Formula, Table] = {}
        # telemetry attribution (see IncrementalChecker)
        self._constraint_aux = {
            c.name: tuple(
                {
                    node: self._aux[node]
                    for node in c.violation_formula.temporal_subformulas()
                }.values()
            )
            for c in self.constraints
        }
        self._node_labels = {node: str(node) for node in self._aux}

    @property
    def now(self) -> Optional[Timestamp]:
        """Timestamp of the last processed state (None before any)."""
        return self._time

    @property
    def steps_processed(self) -> int:
        """Number of states processed so far."""
        return self._index + 1

    def step(self, time: Timestamp, txn: Transaction) -> StepReport:
        """Apply ``txn`` at ``time`` and check all constraints."""
        validate_successor(self._time, time)
        if self.budget is not None:
            self.budget.arm()
        obs = self.instrumentation
        if obs is not None:
            started = perf_counter()
            obs.step_begin(self.engine_label, time, txn.size)
        self.state = self.state.apply(txn)
        for rows in txn.inserts.values():
            for row in rows:
                self.domain.update(row)
        if obs is not None:
            obs.apply_done(
                self.engine_label, time, perf_counter() - started
            )
        self._time = time
        self._index += 1
        report = self._check_current()
        if obs is not None:
            obs.step_end(
                self.engine_label,
                time,
                perf_counter() - started,
                len(report.violations),
                self.aux_tuple_count(),
            )
        return report

    def step_state(self, time: Timestamp, state: DatabaseState) -> StepReport:
        """Like :meth:`step`, but with the successor state given directly."""
        if state.schema != self.schema:
            raise MonitorError("state does not match checker schema")
        return self.step(time, self.state.diff(state))

    def run(self, stream: Union[UpdateStream, Sequence]) -> RunReport:
        """Process a whole update stream; return the aggregate report."""
        report = RunReport()
        for time, txn in stream:
            report.add(self.step(time, txn))
        return report

    def _check_current(self) -> StepReport:
        assert self._time is not None
        time = self._time
        domain = frozenset(self.domain)
        virtual: Dict[Formula, Table] = {}
        self._last_virtual = virtual  # retained for diagnose()
        provider = _AdomStateProvider(self.state, virtual)

        def evaluate_now(
            formula: Formula, context: Optional[Table] = None
        ) -> Table:
            table = evaluate_adom(formula, provider, domain)
            if context is None:
                return table
            return context.join(table)

        obs = self.instrumentation
        for node, aux in self._aux.items():
            if obs is not None:
                started = perf_counter()
                virtual[node] = aux.advance(time, evaluate_now)
                obs.aux_advanced(
                    self.engine_label,
                    self._node_labels[node],
                    perf_counter() - started,
                    aux.tuple_count(),
                )
            else:
                virtual[node] = aux.advance(time, evaluate_now)

        violations: List[Violation] = []
        budget = self.budget
        for c in self.constraints:
            if budget is not None and budget.should_defer(c.name):
                continue
            if obs is not None:
                started = perf_counter()
                witnesses = evaluate_adom(
                    c.violation_formula, provider, domain
                )
                obs.constraint_checked(
                    self.engine_label,
                    c.name,
                    perf_counter() - started,
                    0 if witnesses.is_empty else max(1, len(witnesses)),
                    sum(
                        a.tuple_count()
                        for a in self._constraint_aux[c.name]
                    ),
                )
            else:
                witnesses = evaluate_adom(
                    c.violation_formula, provider, domain
                )
            if not witnesses.is_empty:
                violations.append(
                    Violation(c.name, time, self._index, witnesses)
                )
        return StepReport(
            time,
            self._index,
            violations,
            deferred=tuple(budget.deferred) if budget is not None else (),
        )

    # instrumentation: the uniform accounting protocol is inherited
    # from repro.core.statespace.AuxAccounting; only the active-domain
    # extras live here

    def domain_size(self) -> int:
        """Cumulative active-domain cardinality (grows monotonically)."""
        return len(self.domain)

    def state_profile(self, deep: bool = True) -> Dict[str, object]:
        """Uniform accounting snapshot, plus the ``domain`` section."""
        profile = super().state_profile(deep)
        profile["domain"] = {"values": self.domain_size()}
        return profile
