"""Violation forensics: *why* did this constraint fail here?

``diagnose(checker, violation)`` re-examines a violation against the
checker's state right after the step that produced it, and explains,
per witness:

* which conjunct of the violation formula each witness satisfies (the
  violation formula is the *negation* of the constraint, so these are
  the constraint's failing obligations);
* for each temporal subformula, the auxiliary evidence for the
  witness's valuation — the stored anchor timestamps and how far the
  nearest one is from the window.

All five monitor engines are supported.  The evidence source differs
by engine but the report format does not:

* ``incremental`` / ``adom`` — the in-memory auxiliary states and the
  retained virtual tables of the reported step;
* ``active`` — the auxiliary *tables* (``aux{i}`` anchor rows, the
  ``PREV`` carry-over relations);
* ``naive`` / ``naive-memo`` — no auxiliary state exists, so anchor
  times are recomputed by scanning the stored history (the evidence
  line is prefixed ``history scan:``).

:func:`anchor_evidence` is public: the flight recorder
(:mod:`repro.obs.flight`) embeds the same evidence strings in its
crash snapshots, so a flight artifact joins against a later
``diagnose()`` of the same violation verbatim.

Must be called before the next ``step`` (the virtual tables and
auxiliary relations it reads are those of the reported state).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.auxiliary import OnceState, PrevState, SinceState
from repro.core.checker import IncrementalChecker, _StateProvider
from repro.core.foeval import evaluate
from repro.core.formulas import And, Formula, Not, Once, Prev, Since
from repro.core.violations import Violation
from repro.db.algebra import Table
from repro.db.types import Value
from repro.errors import MonitorError


def _witness_context(
    witness: Dict[str, Value], needed: "frozenset[str]"
) -> Table:
    binding = {k: v for k, v in witness.items() if k in needed}
    if not binding:
        return Table.nullary(True)
    return Table.unit(binding)


def _witness_in(
    table: Table, witness: Dict[str, Value], formula: Formula
) -> bool:
    """Whether the witness's binding appears in a full answer table."""
    columns = tuple(sorted(formula.free_vars))
    bound = tuple(c for c in columns if c in witness)
    if not bound:
        return not table.is_empty
    key = tuple(witness[c] for c in bound)
    return key in set(table.project(bound)._aligned_rows(bound))


def _conjunct_verdict(checker, part, witness) -> Optional[bool]:
    """Evaluate one conjunct under the witness; None = undecidable."""
    context = _witness_context(witness, part.free_vars)
    try:
        if isinstance(checker, IncrementalChecker):
            provider = _StateProvider(
                checker.state, checker._last_virtual
            )
            return not evaluate(part, provider, context).is_empty
        from repro.core.adom import (
            ActiveDomainChecker,
            _AdomStateProvider,
            evaluate_adom,
        )

        if isinstance(checker, ActiveDomainChecker):
            provider = _AdomStateProvider(
                checker.state, checker._last_virtual
            )
            table = evaluate_adom(
                part, provider, frozenset(checker.domain)
            )
            return _witness_in(table, witness, part)
        from repro.active.compiler import ActiveChecker, _ActiveProvider

        if isinstance(checker, ActiveChecker):
            provider = _ActiveProvider(checker)
            return not evaluate(part, provider, context).is_empty
        from repro.core.naive import NaiveChecker
        from repro.core.semantics import HistoryEvaluator

        if isinstance(checker, NaiveChecker):
            evaluator = (
                checker._evaluator
                if checker._evaluator is not None
                else HistoryEvaluator(checker.history)
            )
            index = checker.history.length - 1
            if isinstance(part, Not):
                # negation alone is not range-restricted over the
                # history evaluator; decide it from the operand when
                # the witness binds it fully
                inner = part.operand
                if not all(v in witness for v in inner.free_vars):
                    return None
                table = evaluator.table_at(inner, index)
                return not _witness_in(table, witness, inner)
            table = evaluator.table_at(part, index)
            return _witness_in(table, witness, part)
    except Exception:
        return None
    raise MonitorError(
        f"diagnose() does not support engine "
        f"{type(checker).__name__!r}"
    )


def _describe_anchors(times, now, interval) -> str:
    """The shared ONCE/SINCE evidence formatter (all engines)."""
    if not times:
        return "no anchors stored for this valuation"
    ages = [now - t for t in times]
    in_window = [a for a in ages if interval.contains(a)]
    if in_window:
        return (
            f"anchor(s) at distance {sorted(in_window)} inside "
            f"{interval}"
        )
    nearest = min(ages, key=lambda a: abs(a - interval.low))
    return (
        f"{len(times)} anchor(s) stored but none inside {interval}; "
        f"nearest is {nearest} units old"
    )


def _describe_prev(held: bool) -> str:
    return (
        "operand holds at the current state (visible next step)"
        if held
        else "operand does not hold at the current state"
    )


def anchor_evidence(
    checker, node: Formula, witness: Dict[str, Value]
) -> str:
    """Describe the stored auxiliary evidence for one witness.

    Works across all five engines; see the module docstring for where
    each engine's evidence comes from.
    """
    now = checker.now
    if now is None:
        return "no auxiliary state"
    columns = tuple(sorted(node.free_vars))
    if not all(c in witness for c in columns):
        return "witness does not bind this subformula"
    key = tuple(witness[c] for c in columns)

    aux_map = getattr(checker, "_aux", None)
    if aux_map is not None and node in aux_map:
        aux = aux_map[node]
        if isinstance(aux, PrevState):
            held = (
                key in aux._last_table.rows
                if columns
                else bool(len(aux._last_table))
            )
            return _describe_prev(held)
        assert isinstance(aux, (OnceState, SinceState))
        return _describe_anchors(
            aux._anchors.anchors.get(key), now, node.interval  # type: ignore[attr-defined]
        )

    plans = getattr(checker, "_plans", None)
    if plans is not None:
        plan = plans.get(node)
        if plan is None:
            return "no auxiliary state"
        state = checker.engine.state
        if isinstance(node, Prev):
            rows = state.relation(plan.prev_operand_table).rows
            held = key in rows if columns else bool(rows)
            return _describe_prev(held)
        rows = state.relation(plan.aux_table).rows
        k = len(plan.variables)
        times = sorted(r[k] for r in rows if r[:k] == key)
        return _describe_anchors(times, now, node.interval)  # type: ignore[attr-defined]

    history = getattr(checker, "history", None)
    if history is not None:
        from repro.core.semantics import HistoryEvaluator

        evaluator = getattr(checker, "_evaluator", None)
        if evaluator is None:
            evaluator = HistoryEvaluator(history)
        if isinstance(node, Prev):
            table = evaluator.table_at(
                node.operand, history.length - 1
            )
            return "history scan: " + _describe_prev(
                _witness_in(table, witness, node.operand)
            )
        assert isinstance(node, (Once, Since))
        anchor = node.right if isinstance(node, Since) else node.operand
        times = []
        for index, snap in enumerate(history):
            table = evaluator.table_at(anchor, index)
            if _witness_in(table, witness, anchor):
                times.append(snap.time)
        return "history scan: " + _describe_anchors(
            times, now, node.interval
        )

    return "no auxiliary state"


#: Backwards-compatible alias (pre-generalisation internal name).
def _anchor_evidence(checker, node, witness) -> str:
    return anchor_evidence(checker, node, witness)


def witness_evidence(
    checker, violation: Violation, max_witnesses: int = 3
) -> List[Dict]:
    """Structured per-witness anchor evidence for a violation.

    The machine-readable core of :func:`diagnose` — one entry per
    examined witness, mapping each temporal subformula's label to its
    evidence string.  The flight recorder embeds exactly this, so its
    snapshots join against ``diagnose()`` output.
    """
    constraint = _find_constraint(checker, violation)
    entries: List[Dict] = []
    for witness in violation.witness_dicts()[:max_witnesses]:
        evidence = {
            str(node): anchor_evidence(checker, node, witness)
            for node in constraint.violation_formula.temporal_subformulas()
        }
        entries.append({"witness": witness, "evidence": evidence})
    return entries


def _find_constraint(checker, violation: Violation):
    constraint = next(
        (c for c in checker.constraints if c.name == violation.constraint),
        None,
    )
    if constraint is None:
        raise MonitorError(
            f"checker has no constraint named {violation.constraint!r}"
        )
    return constraint


def diagnose(
    checker,
    violation: Violation,
    max_witnesses: int = 3,
) -> str:
    """A multi-line report explaining a violation's witnesses.

    Args:
        checker: the engine that produced the violation (any of the
            five monitor engines), *not yet stepped further*.
        violation: one entry of the step report's ``violations``.
        max_witnesses: cap on witnesses examined.

    Returns:
        The report text.
    """
    if checker.now != violation.time:
        raise MonitorError(
            "diagnose() must run before the checker steps past the "
            f"violating state (checker at t={checker.now}, violation "
            f"at t={violation.time})"
        )
    constraint = _find_constraint(checker, violation)
    formula = constraint.violation_formula
    conjuncts = (
        list(formula.operands) if isinstance(formula, And) else [formula]
    )

    lines: List[str] = [
        f"violation of {violation.constraint!r} at t={violation.time} "
        f"(state {violation.index})",
        f"  constraint: {constraint.formula}",
    ]
    witnesses = violation.witness_dicts()[:max_witnesses]
    for witness in witnesses:
        shown = (
            ", ".join(f"{k}={v!r}" for k, v in witness.items())
            or "(closed constraint)"
        )
        lines.append(f"  witness {shown}:")
        for part in conjuncts:
            satisfied = _conjunct_verdict(checker, part, witness)
            if satisfied is None:
                verdict = "needs other bindings"
            else:
                verdict = "holds" if satisfied else "fails"
            lines.append(f"    {verdict:<6} {part}")
            inner = part.operand if isinstance(part, Not) else part
            for node in inner.temporal_subformulas():
                lines.append(
                    f"             {type(node).__name__.upper()}"
                    f"{node.interval}: "
                    + anchor_evidence(checker, node, witness)
                )
    hidden = violation.witness_count - len(witnesses)
    if hidden > 0:
        lines.append(f"  ... and {hidden} more witness(es)")
    return "\n".join(lines)
