"""Violation forensics: *why* did this constraint fail here?

``diagnose(checker, violation)`` re-examines a violation against the
checker's state right after the step that produced it, and explains,
per witness:

* which conjunct of the violation formula each witness satisfies (the
  violation formula is the *negation* of the constraint, so these are
  the constraint's failing obligations);
* for each temporal subformula, the auxiliary evidence for the
  witness's valuation — the stored anchor timestamps and how far the
  nearest one is from the window.

Must be called before the next ``step`` (the virtual tables and
auxiliary relations it reads are those of the reported state).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.auxiliary import OnceState, PrevState, SinceState
from repro.core.checker import IncrementalChecker, _StateProvider
from repro.core.foeval import evaluate
from repro.core.formulas import And, Formula, Not
from repro.core.violations import Violation
from repro.db.algebra import Table
from repro.db.types import Value
from repro.errors import MonitorError


def _witness_context(
    witness: Dict[str, Value], needed: "frozenset[str]"
) -> Table:
    binding = {k: v for k, v in witness.items() if k in needed}
    if not binding:
        return Table.nullary(True)
    return Table.unit(binding)


def _anchor_evidence(
    checker: IncrementalChecker,
    node: Formula,
    witness: Dict[str, Value],
) -> str:
    """Describe the stored auxiliary evidence for one witness."""
    aux = checker._aux.get(node)
    now = checker.now
    if aux is None or now is None:
        return "no auxiliary state"
    columns = tuple(sorted(node.free_vars))
    if not all(c in witness for c in columns):
        return "witness does not bind this subformula"
    key = tuple(witness[c] for c in columns)
    if isinstance(aux, PrevState):
        held = key in aux._last_table.rows if columns else bool(
            len(aux._last_table)
        )
        return (
            "operand holds at the current state (visible next step)"
            if held
            else "operand does not hold at the current state"
        )
    assert isinstance(aux, (OnceState, SinceState))
    times = aux._anchors.anchors.get(key)
    interval = node.interval  # type: ignore[attr-defined]
    if not times:
        return "no anchors stored for this valuation"
    ages = [now - t for t in times]
    in_window = [a for a in ages if interval.contains(a)]
    if in_window:
        return (
            f"anchor(s) at distance {sorted(in_window)} inside "
            f"{interval}"
        )
    nearest = min(ages, key=lambda a: abs(a - interval.low))
    return (
        f"{len(times)} anchor(s) stored but none inside {interval}; "
        f"nearest is {nearest} units old"
    )


def diagnose(
    checker: IncrementalChecker,
    violation: Violation,
    max_witnesses: int = 3,
) -> str:
    """A multi-line report explaining a violation's witnesses.

    Args:
        checker: the incremental checker that produced the violation,
            *not yet stepped further*.
        violation: one entry of the step report's ``violations``.
        max_witnesses: cap on witnesses examined.

    Returns:
        The report text.
    """
    if checker.now != violation.time:
        raise MonitorError(
            "diagnose() must run before the checker steps past the "
            f"violating state (checker at t={checker.now}, violation "
            f"at t={violation.time})"
        )
    constraint = next(
        (c for c in checker.constraints if c.name == violation.constraint),
        None,
    )
    if constraint is None:
        raise MonitorError(
            f"checker has no constraint named {violation.constraint!r}"
        )
    formula = constraint.violation_formula
    provider = _StateProvider(checker.state, checker._last_virtual)
    conjuncts = (
        list(formula.operands) if isinstance(formula, And) else [formula]
    )

    lines: List[str] = [
        f"violation of {violation.constraint!r} at t={violation.time} "
        f"(state {violation.index})",
        f"  constraint: {constraint.formula}",
    ]
    witnesses = violation.witness_dicts()[:max_witnesses]
    for witness in witnesses:
        shown = (
            ", ".join(f"{k}={v!r}" for k, v in witness.items())
            or "(closed constraint)"
        )
        lines.append(f"  witness {shown}:")
        for part in conjuncts:
            context = _witness_context(witness, part.free_vars)
            try:
                satisfied = not evaluate(part, provider, context).is_empty
            except Exception:
                satisfied = None
            if satisfied is None:
                verdict = "needs other bindings"
            else:
                verdict = "holds" if satisfied else "fails"
            lines.append(f"    {verdict:<6} {part}")
            inner = part.operand if isinstance(part, Not) else part
            for node in inner.temporal_subformulas():
                lines.append(
                    f"             {type(node).__name__.upper()}"
                    f"{node.interval}: "
                    + _anchor_evidence(checker, node, witness)
                )
    hidden = violation.witness_count - len(witnesses)
    if hidden > 0:
        lines.append(f"  ... and {hidden} more witness(es)")
    return "\n".join(lines)
