"""Paths into formula trees.

A :class:`FormulaPath` addresses one subformula of a root formula as
the sequence of child indices leading to it — the stable, structural
analogue of a line/column position in source text.  The safety analysis
(:mod:`repro.core.safety`) uses paths to report the *innermost*
offending subformula, and the static analyzer (:mod:`repro.lint`)
carries them on every diagnostic so tools can point at the exact node.

Paths are immutable, hashable, and cheap; ``path.resolve(root)``
returns the addressed node, ``path.render(root)`` a human-readable
breadcrumb such as ``NOT > AND[1] > ONCE[0,5]``.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.core.formulas import (
    Aggregate,
    Atom,
    Comparison,
    Formula,
    FormulaError,
    Iff,
    Implies,
    Not,
    Since,
    Until,
    _Nary,
    _Quantifier,
    _Unary_Temporal,
)


def node_label(formula: Formula) -> str:
    """A short label for one node, used in breadcrumb rendering."""
    if isinstance(formula, (Atom, Comparison)):
        return str(formula)
    if isinstance(formula, Not):
        return "NOT"
    if isinstance(formula, _Nary):
        return formula._word
    if isinstance(formula, _Quantifier):
        return f"{formula._word} {', '.join(formula.variables)}"
    if isinstance(formula, Implies):
        return "->"
    if isinstance(formula, Iff):
        return "<->"
    if isinstance(formula, _Unary_Temporal):
        suffix = "" if formula.interval.is_trivial else str(formula.interval)
        return f"{formula._word}{suffix}"
    if isinstance(formula, (Since, Until)):
        word = type(formula).__name__.upper()
        suffix = "" if formula.interval.is_trivial else str(formula.interval)
        return f"{word}{suffix}"
    if isinstance(formula, Aggregate):
        return f"{formula.result} = {formula.op}(...)"
    return type(formula).__name__.upper()


class FormulaPath:
    """A path from a root formula to one of its subformulas.

    The empty path addresses the root itself.  Paths are ordered
    tuples of 0-based child indices; they remain valid as long as the
    addressed tree is not rebuilt with a different shape.
    """

    __slots__ = ("steps",)

    def __init__(self, steps: Tuple[int, ...] = ()):
        self.steps: Tuple[int, ...] = tuple(steps)

    def child(self, index: int) -> "FormulaPath":
        """The path one level deeper, through child ``index``."""
        return FormulaPath(self.steps + (index,))

    @property
    def is_root(self) -> bool:
        """Whether this path addresses the root formula itself."""
        return not self.steps

    def resolve(self, root: Formula) -> Formula:
        """Return the subformula of ``root`` this path addresses.

        Raises:
            FormulaError: if a step is out of range for the tree.
        """
        node = root
        for step in self.steps:
            children = node.children()
            if step >= len(children):
                raise FormulaError(
                    f"path {self} does not exist in {root}"
                )
            node = children[step]
        return node

    def render(self, root: Formula) -> str:
        """Human-readable breadcrumb of the nodes along this path.

        Sibling indices are shown only where a node has several
        children, e.g. ``NOT > AND[1] > ONCE[0,5] > q(x)``.
        """
        parts = []
        node = root
        for step in self.steps:
            children = node.children()
            label = node_label(node)
            if len(children) > 1:
                label += f"[{step}]"
            parts.append(label)
            node = children[step]
        parts.append(node_label(node))
        return " > ".join(parts)

    def __len__(self) -> int:
        return len(self.steps)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FormulaPath) and self.steps == other.steps

    def __hash__(self) -> int:
        return hash(self.steps)

    def __repr__(self) -> str:
        return f"FormulaPath({self.steps!r})"

    def __str__(self) -> str:
        if not self.steps:
            return "<root>"
        return ".".join(str(s) for s in self.steps)


#: The empty path (addresses the root).
ROOT = FormulaPath()


def walk_with_paths(
    root: Formula, _path: FormulaPath = ROOT
) -> Iterator[Tuple[FormulaPath, Formula]]:
    """Pre-order traversal of ``root`` yielding ``(path, node)`` pairs."""
    yield _path, root
    for index, child in enumerate(root.children()):
        yield from walk_with_paths(child, _path.child(index))
