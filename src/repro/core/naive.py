"""Naive full-history baseline checkers.

The point of comparison for the paper's method: store the entire
history and evaluate the reference semantics at each new state.  Two
variants are provided:

* ``NaiveChecker(memoize=False)`` — the true naive baseline: each step
  re-evaluates from scratch with a fresh evaluator, so per-step time
  grows with the history (and space grows because states accumulate).

* ``NaiveChecker(memoize=True)`` — a *materialised* middle point that
  keeps one evaluator (and its per-snapshot caches) for the whole run:
  per-step time is amortised, but space still grows linearly with the
  history.  This is the ablation between "recompute everything" and
  the paper's bounded encoding.

Both expose the same stepping API as
:class:`~repro.core.checker.IncrementalChecker`, so benchmarks and
property tests drive them interchangeably.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Sequence, Union

from repro.core.checker import Constraint, reject_future_constraints
from repro.core.semantics import HistoryEvaluator
from repro.core.violations import RunReport, StepReport, Violation
from repro.db.database import DatabaseState
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.errors import MonitorError
from repro.temporal.clock import Timestamp
from repro.temporal.history import History
from repro.temporal.stream import UpdateStream


class NaiveChecker:
    """Checks constraints by materialising the history."""

    #: optional per-step :class:`~repro.resilience.degrade.StepBudget`
    #: (set by the monitor; ``None`` keeps the hot path budget-free)
    budget = None

    def __init__(
        self,
        schema: DatabaseSchema,
        constraints: Sequence[Constraint],
        initial: Optional[DatabaseState] = None,
        memoize: bool = False,
        instrumentation=None,
    ):
        self.schema = schema
        self.constraints = list(constraints)
        for c in self.constraints:
            c.validate_schema(schema)
        reject_future_constraints(self.constraints, "naive")
        self.history = History(schema)
        self._base = (
            initial if initial is not None else DatabaseState.empty(schema)
        )
        if self._base.schema != schema:
            raise MonitorError("initial state does not match schema")
        self.memoize = memoize
        self._evaluator: Optional[HistoryEvaluator] = (
            HistoryEvaluator(self.history) if memoize else None
        )
        #: engine label used in telemetry series and by ``space_of``
        self.engine_label = "naive-memo" if memoize else "naive"
        #: hook sink (None = disabled; see repro.obs.instrument)
        self.instrumentation = instrumentation
        # row count of the transaction currently being stepped, handed
        # from step() to step_state() for the step_begin hook
        self._txn_rows: Optional[int] = None

    @property
    def now(self) -> Optional[Timestamp]:
        """Timestamp of the last processed state (None before any)."""
        return None if self.history.is_empty else self.history.last.time

    @property
    def steps_processed(self) -> int:
        """Number of states processed so far."""
        return self.history.length

    def step(self, time: Timestamp, txn: Transaction) -> StepReport:
        """Apply ``txn`` at ``time`` and check all constraints."""
        base = (
            self.history.last.state if not self.history.is_empty else self._base
        )
        if self.instrumentation is not None:
            self._txn_rows = txn.size
        return self.step_state(time, base.apply(txn))

    def step_state(self, time: Timestamp, state: DatabaseState) -> StepReport:
        """Like :meth:`step`, but with the successor state given directly."""
        budget = self.budget
        if budget is not None:
            budget.arm()
        obs = self.instrumentation
        if obs is not None:
            started = perf_counter()
            obs.step_begin(self.engine_label, time, self._txn_rows)
            self._txn_rows = None
        self.history.append(time, state)
        if obs is not None:
            obs.apply_done(
                self.engine_label, time, perf_counter() - started
            )
        index = self.history.length - 1
        evaluator = (
            self._evaluator
            if self._evaluator is not None
            else HistoryEvaluator(self.history)
        )
        violations: List[Violation] = []
        for c in self.constraints:
            if budget is not None and budget.should_defer(c.name):
                continue
            if obs is not None:
                eval_started = perf_counter()
                witnesses = evaluator.table_at(c.violation_formula, index)
                # the naive engines have no per-constraint auxiliary
                # store, so no aux_tuples attribution (None)
                obs.constraint_checked(
                    self.engine_label,
                    c.name,
                    perf_counter() - eval_started,
                    0 if witnesses.is_empty else max(1, len(witnesses)),
                    None,
                )
            else:
                witnesses = evaluator.table_at(c.violation_formula, index)
            if not witnesses.is_empty:
                violations.append(Violation(c.name, time, index, witnesses))
        report = StepReport(
            time,
            index,
            violations,
            deferred=tuple(budget.deferred) if budget is not None else (),
        )
        if obs is not None:
            obs.step_end(
                self.engine_label,
                time,
                perf_counter() - started,
                len(violations),
                self.stored_tuples(),
            )
        return report

    def run(self, stream: Union[UpdateStream, Sequence]) -> RunReport:
        """Process a whole update stream; return the aggregate report."""
        report = RunReport()
        for time, txn in stream:
            report.add(self.step(time, txn))
        return report

    def stored_states(self) -> int:
        """States retained — the naive space measure (grows forever)."""
        return self.history.length

    def stored_tuples(self) -> int:
        """Total tuples across all retained states (space in tuples)."""
        return sum(snap.state.total_rows for snap in self.history)

    def space_tuples(self) -> int:
        """Uniform space hook (stored tuples); every engine has one."""
        return self.stored_tuples()

    # the uniform accounting protocol (repro.core.statespace): the
    # naive engines keep no auxiliary relations, so the aux hooks are
    # empty and the footprint shows up in the ``history`` section

    def aux_nodes(self) -> list:
        """Temporal subformulas with auxiliary state (none here)."""
        return []

    def aux_tuple_count(self) -> int:
        """Auxiliary entries — always 0; the history is the store."""
        return 0

    def aux_valuation_count(self) -> int:
        """Distinct auxiliary valuations — always 0."""
        return 0

    def aux_profile(self) -> dict:
        """Per-node auxiliary counts — empty for the naive engines."""
        return {}

    def aux_counts(self) -> dict:
        """Per-node (tuples, valuations) — empty for the naive engines."""
        return {}

    def iter_state_valuations(self):
        """No per-valuation auxiliary state to enumerate."""
        return iter(())

    def state_profile(self, deep: bool = True) -> dict:
        """Uniform accounting snapshot (``history`` section only)."""
        from repro.core.statespace import deep_size

        tuples = self.stored_tuples()
        return {
            "engine": self.engine_label,
            "nodes": {},
            "total": {
                "tuples": 0,
                "valuations": 0,
                "bytes": 0 if deep else None,
            },
            "space_tuples": self.space_tuples(),
            "history": {
                "states": self.stored_states(),
                "tuples": tuples,
                "bytes": (
                    deep_size(
                        [
                            tuple(rel.rows)
                            for snap in self.history
                            for rel in snap.state
                        ]
                    )
                    if deep
                    else None
                ),
            },
        }
