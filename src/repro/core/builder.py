"""Programmatic builder DSL for constraint formulas.

The parser (:mod:`repro.core.parser`) is the usual front end; this
module is for code that constructs formulas directly — tests, workload
generators, and users who prefer Python over the concrete syntax::

    from repro.core import builder as b

    ret = b.atom("returned", b.var("p"), b.var("bk"))
    bor = b.atom("borrowed", b.var("p"), b.var("bk"))
    constraint = b.forall("p", "bk")(ret >> b.once(bor, (0, 14)))

Formulas also support ``&``, ``|``, ``~`` and ``>>`` directly.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

from repro.core.formulas import (
    Aggregate,
    And,
    Atom,
    Comparison,
    Const,
    Exists,
    Forall,
    Formula,
    Hist,
    Iff,
    Implies,
    Not,
    Once,
    Or,
    Prev,
    Since,
    Term,
    TermLike,
    Var,
)
from repro.core.intervals import Interval

#: Anything accepted where an interval is expected: an :class:`Interval`,
#: a ``(low, high)`` pair with ``high`` ``None``/``"*"`` for infinity, or
#: ``None`` for the trivial interval ``[0,*]``.
IntervalLike = Union[Interval, Tuple[int, Union[int, None, str]], None]


def interval(spec: IntervalLike) -> Optional[Interval]:
    """Coerce an interval-like spec into an :class:`Interval` (or None)."""
    if spec is None or isinstance(spec, Interval):
        return spec
    low, high = spec
    if high == "*":
        high = None
    return Interval(low, high)


def var(name: str) -> Var:
    """A variable term."""
    return Var(name)


def variables(names: str) -> Tuple[Var, ...]:
    """Several variable terms from a space-separated string."""
    return tuple(Var(n) for n in names.split())


def const(value) -> Const:
    """A constant term."""
    return Const(value)


def atom(relation: str, *terms: TermLike) -> Atom:
    """A relational atom; raw Python values become constants."""
    return Atom(relation, terms)


def eq(left: TermLike, right: TermLike) -> Comparison:
    """The comparison ``left = right``."""
    return Comparison(left, "=", right)


def ne(left: TermLike, right: TermLike) -> Comparison:
    """The comparison ``left != right``."""
    return Comparison(left, "!=", right)


def lt(left: TermLike, right: TermLike) -> Comparison:
    """The comparison ``left < right``."""
    return Comparison(left, "<", right)


def le(left: TermLike, right: TermLike) -> Comparison:
    """The comparison ``left <= right``."""
    return Comparison(left, "<=", right)


def gt(left: TermLike, right: TermLike) -> Comparison:
    """The comparison ``left > right``."""
    return Comparison(left, ">", right)


def ge(left: TermLike, right: TermLike) -> Comparison:
    """The comparison ``left >= right``."""
    return Comparison(left, ">=", right)


def conj(formulas: Sequence[Formula]) -> Formula:
    """Conjunction of a possibly short list (1 → identity, 0 → TRUE)."""
    from repro.core.formulas import TRUE

    if not formulas:
        return TRUE
    if len(formulas) == 1:
        return formulas[0]
    return And(*formulas)


def disj(formulas: Sequence[Formula]) -> Formula:
    """Disjunction of a possibly short list (1 → identity, 0 → FALSE)."""
    from repro.core.formulas import FALSE

    if not formulas:
        return FALSE
    if len(formulas) == 1:
        return formulas[0]
    return Or(*formulas)


def neg(operand: Formula) -> Not:
    """Negation."""
    return Not(operand)


def implies(antecedent: Formula, consequent: Formula) -> Implies:
    """Implication."""
    return Implies(antecedent, consequent)


def iff(left: Formula, right: Formula) -> Iff:
    """Bi-implication."""
    return Iff(left, right)


def exists(*names: Union[str, Var]) -> Callable[[Formula], Exists]:
    """Curried existential quantifier: ``exists("x", "y")(f)``."""
    plain = tuple(n.name if isinstance(n, Var) else n for n in names)

    def bind(operand: Formula) -> Exists:
        return Exists(plain, operand)

    return bind


def forall(*names: Union[str, Var]) -> Callable[[Formula], Forall]:
    """Curried universal quantifier: ``forall("x", "y")(f)``."""
    plain = tuple(n.name if isinstance(n, Var) else n for n in names)

    def bind(operand: Formula) -> Forall:
        return Forall(plain, operand)

    return bind


def aggregate(
    op: str,
    result: Union[str, Var],
    over: Sequence[Union[str, Var]],
    body: Formula,
) -> Aggregate:
    """A grouped aggregation atom ``result = OP(over; body)``."""
    plain_result = result.name if isinstance(result, Var) else result
    plain_over = [v.name if isinstance(v, Var) else v for v in over]
    return Aggregate(op.upper(), plain_result, plain_over, body)


def count(result, over, body: Formula) -> Aggregate:
    """``result = CNT(over; body)``."""
    return aggregate("CNT", result, over, body)


def sum_of(result, over, body: Formula) -> Aggregate:
    """``result = SUM(over; body)`` (first over-variable is summed)."""
    return aggregate("SUM", result, over, body)


def prev(operand: Formula, within: IntervalLike = None) -> Prev:
    """``PREV[within] operand``."""
    return Prev(operand, interval(within))


def once(operand: Formula, within: IntervalLike = None) -> Once:
    """``ONCE[within] operand``."""
    return Once(operand, interval(within))


def hist(operand: Formula, within: IntervalLike = None) -> Hist:
    """``HIST[within] operand``."""
    return Hist(operand, interval(within))


def since(
    left: Formula, right: Formula, within: IntervalLike = None
) -> Since:
    """``left SINCE[within] right``."""
    return Since(left, right, interval(within))
