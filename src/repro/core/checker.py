"""The incremental constraint checker (the paper's algorithm).

:class:`IncrementalChecker` monitors a set of real-time integrity
constraints over an evolving database *without ever storing the
history*.  Its per-step work is:

1. apply the transaction to obtain the new current state;
2. walk all temporal subformulas bottom-up (deduplicated structurally
   across constraints), letting each auxiliary state
   (:mod:`repro.core.auxiliary`) fold the new state into its bounded
   history encoding and emit its *virtual table* — the subformula's
   satisfying valuations at the new time;
3. evaluate every constraint's violation formula over the new state
   plus the virtual tables, reporting witnesses for non-empty answers.

A constraint with free variables is implicitly universally closed; its
*violation formula* is ``normalize(NOT f)``, whose answers at a state
are exactly the violating valuations.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Sequence, Union

from repro.core.auxiliary import AuxiliaryState, make_auxiliary
from repro.core.foeval import AtomProvider, evaluate, relation_atom_table
from repro.core.formulas import Atom, Formula, Not
from repro.core.normalize import canonicalize_variant, normalize
from repro.core.parser import parse
from repro.core.safety import check_node_conditions, check_safe
from repro.core.statespace import AuxAccounting
from repro.core.violations import RunReport, StepReport, Violation
from repro.db.algebra import Table
from repro.db.database import DatabaseState
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.errors import MonitorError, SchemaError
from repro.temporal.clock import Timestamp, validate_successor
from repro.temporal.stream import UpdateStream


class Constraint:
    """A named integrity constraint.

    Args:
        name: report label.
        formula: the constraint formula (text in the concrete syntax or
            a :class:`~repro.core.formulas.Formula`); free variables are
            implicitly universally quantified.
    """

    __slots__ = ("name", "formula", "violation_formula")

    def __init__(
        self,
        name: str,
        formula: Union[str, Formula],
        require_safe: bool = True,
    ):
        """Args:
            name: report label.
            formula: constraint formula (text or AST).
            require_safe: verify the safe-range conditions (default).
                The active-domain engine (:mod:`repro.core.adom`) sets
                this to False — it evaluates outside the safe fragment.
        """
        if isinstance(formula, str):
            formula = parse(formula)
        self.name = name
        self.formula = formula
        from repro.core.optimize import optimize

        kernel = normalize(Not(formula))
        if require_safe:
            # node well-formedness is checked before optimisation so
            # constant folding cannot hide mistakes in dead branches;
            # overall evaluability is checked after, so folding may
            # legitimately rescue e.g. a constant-FALSE disjunct
            check_node_conditions(kernel)
        self.violation_formula = optimize(kernel)
        if require_safe:
            check_safe(self.violation_formula)

    def validate_schema(self, schema: DatabaseSchema) -> None:
        """Check that every atom matches the schema's relations/arities."""
        for sub in self.formula.walk():
            if isinstance(sub, Atom):
                rel = schema.relation(sub.relation)
                if rel.arity != len(sub.terms):
                    raise SchemaError(
                        f"constraint {self.name!r}: atom {sub} has "
                        f"{len(sub.terms)} argument(s) but relation "
                        f"{sub.relation!r} has arity {rel.arity}"
                    )

    def __repr__(self) -> str:
        return f"Constraint({self.name!r}: {self.formula})"


def reject_future_constraints(constraints, engine: str) -> None:
    """Guard for pure-past engines: future operators need the delayed
    checker, whose verdicts lag the input by the future horizon."""
    for c in constraints:
        if c.violation_formula.has_future:
            raise MonitorError(
                f"constraint {c.name!r} uses future temporal operators; "
                f"the {engine} engine is pure-past — use "
                f"repro.core.future.DelayedChecker"
            )


class _StateProvider(AtomProvider):
    """Resolves atoms from the current state and temporal nodes from
    the virtual tables computed earlier in the same step."""

    def __init__(
        self,
        state: DatabaseState,
        virtual: Dict[Formula, Table],
    ):
        self.state = state
        self.virtual = virtual
        self._atom_cache: Dict[Atom, Table] = {}

    def atom_table(self, atom: Atom) -> Table:
        cached = self._atom_cache.get(atom)
        if cached is None:
            cached = relation_atom_table(
                self.state.relation(atom.relation), atom
            )
            self._atom_cache[atom] = cached
        return cached

    def temporal_table(self, formula: Formula) -> Table:
        try:
            return self.virtual[formula]
        except KeyError:
            raise MonitorError(
                f"virtual table missing for {formula}; temporal nodes "
                f"must be advanced bottom-up"
            ) from None


class IncrementalChecker(AuxAccounting):
    """Checks constraints over an update stream in bounded space."""

    #: engine label used in telemetry series and by ``space_of``
    engine_label = "incremental"

    #: optional per-step :class:`~repro.resilience.degrade.StepBudget`
    #: (set by the monitor; ``None`` keeps the hot path budget-free)
    budget = None

    def __init__(
        self,
        schema: DatabaseSchema,
        constraints: Sequence[Constraint],
        initial: Optional[DatabaseState] = None,
        collapse_unbounded: bool = True,
        instrumentation=None,
        strict: bool = False,
        share_subformulas: bool = False,
    ):
        """Args:
            schema: the database schema.
            constraints: compiled constraints to monitor.
            initial: base state the first transaction applies to.
            collapse_unbounded: use the min-timestamp encoding for
                unbounded intervals (default; ``False`` is an ablation
                that stores every anchor — see benchmark E9).
            instrumentation: optional
                :class:`repro.obs.instrument.Instrumentation` receiving
                step/aux/constraint telemetry; ``None`` (default) keeps
                the hot path hook-free.
            strict: lint the constraint set at construction and raise
                :class:`~repro.errors.LintError` on error-severity
                diagnostics (see :mod:`repro.lint`).
            share_subformulas: maintain one auxiliary state per
                *rename-equivalence* class of temporal subformulas and
                fan its virtual table out to the member nodes via
                column renaming, instead of one per structurally
                distinct node.  Verdicts are identical; overlapping
                constraint sets advance each shared class once per
                step (see :mod:`repro.analysis.plan` and benchmark
                E14).
        """
        self.schema = schema
        self.constraints = list(constraints)
        if strict:
            from repro.lint.linter import reject_lint_errors

            reject_lint_errors(
                schema, [(c.name, c.formula) for c in self.constraints]
            )
        for c in self.constraints:
            c.validate_schema(schema)
        reject_future_constraints(self.constraints, "incremental")
        self.state = (
            initial if initial is not None else DatabaseState.empty(schema)
        )
        if self.state.schema != schema:
            raise MonitorError("initial state does not match schema")
        self.collapse_unbounded = collapse_unbounded
        self.share_subformulas = bool(share_subformulas)
        # one auxiliary state per *structurally distinct* temporal node,
        # shared across constraints; insertion order is bottom-up.  With
        # share_subformulas, one per *rename-equivalence* class instead:
        # the first-seen node represents its class and _shared_members
        # lists the other member nodes with the column renaming that
        # turns the representative's virtual table into theirs.
        self._aux: Dict[Formula, AuxiliaryState] = {}
        self._shared_members: Dict[
            Formula, List["tuple[Formula, Dict[str, str]]"]
        ] = {}
        if self.share_subformulas:
            class_of: Dict[str, Formula] = {}
            rep_mapping: Dict[Formula, Dict[str, str]] = {}
            registered: set = set()
            for c in self.constraints:
                for node in c.violation_formula.temporal_subformulas():
                    if node in registered:
                        continue
                    registered.add(node)
                    canonical, mapping = canonicalize_variant(node)
                    key = str(canonical)
                    representative = class_of.get(key)
                    if representative is None:
                        class_of[key] = node
                        rep_mapping[node] = mapping
                        self._aux[node] = make_auxiliary(
                            node, collapse_unbounded
                        )
                        self._shared_members[node] = []
                    else:
                        # rep column -> member column, through the
                        # canonical names (both mappings are injective
                        # and free variables map to free variables)
                        inverse = {
                            canon: var for var, canon in mapping.items()
                        }
                        columns = {
                            var: inverse[canon]
                            for var, canon in
                            rep_mapping[representative].items()
                            if var in representative.free_vars
                        }
                        if all(k == v for k, v in columns.items()):
                            columns = {}  # identity: fan out unrenamed
                        self._shared_members[representative].append(
                            (node, columns)
                        )
        else:
            for c in self.constraints:
                for node in c.violation_formula.temporal_subformulas():
                    if node not in self._aux:
                        self._aux[node] = make_auxiliary(
                            node, collapse_unbounded
                        )
        self._time: Optional[Timestamp] = None
        self._index = -1
        #: virtual tables of the most recent step (for diagnose())
        self._last_virtual: Dict[Formula, Table] = {}
        # verdict caching for *state-local* constraints: a constraint
        # with no temporal operators can only change verdict when a
        # relation it reads changes, so untouched ones reuse their last
        # witnesses.  Temporal constraints always re-evaluate — metric
        # windows expire by clock passage alone.
        self._state_local = {
            c.name: c.violation_formula.relations_used()
            for c in self.constraints
            if not any(True for _ in c.violation_formula.temporal_subformulas())
        }
        self._cached_witnesses: Dict[str, Table] = {}
        self._touched: Optional[frozenset] = None
        #: constraint evaluations actually performed (instrumentation)
        self.evaluations = 0
        #: hook sink (None = disabled; see repro.obs.instrument)
        self.instrumentation = instrumentation
        # telemetry attribution, precomputed so enabled-path lookups
        # are dict reads: each constraint's aux states and each node's
        # printable label.  With sharing, member nodes attribute to
        # their class representative's aux state.
        self._node_aux: Dict[Formula, AuxiliaryState] = dict(self._aux)
        for representative, members in self._shared_members.items():
            for member, _columns in members:
                self._node_aux[member] = self._aux[representative]
        self._constraint_aux = {
            c.name: tuple(
                {
                    id(self._node_aux[node]): self._node_aux[node]
                    for node in c.violation_formula.temporal_subformulas()
                }.values()
            )
            for c in self.constraints
        }
        self._node_labels = {node: str(node) for node in self._aux}

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    @property
    def now(self) -> Optional[Timestamp]:
        """Timestamp of the last processed state (None before any)."""
        return self._time

    @property
    def steps_processed(self) -> int:
        """Number of states processed so far."""
        return self._index + 1

    def step(self, time: Timestamp, txn: Transaction) -> StepReport:
        """Apply ``txn`` at ``time`` and check all constraints.

        Timestamps must strictly increase across calls.

        Returns:
            A :class:`StepReport` with any violations at the new state.
        """
        validate_successor(self._time, time)
        if self.budget is not None:
            self.budget.arm()
        obs = self.instrumentation
        if obs is not None:
            started = perf_counter()
            obs.step_begin(self.engine_label, time, txn.size)
        self.state = self.state.apply(txn)
        if obs is not None:
            obs.apply_done(
                self.engine_label, time, perf_counter() - started
            )
        self._time = time
        self._index += 1
        self._touched = txn.touched_relations()
        report = self._check_current()
        if obs is not None:
            obs.step_end(
                self.engine_label,
                time,
                perf_counter() - started,
                len(report.violations),
                self.aux_tuple_count(),
            )
        return report

    def step_state(self, time: Timestamp, state: DatabaseState) -> StepReport:
        """Like :meth:`step`, but with the successor state given directly."""
        validate_successor(self._time, time)
        if state.schema != self.schema:
            raise MonitorError("state does not match checker schema")
        if self.budget is not None:
            self.budget.arm()
        obs = self.instrumentation
        if obs is not None:
            started = perf_counter()
            obs.step_begin(self.engine_label, time, None)
        self.state = state
        self._time = time
        self._index += 1
        self._touched = None  # unknown delta: no verdict reuse
        report = self._check_current()
        if obs is not None:
            obs.step_end(
                self.engine_label,
                time,
                perf_counter() - started,
                len(report.violations),
                self.aux_tuple_count(),
            )
        return report

    def run(self, stream: Union[UpdateStream, Sequence]) -> RunReport:
        """Process a whole update stream; return the aggregate report."""
        report = RunReport()
        for time, txn in stream:
            report.add(self.step(time, txn))
        return report

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _check_current(self) -> StepReport:
        assert self._time is not None
        time = self._time
        virtual: Dict[Formula, Table] = {}
        self._last_virtual = virtual  # retained for diagnose()
        provider = _StateProvider(self.state, virtual)

        def evaluate_now(formula: Formula, context: Optional[Table] = None) -> Table:
            return evaluate(formula, provider, context)

        obs = self.instrumentation
        # bottom-up: registration order is post-order per constraint, so
        # any node's children were registered (hence advanced) before it.
        # With sharing, each class representative advances once and its
        # virtual table is fanned out to the member nodes by renaming
        # columns — a member's class was registered no later than any
        # node containing it, so fan-out preserves bottom-up resolution.
        shared = self._shared_members
        for node, aux in self._aux.items():
            if obs is not None:
                started = perf_counter()
                table = aux.advance(time, evaluate_now)
                obs.aux_advanced(
                    self.engine_label,
                    self._node_labels[node],
                    perf_counter() - started,
                    aux.tuple_count(),
                )
            else:
                table = aux.advance(time, evaluate_now)
            virtual[node] = table
            members = shared.get(node)
            if members:
                for member, columns in members:
                    virtual[member] = (
                        table.rename(columns) if columns else table
                    )

        violations: List[Violation] = []
        budget = self.budget
        for c in self.constraints:
            if budget is not None and budget.should_defer(c.name):
                # shed this evaluation; drop any cached verdict so the
                # constraint is re-evaluated (not served stale) later
                self._cached_witnesses.pop(c.name, None)
                continue
            if obs is not None:
                started = perf_counter()
                witnesses = self._witnesses_for(c, provider)
                obs.constraint_checked(
                    self.engine_label,
                    c.name,
                    perf_counter() - started,
                    0 if witnesses.is_empty else max(1, len(witnesses)),
                    sum(
                        a.tuple_count()
                        for a in self._constraint_aux[c.name]
                    ),
                )
            else:
                witnesses = self._witnesses_for(c, provider)
            if not witnesses.is_empty:
                violations.append(
                    Violation(c.name, time, self._index, witnesses)
                )
        return StepReport(
            time,
            self._index,
            violations,
            deferred=tuple(budget.deferred) if budget is not None else (),
        )

    def _witnesses_for(self, constraint: Constraint, provider) -> Table:
        reads = self._state_local.get(constraint.name)
        if reads is not None:
            cached = self._cached_witnesses.get(constraint.name)
            if (
                cached is not None
                and self._touched is not None
                and not (self._touched & reads)
            ):
                return cached
        self.evaluations += 1
        witnesses = evaluate(constraint.violation_formula, provider)
        if reads is not None:
            self._cached_witnesses[constraint.name] = witnesses
        return witnesses

    def sharing_stats(self) -> Dict[str, float]:
        """Dedup accounting of auxiliary maintenance.

        ``classes`` is the number of auxiliary states actually
        maintained; ``shared_nodes`` counts the structurally distinct
        temporal nodes served by another class member's state (always 0
        without ``share_subformulas``); ``dedup_ratio`` is maintained
        states over distinct nodes (1.0 = nothing shared).
        """
        members = sum(len(v) for v in self._shared_members.values())
        classes = len(self._aux)
        distinct = classes + members
        return {
            "classes": float(classes),
            "shared_nodes": float(members),
            "distinct_nodes": float(distinct),
            "dedup_ratio": (classes / distinct) if distinct else 1.0,
        }

    # instrumentation: the uniform accounting protocol
    # (aux_tuple_count / aux_profile / state_profile / ...) is
    # inherited from repro.core.statespace.AuxAccounting
