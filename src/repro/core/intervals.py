"""Metric intervals for real-time temporal operators.

Every temporal operator of the constraint language carries an interval
``[low, high]`` of clock distances: ``ONCE[2,5] f`` holds now when ``f``
held at some past state between 2 and 5 clock units ago.  ``high`` may
be infinite (written ``*`` in the concrete syntax), giving the purely
qualitative operators of past temporal logic as the special case
``[0,*]``.

The interval's upper bound is what makes *bounded history encoding*
possible: a finite ``high`` means observations older than ``high`` clock
units can never matter again and are pruned from the auxiliary
relations (:mod:`repro.core.auxiliary`).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError


class IntervalError(ReproError):
    """The interval bounds are ill-formed (negative, or low > high)."""


class Interval:
    """A metric interval ``[low, high]`` over clock distances.

    Attributes:
        low: inclusive lower bound, a non-negative integer.
        high: inclusive upper bound, a non-negative integer, or ``None``
            meaning infinity.
    """

    __slots__ = ("low", "high")

    def __init__(self, low: int = 0, high: Optional[int] = None):
        if isinstance(low, bool) or not isinstance(low, int) or low < 0:
            raise IntervalError(
                f"interval lower bound must be a non-negative int, got {low!r}"
            )
        if high is not None:
            if isinstance(high, bool) or not isinstance(high, int):
                raise IntervalError(
                    f"interval upper bound must be an int or None, got {high!r}"
                )
            if high < low:
                raise IntervalError(
                    f"empty interval: [{low},{high}]"
                )
        self.low = low
        self.high = high

    @classmethod
    def unbounded(cls, low: int = 0) -> "Interval":
        """The interval ``[low, *]``."""
        return cls(low, None)

    @classmethod
    def point(cls, at: int) -> "Interval":
        """The singleton interval ``[at, at]``."""
        return cls(at, at)

    @property
    def is_bounded(self) -> bool:
        """Whether the upper bound is finite."""
        return self.high is not None

    @property
    def is_trivial(self) -> bool:
        """Whether this is ``[0,*]`` (the non-metric case)."""
        return self.low == 0 and self.high is None

    def contains(self, delta: int) -> bool:
        """Whether clock distance ``delta`` lies in the interval."""
        if delta < self.low:
            return False
        return self.high is None or delta <= self.high

    def bounded_by(self, delta: int) -> bool:
        """Whether ``delta`` already exceeds the upper bound.

        ``True`` means an observation ``delta`` units old can never
        satisfy this interval at any *future* time either (distances
        only grow), so it is safe to prune.
        """
        return self.high is not None and delta > self.high

    def horizon(self) -> Optional[int]:
        """The pruning horizon: ``high`` if bounded, else ``None``.

        An auxiliary relation for an operator with this interval needs
        to remember observations at most ``horizon()`` clock units old
        (``None`` = needs the min-timestamp encoding instead).
        """
        return self.high

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Interval)
            and self.low == other.low
            and self.high == other.high
        )

    def __hash__(self) -> int:
        return hash((self.low, self.high))

    def __repr__(self) -> str:
        return f"Interval({self.low}, {self.high})"

    def __str__(self) -> str:
        hi = "*" if self.high is None else str(self.high)
        return f"[{self.low},{hi}]"


#: The default interval ``[0,*]`` — plain (non-metric) past operators.
TRIVIAL = Interval(0, None)
