"""Semantics-preserving formula simplification.

Rewrites applied to kernel formulas before compilation.  Every rule
here is *valid in sampled metric time* — a stricter bar than it looks:
the tempting window-arithmetic rules are wrong under sampling (e.g.
``ONCE[0,5] ONCE[0,5] f`` is **not** ``ONCE[0,10] f``: the intermediate
state the composition needs may simply not exist), so only rules with
a proof sketch in their docstring are included.  The optimiser's
soundness is property-tested by checking random formulas against their
optimised forms on random streams.

Rules:

* constant folding through the connectives (``TRUE``/``FALSE`` as the
  nullary comparisons);
* duplicate and absorbed operands of ``AND``/``OR``;
* temporal operators over constants (``ONCE[0,b] TRUE`` with ``0`` in
  the interval is ``TRUE``, over ``FALSE`` is ``FALSE``, ...);
* idempotent collapse of *trivial* ``ONCE``/``EVENTUALLY`` chains
  (``ONCE[0,*] ONCE[0,b] f  →  ONCE[0,*] f``: any inner witness state
  is itself an outer witness at distance 0).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.formulas import (
    Aggregate,
    And,
    Atom,
    Comparison,
    Const,
    Eventually,
    Exists,
    Formula,
    Next,
    Not,
    Once,
    Or,
    Prev,
    Since,
    Until,
)


def _truth_of(formula: Formula) -> Optional[bool]:
    """The constant truth value of a formula, if it has one."""
    if isinstance(formula, Comparison) and isinstance(
        formula.left, Const
    ) and isinstance(formula.right, Const):
        try:
            return formula.evaluate(formula.left.value, formula.right.value)
        except Exception:
            return False
    return None


def _const(value: bool) -> Formula:
    from repro.core.formulas import FALSE, TRUE

    return TRUE if value else FALSE


def optimize(formula: Formula) -> Formula:
    """Apply the valid rewrites bottom-up; returns a kernel formula."""
    if isinstance(formula, Atom):
        return formula

    if isinstance(formula, Comparison):
        truth = _truth_of(formula)
        if truth is not None:
            return _const(truth)  # canonicalise constant comparisons
        return formula

    if isinstance(formula, Not):
        inner = optimize(formula.operand)
        truth = _truth_of(inner)
        if truth is not None:
            return _const(not truth)
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)

    if isinstance(formula, (And, Or)):
        return _optimize_nary(formula)

    if isinstance(formula, Exists):
        inner = optimize(formula.operand)
        truth = _truth_of(inner)
        if truth is not None:
            return _const(truth)  # body constant: quantifier vacuous
        return Exists(formula.variables, inner)

    if isinstance(formula, Aggregate):
        return Aggregate(
            formula.op, formula.result, formula.over,
            optimize(formula.body),
        )

    if isinstance(formula, (Once, Eventually)):
        inner = optimize(formula.operand)
        truth = _truth_of(inner)
        if truth is False:
            return _const(False)  # no state ever satisfies the operand
        if truth is True and formula.interval.low == 0:
            # the current state is a witness at distance 0
            return _const(True)
        if (
            formula.interval.is_trivial
            and isinstance(inner, type(formula))
            and inner.interval.low == 0
        ):
            # ONCE[0,*] ONCE[0,b] f == ONCE[0,*] f: any state where the
            # inner f holds witnesses the inner operator at distance 0,
            # hence the outer at any distance (mirror for EVENTUALLY)
            return type(formula)(inner.operand, formula.interval)
        return type(formula)(inner, formula.interval)

    if isinstance(formula, (Prev, Next)):
        inner = optimize(formula.operand)
        if _truth_of(inner) is False:
            return _const(False)
        return type(formula)(inner, formula.interval)

    if isinstance(formula, (Since, Until)):
        left = optimize(formula.left)
        right = optimize(formula.right)
        if _truth_of(right) is False:
            return _const(False)  # no anchor can ever exist
        if _truth_of(right) is True and formula.interval.low == 0:
            return _const(True)  # the current state anchors itself
        if _truth_of(left) is True:
            # survival is vacuous: f SINCE g == ONCE g (same interval)
            wrapper = Once if isinstance(formula, Since) else Eventually
            return wrapper(right, formula.interval)
        return type(formula)(left, right, formula.interval)

    raise TypeError(
        f"optimize expects kernel formulas, got {type(formula).__name__}"
    )


def _optimize_nary(formula: Formula) -> Formula:
    is_and = isinstance(formula, And)
    absorbing = False if is_and else True      # FALSE kills AND, TRUE kills OR
    parts: List[Formula] = []
    for operand in formula.operands:  # type: ignore[attr-defined]
        opt = optimize(operand)
        truth = _truth_of(opt)
        if truth is absorbing:
            return _const(absorbing)
        if truth is not None:
            continue  # neutral element, drop
        if isinstance(opt, type(formula)):
            parts.extend(opt.operands)  # re-flatten after rewrites
        elif opt not in parts:
            parts.append(opt)
    if not parts:
        return _const(not absorbing)
    if len(parts) == 1:
        return parts[0]
    return (And if is_and else Or)(*parts)
