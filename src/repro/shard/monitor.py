"""`ShardedMonitor` — the fault-isolated, partitioned monitor façade.

Drop-in for :class:`~repro.core.monitor.Monitor` on shardable
workloads::

    from repro.shard import ShardedMonitor

    monitor = ShardedMonitor(schema, key="sensor", shards=4,
                             journal_root="journal")
    monitor.add_constraint(
        "alarm-justified",
        "alarm(s) -> ONCE[0,10] reading(s, 2)",
    )
    report = monitor.step(3, txn)     # merged across the 4 workers
    assert monitor.accounting()["verdicts"] == 1

Updates hash-partition by the ``key`` attribute's value across N
isolated workers (each a full ``Monitor`` with its own checker and
per-shard journal under ``<root>/shard-NNNN/``); verdicts merge back
bit-for-bit equal to the single-process run — including under injected
worker crashes, which recover by journal replay (see
:mod:`repro.shard.supervisor` for the failure handling and
:mod:`repro.shard.partition` for when a constraint shards).

The façade is the fault *boundary*: timestamps and transactions are
validated before splitting, so a poisoned input is skipped or
quarantined supervisor-side (under the usual
:class:`~repro.resilience.FaultPolicy`) and the workers only ever see
clean steps.  The accounting identity — every fed step is exactly one
of a verdict, a degraded verdict, or a shed (skipped) step — is
exposed by :meth:`accounting` and holds whenever nothing is in
flight.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.checker import Constraint
from repro.core.formulas import Formula
from repro.core.parser import parse, parse_constraints
from repro.core.violations import RunReport, StepReport
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.errors import HandlerError, HistoryError, MonitorError
from repro.shard.partition import PLAN_VERSION, ShardPlan
from repro.shard.supervisor import ShardSupervisor
from repro.shard.worker import WorkerSpec
from repro.temporal.clock import Timestamp, validate_successor
from repro.temporal.stream import UpdateStream

MANIFEST_NAME = "shard-plan.json"


def _shard_dir(root: Path, shard: int) -> Path:
    return root / f"shard-{shard:04d}"


class ShardedMonitor:
    """Hash-partitioned monitoring across a supervised worker pool."""

    engine = "incremental"

    def __init__(
        self,
        schema: DatabaseSchema,
        key: str,
        shards: int = 4,
        journal_root=None,
        checkpoint_every: int = 64,
        sync: bool = True,
        on_unkeyed: str = "reject",
        transport: str = "inline",
        chaos=None,
        mailbox_capacity: int = 8,
        stall_timeout: int = 16,
        max_respawns: int = 2,
        pressure_deadline: Optional[float] = None,
        urgent: Sequence[str] = (),
        instrumentation=None,
        fault_policy=None,
        quarantine_log=None,
    ):
        """Args:
            schema: the database schema.
            key: attribute designating keyed relations (see
                :class:`~repro.shard.ShardPlan`).
            shards: number of worker partitions.
            journal_root: directory receiving the ``shard-plan.json``
                manifest and one journal per shard; ``None`` disables
                persistence (crashed shards then tombstone instead of
                recovering).
            checkpoint_every: per-shard checkpoint cadence (steps).
            sync: fsync journal records and checkpoints (default on —
                an acknowledged step must survive a host crash).
            on_unkeyed: ``"reject"`` or ``"broadcast"`` for constraints
                touching no keyed relation.
            transport: ``"inline"`` (deterministic) or ``"process"``.
            chaos: optional
                :class:`~repro.resilience.ShardChaosPlan` of injected
                worker faults (tests, smoke runs).
            mailbox_capacity: per-shard backlog bound (backpressure).
            stall_timeout: heartbeat budget in pump rounds.
            max_respawns: per-shard crash budget before tombstoning.
            pressure_deadline: step budget (seconds) armed on a worker
                whose mailbox crosses the capacity mark.
            urgent: constraint names never shed under pressure.
            instrumentation: optional instrumentation whose metrics
                registry receives the ``repro_shard_*`` families.
            fault_policy: supervisor-side
                :class:`~repro.resilience.FaultPolicy` for poisoned
                inputs (and the channel shard-crash records ride).
            quarantine_log: optional
                :class:`~repro.resilience.QuarantineLog` or path.
        """
        self.schema = schema
        self.key = key
        self.shards = shards
        self.plan = ShardPlan(schema, key, shards, on_unkeyed=on_unkeyed)
        self.journal_root = (
            Path(journal_root) if journal_root is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.sync = sync
        self.transport = transport
        self.chaos = chaos
        self.mailbox_capacity = mailbox_capacity
        self.stall_timeout = stall_timeout
        self.max_respawns = max_respawns
        self.pressure_deadline = pressure_deadline
        self.urgent = tuple(urgent)
        self.instrumentation = instrumentation
        self.constraints: List[Constraint] = []
        self._texts: List[tuple] = []
        self._supervisor: Optional[ShardSupervisor] = None
        self._violation_handlers: List = []
        self._alert_handlers: List = []
        self._resilience = None
        self._ingest = None
        self._now: Optional[Timestamp] = None
        self._index = 0
        self._steps_fed = 0
        self._verdicts = 0
        self._degraded = 0
        self._shed = 0
        if fault_policy is not None or quarantine_log is not None:
            self._configure_fault_policy(fault_policy, quarantine_log)

    # ------------------------------------------------------------------
    # configuration (mirrors Monitor)
    # ------------------------------------------------------------------

    def _metrics(self):
        return getattr(self.instrumentation, "metrics", None)

    def _configure_fault_policy(self, fault_policy, quarantine_log) -> None:
        from repro.resilience import (
            FaultPolicy,
            QuarantineLog,
            ResilienceRuntime,
        )

        if quarantine_log is not None and not isinstance(
            quarantine_log, QuarantineLog
        ):
            quarantine_log = QuarantineLog(quarantine_log)
        if fault_policy is None:
            fault_policy = FaultPolicy.QUARANTINE
        self._resilience = ResilienceRuntime(
            fault_policy,
            quarantine=quarantine_log,
            metrics=self._metrics(),
            engine="sharded",
        )

    @property
    def resilience(self):
        """The supervisor-side fault runtime (None when no policy)."""
        return self._resilience

    @property
    def telemetry(self):
        """Event-time telemetry is per-worker; the façade has none."""
        return None

    @property
    def ingest(self):
        """The last :class:`~repro.ingest.IngestPipeline` fed (or None)."""
        return self._ingest

    @property
    def now(self) -> Optional[Timestamp]:
        """Timestamp of the last accepted step (None before any)."""
        return self._now

    def on_violation(self, handler) -> None:
        """Register ``handler(violation)`` on every *merged* violation.

        Same isolation discipline as
        :meth:`~repro.core.monitor.Monitor.on_violation`.
        """
        self._violation_handlers.append(handler)

    def on_alert(self, handler) -> None:
        """Register ``handler(record)`` for shard fault alerts.

        Receives each crash/stall/tombstone
        :class:`~repro.resilience.FaultRecord` the supervisor emits —
        the sharded counterpart of the Monitor's alert channel.
        """
        self._alert_handlers.append(handler)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def add_constraint(
        self, name: str, formula: Union[str, Formula]
    ) -> Constraint:
        """Register one constraint; it must route cleanly on the plan.

        Raises:
            ShardingError: when the constraint cannot be partitioned
                by the shard key (with a rewrite hint).
        """
        if self._supervisor is not None:
            raise MonitorError(
                "constraints must be registered before the first step"
            )
        if any(c.name == name for c in self.constraints):
            raise MonitorError(f"duplicate constraint name {name!r}")
        text = formula if isinstance(formula, str) else str(formula)
        if isinstance(formula, str):
            formula = parse(formula)
        constraint = Constraint(name, formula)
        constraint.validate_schema(self.schema)
        self.plan.admit(constraint)
        self.constraints.append(constraint)
        self._texts.append((name, text))
        return constraint

    def add_constraints_text(self, text: str) -> List[Constraint]:
        """Register a whole constraint file (``[name :] formula ; ...``)."""
        return [
            self.add_constraint(name, formula)
            for name, formula in parse_constraints(text)
        ]

    # ------------------------------------------------------------------
    # the worker pool
    # ------------------------------------------------------------------

    def _specs(self) -> List[WorkerSpec]:
        return [
            WorkerSpec(
                shard,
                self.schema.to_dict(),
                list(self._texts),
                journal_dir=(
                    str(_shard_dir(self.journal_root, shard))
                    if self.journal_root is not None
                    else None
                ),
                checkpoint_every=self.checkpoint_every,
                sync=self.sync,
            )
            for shard in range(self.shards)
        ]

    def _write_manifest(self) -> None:
        if self.journal_root is None:
            return
        self.journal_root.mkdir(parents=True, exist_ok=True)
        manifest = {
            "version": PLAN_VERSION,
            "schema": self.schema.to_dict(),
            "key": self.key,
            "shards": self.shards,
            "on_unkeyed": self.plan.on_unkeyed,
            "checkpoint_every": self.checkpoint_every,
            "sync": self.sync,
            "constraints": [list(pair) for pair in self._texts],
            "plan": self.plan.to_dict(),
        }
        path = self.journal_root / MANIFEST_NAME
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True))

    def _build_supervisor(self, recovered: bool = False) -> ShardSupervisor:
        if not self.constraints:
            raise MonitorError(
                "register at least one constraint before stepping"
            )
        if not recovered:
            self._write_manifest()
        return ShardSupervisor(
            self.plan,
            self._specs(),
            order=[c.name for c in self.constraints],
            transport=self.transport,
            chaos=self.chaos,
            mailbox_capacity=self.mailbox_capacity,
            stall_timeout=self.stall_timeout,
            max_respawns=self.max_respawns,
            pressure_deadline=self.pressure_deadline,
            urgent=self.urgent,
            metrics=self._metrics(),
            on_fault=self._shard_fault,
            recovered=recovered,
        )

    @property
    def supervisor(self) -> ShardSupervisor:
        """The worker pool (created lazily at first use)."""
        if self._supervisor is None:
            self._supervisor = self._build_supervisor()
        return self._supervisor

    def _shard_fault(self, record) -> None:
        """Route a supervisor fault record into quarantine + alerts."""
        resilience = self._resilience
        if resilience is not None and resilience.quarantine is not None:
            resilience.quarantine.record(record)
            resilience.quarantined += 1
        failures = []
        for handler in self._alert_handlers:
            try:
                handler(record)
            except Exception as exc:  # noqa: BLE001 — isolation point
                failures.append((record, exc))
        if failures:
            raise HandlerError([record], failures) from failures[0][1]

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------

    def step(self, time: Timestamp, txn: Transaction) -> StepReport:
        """Apply one transaction everywhere; return the merged verdict.

        Synchronous: pumps the pool until this step's fragments have
        all arrived (or degraded).  Input faults are intercepted here,
        before splitting, under the configured fault policy.
        """
        reports = self._submit(time, txn)
        reports.extend(self._flush())
        return reports[-1]

    def run(self, stream: Union[UpdateStream, Sequence]) -> RunReport:
        """Process a whole update stream, pipelining across shards.

        Unlike :meth:`step`, submission runs ahead of merging (bounded
        by the mailbox capacity), so a slow shard does not serialise
        the healthy ones; reports still arrive in stream order.
        """
        report = RunReport()
        for time, txn in stream:
            for merged in self._submit(time, txn):
                report.add(merged)
        for merged in self._flush():
            report.add(merged)
        return report

    def feed(self, sources, **kwargs) -> RunReport:
        """Pull from unordered, unreliable sources until they run dry.

        The sharded counterpart of
        :meth:`~repro.core.monitor.Monitor.feed` — the same
        :class:`~repro.ingest.IngestPipeline` (watermark reordering,
        retries, bounded queue) drives the merged :meth:`step`.
        """
        from repro.ingest import IngestPipeline

        pipeline = IngestPipeline(self, sources, **kwargs)
        self._ingest = pipeline
        return pipeline.run()

    def _submit(self, time: Timestamp, txn: Transaction) -> List[StepReport]:
        from repro.resilience import FAULT_ERRORS, classify_fault

        self._steps_fed += 1
        try:
            if not isinstance(txn, Transaction):
                raise HistoryError(
                    f"stream element at t={time!r} is not a Transaction "
                    f"but {type(txn).__name__}"
                )
            validate_successor(self._now, time)
            txn.validate(self.schema)
        except FAULT_ERRORS as exc:
            if self._resilience is None:
                self._steps_fed -= 1
                raise
            # keep report order: everything in flight merges first
            ready = [self._finish(r) for r in self.supervisor.flush()]
            skipped = self._resilience.handle(
                classify_fault(exc), exc, time, txn, self._index
            )
            self._shed += 1
            ready.append(skipped)
            return ready
        self._now = time
        index = self._index
        self._index += 1
        return [
            self._finish(r) for r in self.supervisor.submit(time, txn, index)
        ]

    def _flush(self) -> List[StepReport]:
        if self._supervisor is None:
            return []
        return [self._finish(r) for r in self._supervisor.flush()]

    def _finish(self, report: StepReport) -> StepReport:
        if report.degraded:
            self._degraded += 1
            if self._resilience is not None:
                self._resilience.note_step(report)
        else:
            self._verdicts += 1
        return self._dispatch(report)

    def _dispatch(self, report: StepReport) -> StepReport:
        if not self._violation_handlers:
            return report
        failures = []
        for violation in report.violations:
            for handler in self._violation_handlers:
                try:
                    handler(violation)
                except Exception as exc:  # noqa: BLE001 — isolation point
                    failures.append((violation, exc))
        if failures:
            resilience = self._resilience
            if resilience is not None and (
                resilience.policy.value != "fail_fast"
            ):
                resilience.handle_handler_failures(report, failures)
            else:
                raise HandlerError(report, failures) from failures[0][1]
        return report

    def record_fault(
        self,
        kind: str,
        reason: str,
        time: Optional[Timestamp] = None,
        payload=None,
    ) -> StepReport:
        """Report an out-of-band fault (lenient stream decoding)."""
        error = HistoryError(reason)
        if self._resilience is None:
            raise error
        from repro.resilience import classify_fault

        self._steps_fed += 1
        self._shed += 1
        return self._resilience.handle(
            classify_fault(error) if kind is None else kind,
            error,
            time,
            payload,
            self._index,
        )

    def set_step_deadline(self, deadline, urgent=()) -> None:
        """Install or clear a step budget on every live worker."""
        self.supervisor.set_step_deadline(deadline, urgent=urgent)

    # ------------------------------------------------------------------
    # accounting / health / shutdown
    # ------------------------------------------------------------------

    def accounting(self) -> Dict[str, int]:
        """Zero-silent-drop ledger.

        The identity ``steps_fed == verdicts + degraded + shed +
        in_flight`` always holds; at rest (nothing in flight) every
        fed step is exactly one merged verdict, one explicitly
        degraded verdict, or one shed (skipped/quarantined) step.
        """
        in_flight = (
            self._supervisor.in_flight if self._supervisor is not None else 0
        )
        return {
            "steps_fed": self._steps_fed,
            "verdicts": self._verdicts,
            "degraded": self._degraded,
            "shed": self._shed,
            "in_flight": in_flight,
        }

    def summary(self) -> Dict[str, object]:
        """Supervision + accounting summary (CLI / test reporting)."""
        out: Dict[str, object] = {"accounting": self.accounting()}
        if self._supervisor is not None:
            out["supervisor"] = self._supervisor.summary()
        if self._resilience is not None:
            out["resilience"] = self._resilience.summary()
        return out

    def health(self) -> Dict:
        """Merged ``repro-health/1`` snapshot across all live shards.

        Inline transport only — worker snapshots live in this process.
        The merged document gains a ``shards`` section with the
        supervision counters.
        """
        from repro.obs.health import build_sharded_health

        return build_sharded_health(self)

    def close(self) -> None:
        """Shut the pool down and release every shard journal."""
        if self._supervisor is not None:
            self._supervisor.close()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(cls, journal_root, transport: str = "inline", chaos=None,
                **kwargs):
        """Rebuild a sharded monitor after a supervisor crash.

        Reads the ``shard-plan.json`` manifest under ``journal_root``,
        recovers every shard worker from its own journal (checkpoint +
        tail replay — never the full stream), and resumes at the
        merged frontier ``min(shard frontiers)``.  Re-fed steps between
        that frontier and a leading shard's own frontier are answered
        from the replay on the shards that already applied them.

        Returns:
            ``(monitor, info)`` — ``info`` has per-shard recovery
            detail and the global ``resume_from`` frontier.
        """
        root = Path(journal_root)
        path = root / MANIFEST_NAME
        if not path.is_file():
            raise MonitorError(
                f"cannot recover a sharded run from {root}: "
                f"missing {MANIFEST_NAME}"
            )
        manifest = json.loads(path.read_text())
        if manifest.get("version") != PLAN_VERSION:
            raise MonitorError(
                f"unsupported shard manifest version "
                f"{manifest.get('version')!r} in {path} "
                f"(expected {PLAN_VERSION!r})"
            )
        monitor = cls(
            DatabaseSchema.from_dict(manifest["schema"]),
            manifest["key"],
            manifest["shards"],
            journal_root=root,
            checkpoint_every=manifest.get("checkpoint_every", 64),
            sync=manifest.get("sync", True),
            on_unkeyed=manifest.get("on_unkeyed", "reject"),
            transport=transport,
            chaos=chaos,
            **kwargs,
        )
        for name, text in manifest["constraints"]:
            monitor.add_constraint(name, text)
        monitor._supervisor = monitor._build_supervisor(recovered=True)
        frontiers = [
            getattr(w, "monitor", None).now
            if getattr(w, "monitor", None) is not None
            else None
            for w in monitor._supervisor.workers
        ]
        known = [f for f in frontiers if f is not None]
        resume_from = min(known) if len(known) == len(frontiers) and known \
            else None
        applied = [
            getattr(w, "monitor", None).checker.steps_processed
            if getattr(w, "monitor", None) is not None
            else 0
            for w in monitor._supervisor.workers
        ]
        merged_steps = min(applied) if applied else 0
        monitor._now = resume_from
        monitor._index = merged_steps
        monitor._steps_fed = merged_steps
        monitor._verdicts = merged_steps
        info = {
            "resume_from": resume_from,
            "merged_steps": merged_steps,
            "frontiers": frontiers,
            "recoveries": list(monitor._supervisor.recoveries),
        }
        return monitor, info

    def __repr__(self) -> str:
        return (
            f"ShardedMonitor({len(self.constraints)} constraint(s), "
            f"key={self.key!r}, shards={self.shards}, "
            f"transport={self.transport!r})"
        )
