"""Shard workers: isolated monitors the supervisor can kill and revive.

Each worker owns one full :class:`~repro.core.monitor.Monitor` (its
own incremental checker and, when a journal root is configured, its
own ``RunJournal`` under ``<root>/shard-NNNN/``) and processes the
sub-transactions routed to its partition in submission order.

Two transports share one protocol (``submit`` / ``pump`` / ``alive`` /
``kill``):

* :class:`InlineWorker` — in-process and fully deterministic; the
  chaos harness's injection points (kill-before-step, torn handoff,
  stall) are exact, which is what the keystone equivalence tests need;
* :class:`ProcessWorker` — a real ``multiprocessing`` child behind a
  pipe, for genuine fault isolation (a crash is ``os._exit``, not a
  flag).

Durability protocol: a worker journals every applied step (``sync``
defaults on for shard journals) but *manages its own checkpoint
cadence*, checkpointing only after the step's acknowledgement is on
its way out.  The auto-cadence inside ``RunJournal`` would truncate
the journal in the same call that appends the record, so a torn
handoff (crash after apply+journal, before ack) at a checkpoint
boundary would swallow the record and lose the verdict; with the
worker-managed order the torn record is always still in the tail, and
recovery replay regenerates the exact report the ack would have
carried.

A recovered worker answers redelivered steps at or before its restored
frontier from the replay (:attr:`InlineWorker.replayed`) instead of
re-stepping — re-applying a transaction twice would corrupt the
checker — and falls back to a *degraded* fragment (all its constraint
names deferred) only when the verdict predates the last checkpoint and
is genuinely unrecoverable.
"""

from __future__ import annotations

import os
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.monitor import Monitor
from repro.core.violations import StepReport
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.temporal.clock import Timestamp

#: RunJournal auto-checkpoint cadence is disabled for shard workers —
#: the worker checkpoints explicitly, after acking (see module doc).
NEVER_CHECKPOINT = 1 << 60

#: Exit codes a chaos-crashed worker process dies with (diagnosable in
#: the supervisor's fault record).
CRASH_EXIT_BEFORE = 17
CRASH_EXIT_TORN = 18


class WorkerSpec:
    """Everything needed to (re)build one shard's monitor.

    Plain picklable data — the process transport ships it through the
    pipe, and the supervisor rebuilds from it on every respawn.
    """

    __slots__ = (
        "shard",
        "schema",
        "constraints",
        "journal_dir",
        "checkpoint_every",
        "sync",
    )

    def __init__(
        self,
        shard: int,
        schema: dict,
        constraints: List[tuple],
        journal_dir: Optional[str] = None,
        checkpoint_every: int = 64,
        sync: bool = True,
    ):
        self.shard = shard
        self.schema = schema
        self.constraints = list(constraints)
        self.journal_dir = str(journal_dir) if journal_dir else None
        self.checkpoint_every = checkpoint_every
        self.sync = sync

    def __repr__(self) -> str:
        return (
            f"WorkerSpec(shard={self.shard}, "
            f"{len(self.constraints)} constraint(s), "
            f"journal={self.journal_dir!r})"
        )


def build_worker_monitor(spec: WorkerSpec) -> Monitor:
    """A fresh monitor for one shard, journaled when configured."""
    schema = DatabaseSchema.from_dict(spec.schema)
    monitor = Monitor(schema, engine="incremental")
    for name, text in spec.constraints:
        monitor.add_constraint(name, text)
    if spec.journal_dir is not None:
        Path(spec.journal_dir).mkdir(parents=True, exist_ok=True)
        monitor.enable_journal(
            spec.journal_dir,
            checkpoint_every=NEVER_CHECKPOINT,
            sync=spec.sync,
        )
    return monitor


def recover_worker_monitor(spec: WorkerSpec):
    """Rebuild a shard monitor from its journal after a crash.

    Returns ``(monitor, replayed, result)`` where ``replayed`` maps
    each journal-replayed timestamp to the regenerated
    :class:`~repro.core.violations.StepReport` — the acknowledgements
    the dead incarnation never delivered.
    """
    monitor, result = Monitor.recover(
        spec.journal_dir,
        sync=spec.sync,
        checkpoint_every=NEVER_CHECKPOINT,
    )
    replayed = {report.time: report for report in result.replayed.steps}
    return monitor, replayed, result


def degraded_fragment(time, constraints) -> StepReport:
    """The fragment for a verdict that is lost but accounted.

    Carries no violations and defers every constraint the shard
    evaluates — the merged step is explicitly *degraded*, never
    silently dropped.  The index is a sentinel; the supervisor assigns
    the global index at merge time.
    """
    return StepReport(
        time, -1, [], deferred=tuple(c.name for c in constraints)
    )


class WorkerAck:
    """One processed step flowing back to the supervisor."""

    __slots__ = ("shard", "seq", "report", "replayed")

    def __init__(
        self, shard: int, seq: int, report: StepReport, replayed: bool
    ):
        self.shard = shard
        self.seq = seq
        self.report = report
        self.replayed = replayed

    def __repr__(self) -> str:
        mark = ", replayed" if self.replayed else ""
        return f"WorkerAck(shard={self.shard}, seq={self.seq}{mark})"


class InlineWorker:
    """Deterministic in-process worker with exact chaos injection.

    The supervisor drives it by discrete ``pump()`` calls — one
    mailbox item per pump — so stalls, crashes, and backpressure are
    reproducible pump-for-pump in tests.

    Args:
        spec: the shard's build recipe.
        chaos: injected fault events for this shard (dicts with
            ``step`` = global submission seq, ``mode`` in
            ``before``/``torn``/``stall``); each fires at most once.
        monitor: a pre-built monitor (the respawn path passes the
            recovered one).
        replayed: journal-replayed reports by timestamp (respawn path).
    """

    transport = "inline"
    #: inline workers have no startup latency — always heartbeat-ready
    ready = True

    def __init__(
        self,
        spec: WorkerSpec,
        chaos: Optional[List[dict]] = None,
        monitor: Optional[Monitor] = None,
        replayed: Optional[Dict[Timestamp, StepReport]] = None,
    ):
        self.spec = spec
        self.shard = spec.shard
        self.monitor = monitor if monitor is not None else (
            build_worker_monitor(spec)
        )
        self.chaos = list(chaos or ())
        self.replayed = dict(replayed or {})
        self.mailbox: deque = deque()
        self.dead = False
        self.crash_mode: Optional[str] = None
        #: steps applied by THIS incarnation (a respawn starts at 0 —
        #: the replay-not-reprocess assertions key off this)
        self.steps_applied = 0
        self._stall = 0
        self._since_checkpoint = 0

    @property
    def alive(self) -> bool:
        return not self.dead

    @property
    def depth(self) -> int:
        """Mailbox backlog (the supervisor's backpressure signal)."""
        return len(self.mailbox)

    def submit(self, seq: int, time: Timestamp, txn: Transaction) -> None:
        self.mailbox.append((seq, time, txn))

    def _chaos_event(self, seq: int) -> Optional[dict]:
        for event in self.chaos:
            if not event.get("fired") and event.get("step") == seq:
                event["fired"] = True
                return event
        return None

    def pump(self) -> Optional[WorkerAck]:
        """Process at most one mailbox item; return its ack, if any.

        Returns ``None`` when dead, stalled, idle — or when a chaos
        kill fired (the supervisor discovers the death via
        :attr:`alive` and recovers the lost acknowledgement from the
        journal).
        """
        if self.dead:
            return None
        if self._stall > 0:
            self._stall -= 1
            return None
        if not self.mailbox:
            return None
        seq, time, txn = self.mailbox[0]
        now = self.monitor.now
        if now is not None and time <= now:
            # Redelivered step this incarnation already holds: answer
            # from the journal replay; a pre-checkpoint verdict is
            # unrecoverable and degrades explicitly.
            self.mailbox.popleft()
            report = self.replayed.get(time)
            if report is None:
                report = degraded_fragment(time, self.monitor.constraints)
            return WorkerAck(self.shard, seq, report, replayed=True)
        event = self._chaos_event(seq)
        if event is not None:
            mode = event.get("mode")
            if mode == "stall":
                self._stall = int(event.get("duration", 1))
                return None
            if mode == "before":
                # died before applying: nothing journaled, the
                # supervisor redelivers to the respawn
                self.dead = True
                self.crash_mode = "before"
                return None
        self.mailbox.popleft()
        report = self.monitor.step(time, txn)
        self.steps_applied += 1
        if event is not None and event.get("mode") == "torn":
            # died after apply+journal, before ack: the record is in
            # the journal tail, replay regenerates this exact report
            self.dead = True
            self.crash_mode = "torn"
            return None
        self._maybe_checkpoint()
        return WorkerAck(self.shard, seq, report, replayed=False)

    def _maybe_checkpoint(self) -> None:
        if self.monitor.journal is None:
            return
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.spec.checkpoint_every:
            self.monitor.checkpoint()
            self._since_checkpoint = 0

    def kill(self) -> None:
        """Tear the worker down (crash cleanup or tombstoning)."""
        self.dead = True
        self.close()

    def close(self) -> None:
        """Release the journal (file handle and writer lock)."""
        if self.monitor.journal is not None:
            self.monitor.journal.close()

    def __repr__(self) -> str:
        state = "dead" if self.dead else f"depth={self.depth}"
        return f"InlineWorker(shard={self.shard}, {state})"


# ----------------------------------------------------------------------
# process transport
# ----------------------------------------------------------------------

def _worker_main(conn, spec: WorkerSpec, chaos: List[dict],
                 recovered: bool) -> None:
    """Child-process loop: rebuild the monitor, serve the pipe."""
    if recovered:
        monitor, replayed, _ = recover_worker_monitor(spec)
    else:
        monitor = build_worker_monitor(spec)
        replayed = {}
    # readiness handshake: imports + journal replay can take long
    # enough that the supervisor's heartbeat would otherwise count the
    # warm-up as a stall and kill a healthy child
    conn.send(("ready",))
    chaos = list(chaos)
    since = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            if monitor.journal is not None:
                monitor.journal.close()
            conn.send(("stopped",))
            break
        if kind == "ping":
            conn.send(("pong",))
            continue
        _, seq, time, txn = message
        now = monitor.now
        if now is not None and time <= now:
            report = replayed.get(time)
            if report is None:
                report = degraded_fragment(time, monitor.constraints)
            conn.send(("ack", seq, report, True))
            continue
        event = None
        for candidate in chaos:
            if not candidate.get("fired") and candidate.get("step") == seq:
                candidate["fired"] = True
                event = candidate
                break
        if event is not None and event.get("mode") == "before":
            os._exit(CRASH_EXIT_BEFORE)
        report = monitor.step(time, txn)
        if event is not None and event.get("mode") == "torn":
            os._exit(CRASH_EXIT_TORN)
        conn.send(("ack", seq, report, False))
        since += 1
        if monitor.journal is not None and since >= spec.checkpoint_every:
            monitor.checkpoint()
            since = 0


class ProcessWorker:
    """A shard monitor in its own OS process, behind a pipe.

    Same protocol as :class:`InlineWorker`; crashes are real process
    exits, detected as a broken pipe or a dead child.  ``pump`` polls
    briefly rather than blocking so the supervisor's round-robin loop
    keeps servicing the other shards while one is slow.
    """

    transport = "process"

    def __init__(
        self,
        spec: WorkerSpec,
        chaos: Optional[List[dict]] = None,
        recovered: bool = False,
        poll_timeout: float = 0.05,
    ):
        import multiprocessing

        self.spec = spec
        self.shard = spec.shard
        self.poll_timeout = poll_timeout
        self.steps_applied = 0
        self.dead = False
        #: set once the child reports its monitor is built/recovered;
        #: the supervisor's stall heartbeat skips warming workers
        self.ready = False
        #: the pipe broke on a send; the child is gone, but buffered
        #: acknowledgements may still be readable — death is declared
        #: only once they are drained
        self._broken = False
        self.crash_mode: Optional[str] = None
        self._inflight: deque = deque()
        ctx = multiprocessing.get_context()
        self._conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child, spec, list(chaos or ()), recovered),
            daemon=True,
        )
        self.process.start()
        child.close()

    @property
    def alive(self) -> bool:
        # a dead child's buffered acknowledgements stay readable after
        # it exits; the worker counts as alive until they are drained,
        # so the supervisor computes the crash frontier from a fully
        # acknowledged pending set
        if self.dead:
            return False
        if (
            self._broken or not self.process.is_alive()
        ) and not self._conn.poll():
            self.dead = True
        return not self.dead

    @property
    def depth(self) -> int:
        return len(self._inflight)

    def submit(self, seq: int, time: Timestamp, txn: Transaction) -> None:
        self._inflight.append(seq)
        try:
            self._conn.send(("step", seq, time, txn))
        except (BrokenPipeError, OSError):
            self._broken = True

    def pump(self) -> Optional[WorkerAck]:
        if self.dead:
            return None
        try:
            if not self._conn.poll(self.poll_timeout):
                if self._broken or not self.process.is_alive():
                    self.dead = True
                return None
            message = self._conn.recv()
        except (EOFError, OSError):
            self.dead = True
            return None
        if message[0] == "ready":
            self.ready = True
            return None
        if message[0] != "ack":
            return None
        _, seq, report, replayed = message
        if seq in self._inflight:
            self._inflight.remove(seq)
        if not replayed:
            self.steps_applied += 1
        return WorkerAck(self.shard, seq, report, replayed)

    def kill(self) -> None:
        self.dead = True
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)
        self._conn.close()

    def close(self) -> None:
        if self.dead:
            return
        try:
            self._conn.send(("stop",))
            if self._conn.poll(2):
                self._conn.recv()
        except (BrokenPipeError, OSError, EOFError):
            pass
        self.process.join(timeout=5)
        self.dead = True
        self._conn.close()

    def __repr__(self) -> str:
        state = "dead" if self.dead else f"pid={self.process.pid}"
        return f"ProcessWorker(shard={self.shard}, {state})"
