"""Reassembling one global verdict from per-shard fragments.

Every shard steps at every timestamp, so a global step's fragments are
N :class:`~repro.core.violations.StepReport`\\ s for the same time.
The merge rebuilds exactly what the single-process checker would have
reported:

* violations appear in constraint registration order (the checker's
  order), one per violated constraint, with the shards' witness tables
  unioned — after :meth:`~repro.shard.partition.ShardPlan.
  filter_witnesses` drops the rows a shard does not own;
* a constraint pinned to shard 0 (``on_unkeyed="broadcast"``) takes
  its verdict from shard 0 alone — the other shards see the same
  broadcast relations and would only duplicate it;
* ``deferred`` is the union of the fragments' deferred names (ordered
  by registration), so a degraded fragment — a crashed shard's
  unrecoverable verdict — marks the merged step degraded instead of
  silently thinning the witness set.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.violations import StepReport, Violation
from repro.db.algebra import Table
from repro.shard.partition import ShardPlan


def union_tables(tables: Sequence[Table]) -> Table:
    """Union witness tables, aligning column orders if they differ."""
    first = tables[0]
    rows = set(first.rows)
    for table in tables[1:]:
        if table.columns == first.columns:
            rows |= table.rows
        else:
            for assignment in table.assignments():
                rows.add(tuple(assignment[c] for c in first.columns))
    return Table(first.columns, rows)


def merge_fragments(
    time,
    index: int,
    fragments: Dict[int, StepReport],
    plan: ShardPlan,
    order: Sequence[str],
) -> StepReport:
    """Fold per-shard fragments into the global step report.

    Args:
        time: the step's timestamp.
        index: the global state index (assigned by the supervisor; the
            fragments' own indices agree for live shards and are
            sentinels for degraded ones).
        fragments: shard id -> that shard's report for this time.
        plan: the routing plan (witness ownership filtering).
        order: constraint names in registration order.
    """
    violations: List[Violation] = []
    for name in order:
        mode, _ = plan.mode(name)
        tables: List[Table] = []
        if mode == "pinned":
            fragment = fragments.get(0)
            if fragment is not None:
                tables = [
                    v.witnesses
                    for v in fragment.violations
                    if v.constraint == name
                ]
        else:
            for shard in sorted(fragments):
                for v in fragments[shard].violations:
                    if v.constraint == name:
                        filtered = plan.filter_witnesses(
                            shard, name, v.witnesses
                        )
                        if filtered.rows:
                            tables.append(filtered)
        if tables:
            witnesses = union_tables(tables)
            if witnesses.rows:
                violations.append(Violation(name, time, index, witnesses))
    deferred_names = set()
    for fragment in fragments.values():
        deferred_names.update(fragment.deferred)
    deferred = tuple(n for n in order if n in deferred_names)
    return StepReport(time, index, violations, deferred=deferred)
