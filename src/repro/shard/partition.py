"""Hash partitioning of updates and constraints by a shard key.

The paper's auxiliary relations partition cleanly by free-variable
valuation: a bounded-history node's state for valuation ``v`` depends
only on the tuples that produced ``v``.  :class:`ShardPlan` exploits
this — it designates every relation carrying the shard-key attribute
as *keyed*, routes each keyed tuple to ``hash(key value) % shards``,
and broadcasts unkeyed relations to every shard, so each worker's
database is exactly the global database restricted to its key values
plus the shared broadcast relations.

A constraint is shardable when its compiled *violation formula* keeps
one free variable at the key position of every keyed atom it uses: the
violating valuations for key value ``v`` are then computable entirely
on the shard owning ``v``.  Explicitly ``FORALL``-closed constraints
fail this test — normalisation strips their free variables — and are
rejected with a rewrite hint (drop the ``FORALL``; constraints are
implicitly universally closed).

Because unkeyed relations are broadcast, a shard can also evaluate a
keyed constraint at valuations it does *not* own (the broadcast atoms
range over every key value) and report spurious witnesses for key
values whose keyed tuples live elsewhere.  :meth:`ShardPlan.
filter_witnesses` repairs this at merge time: a witness row survives
only on the shard that owns its key value, which makes the merged
verdicts exactly the single-process ones.

Hashing is :func:`stable_hash` — a type-tagged BLAKE2 digest, so the
partition is identical across Python runs and ``PYTHONHASHSEED``
values (the builtin ``hash()`` is salted per process and would journal
a different partition every run).
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, List, Tuple

from repro.core.checker import Constraint
from repro.core.formulas import Aggregate, Atom, Exists, Forall, Var
from repro.db.algebra import Table
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.errors import ShardingError

#: Manifest version written to ``shard-plan.json``.
PLAN_VERSION = "repro-shard/1"

UNKEYED_POLICIES = ("reject", "broadcast")


def _encode(value) -> bytes:
    """Canonical type-tagged byte encoding of one key value.

    The tag keeps e.g. ``1``, ``1.0``, ``True``, and ``"1"`` apart —
    they are distinct database values and must not collide into one
    route by accident of textual form.
    """
    if isinstance(value, bool):
        return b"b:" + (b"1" if value else b"0")
    if isinstance(value, int):
        return b"i:" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"f:" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8")
    if value is None:
        return b"n:"
    return b"r:" + repr(value).encode("utf-8")


def stable_hash(value) -> int:
    """A 64-bit hash of ``value`` stable across processes and runs."""
    digest = hashlib.blake2s(_encode(value), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardPlan:
    """How a schema, its updates, and its constraints split into shards.

    Args:
        schema: the database schema.
        key: attribute name designating keyed relations (every relation
            with an attribute of this name routes by its value there).
        shards: number of partitions (>= 1).
        on_unkeyed: what to do with a constraint that touches no keyed
            relation — ``"reject"`` (default; raise
            :class:`~repro.errors.ShardingError`) or ``"broadcast"``
            (pin it to shard 0, whose broadcast relations are complete).
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        key: str,
        shards: int,
        on_unkeyed: str = "reject",
    ):
        if not isinstance(shards, int) or shards < 1:
            raise ShardingError(
                f"shard count must be a positive int, got {shards!r}"
            )
        if on_unkeyed not in UNKEYED_POLICIES:
            raise ShardingError(
                f"unknown on_unkeyed policy {on_unkeyed!r}; "
                f"choose from {UNKEYED_POLICIES}"
            )
        self.schema = schema
        self.key = key
        self.shards = shards
        self.on_unkeyed = on_unkeyed
        #: keyed relation -> position of the key attribute
        self.key_positions: Dict[str, int] = {}
        for rel in schema:
            if key in rel.attribute_names:
                self.key_positions[rel.name] = rel.position(key)
        if not self.key_positions:
            raise ShardingError(
                f"no relation in the schema has an attribute named "
                f"{key!r}, so nothing can be partitioned; known "
                f"attributes: "
                f"{sorted({a.name for r in schema for a in r.attributes})}"
            )
        #: constraint name -> ("keyed", key var) | ("pinned", None)
        self._modes: Dict[str, Tuple[str, object]] = {}

    # ------------------------------------------------------------------
    # constraint admission
    # ------------------------------------------------------------------

    def _keyed_atoms(self, formula) -> List[Tuple[Atom, FrozenSet[str]]]:
        """Keyed atoms of ``formula`` with the binders enclosing each."""
        out: List[Tuple[Atom, FrozenSet[str]]] = []

        def visit(node, bound: FrozenSet[str]) -> None:
            if isinstance(node, Atom):
                if node.relation in self.key_positions:
                    out.append((node, bound))
                return
            if isinstance(node, (Exists, Forall)):
                visit(node.operand, bound | frozenset(node.variables))
                return
            if isinstance(node, Aggregate):
                visit(node.body, bound | frozenset(node.over))
                return
            for child in node.children():
                visit(child, bound)

        visit(formula, frozenset())
        return out

    def admit(self, constraint: Constraint) -> Tuple[str, object]:
        """Check that ``constraint`` routes cleanly; record its mode.

        Returns ``("keyed", key_var)`` for a partitionable constraint
        (evaluated on every shard, witnesses filtered by key ownership
        at merge) or ``("pinned", None)`` for an unkeyed constraint
        under the ``broadcast`` policy (evaluated on shard 0 only).

        Raises:
            ShardingError: when the constraint cannot be partitioned,
                with a diagnostic naming the offending atom and — for
                the explicit-``FORALL`` case — a rewrite hint.
        """
        name = constraint.name
        formula = constraint.violation_formula
        keyed = self._keyed_atoms(formula)
        if not keyed:
            if self.on_unkeyed == "reject":
                raise ShardingError(
                    f"constraint {name!r} touches no relation keyed by "
                    f"{self.key!r}, so no shard owns its verdicts; "
                    f"monitor it separately, or construct the plan "
                    f"with on_unkeyed='broadcast' to pin it to shard 0"
                )
            self._modes[name] = ("pinned", None)
            return self._modes[name]
        key_vars = set()
        for atom, bound in keyed:
            term = atom.terms[self.key_positions[atom.relation]]
            if not isinstance(term, Var):
                raise ShardingError(
                    f"constraint {name!r}: atom {atom} fixes the shard "
                    f"key {self.key!r} to the constant {term}; only "
                    f"key positions holding one shared free variable "
                    f"can be routed"
                )
            if term.name in bound:
                raise ShardingError(
                    f"constraint {name!r}: the shard key variable "
                    f"{term.name!r} in {atom} is bound by a quantifier "
                    f"in the compiled violation formula, so its "
                    f"valuations cannot be routed to one shard; "
                    f"constraints are implicitly universally closed — "
                    f"drop the explicit quantifier over {term.name!r} "
                    f"to keep it free"
                )
            key_vars.add(term.name)
        if len(key_vars) > 1:
            raise ShardingError(
                f"constraint {name!r}: keyed atoms disagree on the "
                f"shard key variable ({sorted(key_vars)}); every atom "
                f"over a relation keyed by {self.key!r} must place the "
                f"same free variable at the key position"
            )
        var = key_vars.pop()
        if var not in formula.free_vars:
            raise ShardingError(
                f"constraint {name!r}: the shard key variable {var!r} "
                f"is not free in the compiled violation formula "
                f"({formula}), so witnesses carry no key column to "
                f"route by; constraints are implicitly universally "
                f"closed — drop the explicit quantifier over {var!r}"
            )
        self._modes[name] = ("keyed", var)
        return self._modes[name]

    def mode(self, name: str) -> Tuple[str, object]:
        """The admitted routing mode of constraint ``name``."""
        try:
            return self._modes[name]
        except KeyError:
            raise ShardingError(
                f"constraint {name!r} was never admitted to this plan"
            ) from None

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def route(self, value) -> int:
        """The shard owning key value ``value``."""
        return stable_hash(value) % self.shards

    def split(self, txn: Transaction) -> List[Transaction]:
        """Partition one transaction into per-shard sub-transactions.

        Keyed rows go to the shard owning their key value; unkeyed
        rows are broadcast to every shard.  Every shard receives a
        transaction (possibly a no-op) — all shards step at every
        timestamp, which keeps state indices aligned with the
        single-process run.
        """
        ins: List[Dict[str, set]] = [{} for _ in range(self.shards)]
        dels: List[Dict[str, set]] = [{} for _ in range(self.shards)]
        for buckets, source in ((ins, txn.inserts), (dels, txn.deletes)):
            for rel, rows in source.items():
                pos = self.key_positions.get(rel)
                if pos is None:
                    for shard in range(self.shards):
                        buckets[shard].setdefault(rel, set()).update(rows)
                else:
                    for row in rows:
                        shard = self.route(row[pos])
                        buckets[shard].setdefault(rel, set()).add(row)
        return [
            Transaction(ins[s], dels[s]) for s in range(self.shards)
        ]

    def filter_witnesses(self, shard: int, name: str, table: Table) -> Table:
        """Keep only the witness rows ``shard`` actually owns.

        Broadcast relations let a shard evaluate keyed constraints at
        key values it does not own; those spurious rows are exactly the
        ones whose key value routes elsewhere, so ownership filtering
        makes the merged witness set equal to the single-process one.
        """
        mode, var = self.mode(name)
        if mode != "keyed" or var not in table.columns:
            return table
        idx = table.columns.index(var)
        kept = [r for r in table.rows if self.route(r[idx]) == shard]
        if len(kept) == len(table.rows):
            return table
        return Table(table.columns, kept)

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able form (part of the ``shard-plan.json`` manifest)."""
        return {
            "version": PLAN_VERSION,
            "key": self.key,
            "shards": self.shards,
            "on_unkeyed": self.on_unkeyed,
            "key_positions": dict(sorted(self.key_positions.items())),
            "constraints": {
                name: {"mode": mode, "key_var": var}
                for name, (mode, var) in sorted(self._modes.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"ShardPlan(key={self.key!r}, shards={self.shards}, "
            f"{len(self._modes)} constraint(s))"
        )
