"""Fault-isolated sharded monitoring.

Hash-partitions a monitoring workload by one key attribute across N
supervised workers — each an isolated
:class:`~repro.core.monitor.Monitor` with its own checker and
per-shard journal — and merges the per-shard verdicts back into
reports bit-for-bit equal to the single-process run, including under
injected worker crashes (recovered by journal replay) and stalls
(heartbeat kills + respawn).  Unrecoverable shards degrade explicitly:
every fed step is accounted as a verdict, a degraded verdict, or a
shed input — never silently dropped.

Layout:

* :mod:`repro.shard.partition` — the key-routing plan: which
  constraints shard, how tuples and witnesses route, stable hashing;
* :mod:`repro.shard.worker` — inline (deterministic) and OS-process
  workers with the journal-then-ack durability protocol;
* :mod:`repro.shard.supervisor` — dispatch, bounded mailboxes with
  backpressure, heartbeats, crash recovery, tombstoning;
* :mod:`repro.shard.merge` — reassembling global verdicts in
  constraint registration order with witness-ownership filtering;
* :mod:`repro.shard.monitor` — the :class:`ShardedMonitor` façade.

Chaos injection for sharded runs lives with the other injectors in
:mod:`repro.resilience.chaos`
(:func:`~repro.resilience.plan_shard_chaos`).
"""

from repro.shard.merge import merge_fragments, union_tables
from repro.shard.monitor import MANIFEST_NAME, ShardedMonitor
from repro.shard.partition import (
    PLAN_VERSION,
    ShardPlan,
    stable_hash,
)
from repro.shard.supervisor import ShardSupervisor
from repro.shard.worker import (
    InlineWorker,
    ProcessWorker,
    WorkerSpec,
    build_worker_monitor,
    recover_worker_monitor,
)

__all__ = [
    "MANIFEST_NAME",
    "PLAN_VERSION",
    "InlineWorker",
    "ProcessWorker",
    "ShardPlan",
    "ShardSupervisor",
    "ShardedMonitor",
    "WorkerSpec",
    "build_worker_monitor",
    "merge_fragments",
    "recover_worker_monitor",
    "stable_hash",
    "union_tables",
]
