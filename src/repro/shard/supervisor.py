"""The shard supervisor: dispatch, heartbeats, crash recovery, merge.

Owns the worker pool and the global verdict order.  Per submitted
step it splits the transaction with the plan, mails each shard its
sub-transaction, and pumps the workers round-robin; completed times
merge in submission order (:mod:`repro.shard.merge`).

The robustness loop:

* **bounded mailboxes** — a shard whose backlog exceeds the mailbox
  capacity blocks further submission until it drains (dispatch-side
  backpressure), and crossing the high-water mark arms the configured
  ``pressure_deadline`` as a :class:`~repro.resilience.StepBudget` on
  that worker's monitor (disarmed at the low-water mark) — the same
  hysteresis the ingest queue applies;
* **heartbeats** — liveness is counted in pump rounds, so it is
  deterministic: a live worker with a non-empty mailbox that produces
  nothing for ``stall_timeout`` consecutive pumps is declared stalled
  and killed;
* **crash recovery** — a dead worker's shard is respawned from its
  journal (checkpoint + tail replay, never the full stream); the
  pending steps are redelivered, and the respawned worker answers the
  already-applied ones from the replay.  Each crash emits a
  :class:`~repro.resilience.FaultRecord` carrying the shard id and the
  last-applied step;
* **tombstoning** — with no journal or the respawn budget exhausted,
  the shard is tombstoned: every verdict it owed or will owe becomes a
  *degraded* fragment (its constraints deferred), so the merged run
  accounts for every step — no silent drops.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.violations import StepReport
from repro.db.transactions import Transaction
from repro.errors import MonitorError
from repro.resilience.policy import FaultRecord
from repro.shard.merge import merge_fragments
from repro.shard.partition import ShardPlan
from repro.shard.worker import (
    InlineWorker,
    ProcessWorker,
    WorkerSpec,
    recover_worker_monitor,
)
from repro.temporal.clock import Timestamp

TRANSPORTS = ("inline", "process")

# repro_shard_* metric families (registered lazily, like the fault and
# ingest families — an uneventful run adds no series).
SHARD_STEPS_TOTAL = "repro_shard_steps_total"
SHARD_MERGES_TOTAL = "repro_shard_merges_total"
SHARD_CRASHES_TOTAL = "repro_shard_crashes_total"
SHARD_RESPAWNS_TOTAL = "repro_shard_respawns_total"
SHARD_REPLAYED_TOTAL = "repro_shard_replayed_steps_total"
SHARD_STALL_KILLS_TOTAL = "repro_shard_stall_kills_total"
SHARD_TOMBSTONES_TOTAL = "repro_shard_tombstones_total"
SHARD_DEGRADED_FRAGMENTS_TOTAL = "repro_shard_degraded_fragments_total"
SHARD_BACKPRESSURE_TOTAL = "repro_shard_backpressure_total"
SHARD_MAILBOX_DEPTH = "repro_shard_mailbox_depth"

#: Pump rounds without any global progress before the supervisor gives
#: up — a deadlock backstop far above any legitimate stall budget.
_PROGRESS_LIMIT = 10_000


class _Tombstone:
    """Placeholder for a shard that can no longer produce verdicts."""

    alive = False
    depth = 0

    def __init__(self, shard: int):
        self.shard = shard

    def __repr__(self) -> str:
        return f"Tombstone(shard={self.shard})"


class ShardSupervisor:
    """Supervised worker pool behind :class:`~repro.shard.ShardedMonitor`.

    Args:
        plan: the admission/routing plan.
        specs: one :class:`~repro.shard.worker.WorkerSpec` per shard.
        order: constraint names in registration order (merge order).
        transport: ``"inline"`` (deterministic, default) or
            ``"process"`` (real OS-process isolation).
        chaos: optional :class:`~repro.resilience.ShardChaosPlan`.
        mailbox_capacity: per-shard backlog bound; dispatch blocks
            (pumps) while any live shard exceeds it.
        stall_timeout: consecutive unproductive pumps after which a
            backlogged worker is declared stalled and killed.
        max_respawns: per-shard crash budget before tombstoning.
        pressure_deadline: optional seconds armed as a step budget on a
            worker whose mailbox crosses the high-water mark.
        urgent: constraint names never shed under pressure.
        metrics: optional metrics registry for ``repro_shard_*``.
        on_fault: callback receiving each crash/stall/tombstone
            :class:`~repro.resilience.FaultRecord`.
        recovered: build workers from their journals (supervisor
            restart) instead of fresh.
    """

    def __init__(
        self,
        plan: ShardPlan,
        specs: List[WorkerSpec],
        order: List[str],
        transport: str = "inline",
        chaos=None,
        mailbox_capacity: int = 8,
        stall_timeout: int = 16,
        max_respawns: int = 2,
        pressure_deadline: Optional[float] = None,
        urgent: Tuple[str, ...] = (),
        metrics=None,
        on_fault: Optional[Callable[[FaultRecord], None]] = None,
        recovered: bool = False,
    ):
        if transport not in TRANSPORTS:
            raise MonitorError(
                f"unknown shard transport {transport!r}; "
                f"choose from {TRANSPORTS}"
            )
        if mailbox_capacity < 1:
            raise MonitorError(
                f"mailbox_capacity must be >= 1, got {mailbox_capacity!r}"
            )
        self.plan = plan
        self.specs = specs
        self.order = list(order)
        self.transport = transport
        self.chaos = chaos
        self.mailbox_capacity = mailbox_capacity
        self.stall_timeout = stall_timeout
        self.max_respawns = max_respawns
        self.pressure_deadline = pressure_deadline
        self.urgent = tuple(urgent)
        self.metrics = metrics
        self.on_fault = on_fault
        n = len(specs)
        self._events: List[List[dict]] = [
            list(chaos.for_shard(s)) if chaos is not None else []
            for s in range(n)
        ]
        self.recoveries: List[dict] = []
        self.pending: List[Dict[int, Tuple[Timestamp, Transaction]]] = [
            {} for _ in range(n)
        ]
        self.tombstoned: set = set()
        self.respawns = [0] * n
        self.stall_counts = [0] * n
        self.last_delivered = [-1] * n
        self.last_applied: List[Optional[Timestamp]] = [None] * n
        self._pressure_armed = [False] * n
        self._fragments: Dict[int, Dict[int, StepReport]] = {}
        self._meta: Dict[int, Tuple[Timestamp, int]] = {}
        self._seq = 0
        self._next_emit = 0
        # accounting (mirrored into metrics when a registry is given)
        self.crashes = 0
        self.stall_kills = 0
        self.replayed_steps = 0
        self.degraded_fragments = 0
        self.backpressure_engagements = 0
        self.max_depth = 0
        self._closed = False
        # spawn last: the recovered path records into the counters above
        self.workers: List[object] = [
            self._spawn(spec, recovered=recovered) for spec in specs
        ]

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------

    def _count(self, family: str, amount: int = 1, **labels) -> None:
        if self.metrics is not None:
            self.metrics.counter(family, **labels).inc(amount)

    def _spawn(self, spec: WorkerSpec, recovered: bool = False):
        events = self._events[spec.shard]
        if self.transport == "process":
            return ProcessWorker(spec, chaos=events, recovered=recovered)
        if recovered:
            monitor, replayed, result = recover_worker_monitor(spec)
            self.recoveries.append({
                "shard": spec.shard,
                "checkpoint_time": result.checkpoint_time,
                "replayed": len(result.replayed.steps),
                "now": monitor.now,
            })
            self.replayed_steps += len(result.replayed.steps)
            self._count(
                SHARD_REPLAYED_TOTAL,
                amount=len(result.replayed.steps),
                shard=str(spec.shard),
                help="Steps replayed from per-shard journals",
            )
            return InlineWorker(
                spec, chaos=events, monitor=monitor, replayed=replayed
            )
        return InlineWorker(spec, chaos=events)

    def _record_fault(self, shard: int, kind: str, reason: str) -> None:
        worker = self.workers[shard]
        last = self.last_applied[shard]
        monitor = getattr(worker, "monitor", None)
        if monitor is not None and monitor.now is not None:
            last = monitor.now
        record = FaultRecord(
            "shard",
            last,
            reason,
            payload={
                "shard": shard,
                "kind": kind,
                "last_applied": last,
                "pending": len(self.pending[shard]),
                "respawns": self.respawns[shard],
            },
            policy="supervise",
        )
        if self.on_fault is not None:
            self.on_fault(record)

    def _tombstone(self, shard: int, reason: str) -> None:
        worker = self.workers[shard]
        if hasattr(worker, "kill"):
            worker.kill()
        self.workers[shard] = _Tombstone(shard)
        self.tombstoned.add(shard)
        self._count(
            SHARD_TOMBSTONES_TOTAL, shard=str(shard),
            help="Shards permanently degraded",
        )
        self._record_fault(shard, "tombstone", reason)
        for seq, (time, _) in sorted(self.pending[shard].items()):
            self._degrade(shard, seq, time)
        self.pending[shard].clear()

    def _degrade(self, shard: int, seq: int, time: Timestamp) -> None:
        self._fragments.setdefault(seq, {})[shard] = (
            self._degraded_report(time)
        )
        self.degraded_fragments += 1
        self._count(
            SHARD_DEGRADED_FRAGMENTS_TOTAL, shard=str(shard),
            help="Verdict fragments degraded on a dead shard",
        )

    def _degraded_report(self, time: Timestamp) -> StepReport:
        return StepReport(time, -1, [], deferred=tuple(self.order))

    def _crash(self, shard: int, kind: str, reason: str) -> None:
        """A worker died (or was stall-killed): respawn or tombstone."""
        self.crashes += 1
        worker = self.workers[shard]
        mode = getattr(worker, "crash_mode", None)
        self._count(
            SHARD_CRASHES_TOTAL, shard=str(shard),
            mode=mode or kind,
            help="Shard worker deaths detected by the supervisor",
        )
        self._record_fault(shard, kind, reason)
        spec = self.specs[shard]
        if spec.journal_dir is None or (
            self.respawns[shard] >= self.max_respawns
        ):
            why = (
                "no journal to recover from"
                if spec.journal_dir is None
                else f"respawn budget ({self.max_respawns}) exhausted"
            )
            self._tombstone(shard, f"shard {shard} tombstoned: {why}")
            return
        self.respawns[shard] += 1
        self._count(
            SHARD_RESPAWNS_TOTAL, shard=str(shard),
            help="Shard workers respawned from their journals",
        )
        if hasattr(worker, "kill"):
            worker.kill()
        # chaos events already consumed by the dead incarnation must
        # not re-fire on redelivery (the process transport cannot mark
        # them remotely, so prune by the crash step)
        crash_seq = min(self.pending[shard], default=self.last_delivered[shard])
        self._events[shard] = [
            e for e in self._events[shard]
            if not e.get("fired") and e.get("step", -1) > crash_seq
        ]
        replacement = self._spawn(spec, recovered=True)
        self.workers[shard] = replacement
        self.stall_counts[shard] = 0
        self._pressure_armed[shard] = False
        for seq, (time, txn) in sorted(self.pending[shard].items()):
            replacement.submit(seq, time, txn)

    # ------------------------------------------------------------------
    # dispatch and pumping
    # ------------------------------------------------------------------

    def submit(self, time: Timestamp, txn: Transaction,
               index: int) -> List[StepReport]:
        """Route one step to every shard; return any completed merges.

        Blocks (by pumping) while a live shard's mailbox exceeds the
        capacity bound — dispatch-side backpressure.
        """
        if self._closed:
            raise MonitorError("the shard supervisor is closed")
        seq = self._seq
        self._seq += 1
        self._meta[seq] = (time, index)
        subs = self.plan.split(txn)
        for shard, worker in enumerate(self.workers):
            if shard in self.tombstoned:
                self._degrade(shard, seq, time)
                continue
            worker.submit(seq, time, subs[shard])
            self.pending[shard][seq] = (time, subs[shard])
            self.last_delivered[shard] = seq
            self.max_depth = max(self.max_depth, worker.depth)
            self._count(
                SHARD_STEPS_TOTAL, shard=str(shard),
                help="Steps dispatched to shard workers",
            )
        ready = self._drain_ready()
        guard = 0
        while self._over_capacity():
            self._count(
                SHARD_BACKPRESSURE_TOTAL,
                help="Dispatches blocked on a full shard mailbox",
            )
            progressed = self._pump_round()
            ready.extend(self._drain_ready())
            guard = 0 if progressed else guard + 1
            if guard > _PROGRESS_LIMIT:
                raise MonitorError(
                    "shard supervisor made no progress while "
                    "backpressured; a worker is wedged beyond the "
                    "stall budget"
                )
        self._apply_pressure()
        return ready

    def _over_capacity(self) -> bool:
        return any(
            shard not in self.tombstoned
            and worker.depth > self.mailbox_capacity
            for shard, worker in enumerate(self.workers)
        )

    def _apply_pressure(self) -> None:
        """Arm/disarm per-worker step budgets as backlogs move."""
        if self.pressure_deadline is None or self.transport != "inline":
            return
        low = max(1, self.mailbox_capacity // 4)
        for shard, worker in enumerate(self.workers):
            if shard in self.tombstoned:
                continue
            if not self._pressure_armed[shard] and (
                worker.depth >= self.mailbox_capacity
            ):
                worker.monitor.set_step_deadline(
                    self.pressure_deadline, urgent=self.urgent
                )
                self._pressure_armed[shard] = True
                self.backpressure_engagements += 1
            elif self._pressure_armed[shard] and worker.depth <= low:
                worker.monitor.set_step_deadline(None)
                self._pressure_armed[shard] = False

    def _pump_round(self) -> bool:
        """Pump every live worker once; handle deaths and stalls.

        Returns whether any shard made progress (an ack, a crash
        handled, or a tombstone laid counts — all move the run
        forward).
        """
        progressed = False
        for shard, worker in enumerate(self.workers):
            if shard in self.tombstoned:
                continue
            ack = worker.pump()
            if ack is not None:
                self._note_ack(shard, ack)
                progressed = True
                continue
            if not worker.alive:
                self._crash(
                    shard, "crash",
                    f"shard {shard} worker died "
                    f"(mode={getattr(worker, 'crash_mode', None)!r}) "
                    f"with {len(self.pending[shard])} step(s) in flight",
                )
                progressed = True
                continue
            if not getattr(worker, "ready", True):
                # still warming up (process spawn + journal replay);
                # heartbeats start once the child reports ready
                continue
            if self.pending[shard]:
                self.stall_counts[shard] += 1
                if self.stall_counts[shard] > self.stall_timeout:
                    self.stall_kills += 1
                    self._count(
                        SHARD_STALL_KILLS_TOTAL, shard=str(shard),
                        help="Workers killed after missing heartbeats",
                    )
                    worker.kill()
                    self._crash(
                        shard, "stall",
                        f"shard {shard} worker missed "
                        f"{self.stall_counts[shard]} heartbeat(s) with "
                        f"{len(self.pending[shard])} step(s) in flight",
                    )
                    progressed = True
        return progressed

    def _note_ack(self, shard: int, ack) -> None:
        self.stall_counts[shard] = 0
        self.pending[shard].pop(ack.seq, None)
        report = ack.report
        self.last_applied[shard] = report.time
        if ack.replayed and report.index < 0:
            # unrecoverable pre-checkpoint verdict — degraded
            self.degraded_fragments += 1
            self._count(
                SHARD_DEGRADED_FRAGMENTS_TOTAL, shard=str(shard),
                help="Verdict fragments degraded on a dead shard",
            )
        self._fragments.setdefault(ack.seq, {})[shard] = report

    def _drain_ready(self) -> List[StepReport]:
        """Merge every completed seq at the emission frontier."""
        out: List[StepReport] = []
        shards = len(self.workers)
        while (
            self._next_emit in self._fragments
            and len(self._fragments[self._next_emit]) == shards
        ):
            seq = self._next_emit
            self._next_emit += 1
            time, index = self._meta.pop(seq)
            fragments = self._fragments.pop(seq)
            out.append(
                merge_fragments(time, index, fragments, self.plan, self.order)
            )
            self._count(
                SHARD_MERGES_TOTAL, help="Global verdicts merged"
            )
        if self.metrics is not None:
            for shard, worker in enumerate(self.workers):
                self.metrics.gauge(
                    SHARD_MAILBOX_DEPTH, shard=str(shard),
                    help="Per-shard mailbox backlog",
                ).set(worker.depth)
        return out

    def flush(self) -> List[StepReport]:
        """Pump until every submitted step has merged."""
        out = self._drain_ready()
        guard = 0
        while self._next_emit < self._seq:
            progressed = self._pump_round()
            out.extend(self._drain_ready())
            guard = 0 if progressed else guard + 1
            if guard > _PROGRESS_LIMIT:
                raise MonitorError(
                    "shard supervisor made no progress while flushing; "
                    "a worker is wedged beyond the stall budget"
                )
        self._apply_pressure()
        return out

    @property
    def in_flight(self) -> int:
        """Submitted steps not yet merged."""
        return self._seq - self._next_emit

    def set_step_deadline(self, deadline, urgent=()) -> None:
        """Forward a budget change to every live inline worker."""
        for shard, worker in enumerate(self.workers):
            if shard in self.tombstoned:
                continue
            monitor = getattr(worker, "monitor", None)
            if monitor is not None:
                monitor.set_step_deadline(deadline, urgent=urgent)

    # ------------------------------------------------------------------
    # reporting / shutdown
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Supervision accounting (CLI / test reporting)."""
        return {
            "shards": len(self.workers),
            "transport": self.transport,
            "crashes": self.crashes,
            "respawns": sum(self.respawns),
            "stall_kills": self.stall_kills,
            "tombstoned": sorted(self.tombstoned),
            "replayed_steps": self.replayed_steps,
            "degraded_fragments": self.degraded_fragments,
            "backpressure_engagements": self.backpressure_engagements,
            "max_mailbox_depth": self.max_depth,
            "in_flight": self.in_flight,
        }

    def close(self) -> None:
        """Shut every worker down (journals released)."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            if hasattr(worker, "close"):
                worker.close()

    def __repr__(self) -> str:
        return (
            f"ShardSupervisor({len(self.workers)} shard(s), "
            f"{self.crashes} crash(es), "
            f"{len(self.tombstoned)} tombstoned)"
        )
