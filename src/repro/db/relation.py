"""Relation instances: immutable sets of rows plus lazy hash indexes.

A :class:`Relation` couples a :class:`~repro.db.schema.RelationSchema`
with a set of rows.  Instances are immutable; updates produce new
relations sharing row storage where possible.  Because instances never
change, per-attribute hash indexes can be built lazily and cached
forever, which keeps selective lookups (the common case in constraint
checking) constant-time.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Set

from repro.db.algebra import Table
from repro.db.schema import RelationSchema
from repro.db.types import Row, Value


class Relation:
    """An immutable relation instance."""

    __slots__ = ("schema", "rows", "_indexes")

    def __init__(self, schema: RelationSchema, rows: Iterable[Row] = ()):
        frozen = frozenset(tuple(r) for r in rows)
        for r in frozen:
            schema.validate_row(r)
        self.schema = schema
        self.rows: FrozenSet[Row] = frozen
        self._indexes: Dict[int, Dict[Value, FrozenSet[Row]]] = {}

    @property
    def name(self) -> str:
        """The relation's name (from its schema)."""
        return self.schema.name

    @property
    def cardinality(self) -> int:
        """Number of rows."""
        return len(self.rows)

    def index_on(self, position: int) -> Dict[Value, FrozenSet[Row]]:
        """Return (building if needed) the hash index on ``position``."""
        cached = self._indexes.get(position)
        if cached is not None:
            return cached
        buckets: Dict[Value, Set[Row]] = {}
        for r in self.rows:
            buckets.setdefault(r[position], set()).add(r)
        frozen = {v: frozenset(rs) for v, rs in buckets.items()}
        self._indexes[position] = frozen
        return frozen

    def lookup(self, position: int, value: Value) -> FrozenSet[Row]:
        """Rows whose attribute at ``position`` equals ``value``."""
        return self.index_on(position).get(value, frozenset())

    def with_changes(
        self,
        inserts: Iterable[Row] = (),
        deletes: Iterable[Row] = (),
    ) -> "Relation":
        """Return a new relation with ``deletes`` removed, ``inserts`` added.

        Deletes of absent rows and inserts of present rows are silently
        idempotent, matching set semantics.
        """
        ins = frozenset(tuple(r) for r in inserts)
        dels = frozenset(tuple(r) for r in deletes)
        if not ins and not dels:
            return self
        return Relation(self.schema, (self.rows - dels) | ins)

    def to_table(self) -> Table:
        """View this relation as an algebra table (columns = attributes)."""
        return Table(self.schema.attribute_names, self.rows)

    def __contains__(self, row: object) -> bool:
        return row in self.rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Relation)
            and self.schema == other.schema
            and self.rows == other.rows
        )

    def __hash__(self) -> int:
        return hash((self.schema, self.rows))

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, {len(self.rows)} rows)"
