"""Relational algebra over in-memory tables.

:class:`Table` is the workhorse of the whole library: relations, query
answers, binding sets of the constraint checker, and auxiliary-relation
snapshots are all tables — an ordered tuple of column names plus a set
of equal-length value rows.  All operations are pure: they return new
tables and never mutate their operands.

The operation set is exactly what safe-range first-order evaluation
needs: natural join, union (with column alignment), set difference,
anti-/semi-join, projection, selection, renaming, column extension, and
cartesian product.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Sequence,
    Tuple,
)

from repro.db.types import Row, Value
from repro.errors import AlgebraError


class Table:
    """An immutable set of rows under an ordered column header.

    Two tables are equal when they have the same columns *as a set* and
    contain the same rows once aligned to a common column order; this is
    the right notion of equality for query answers.
    """

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Sequence[str], rows: Iterable[Row] = ()):
        cols = tuple(columns)
        if len(set(cols)) != len(cols):
            raise AlgebraError(f"duplicate column names: {cols}")
        self.columns: Tuple[str, ...] = cols
        frozen = frozenset(tuple(r) for r in rows)
        for r in frozen:
            if len(r) != len(cols):
                raise AlgebraError(
                    f"row {r!r} does not match columns {cols}"
                )
        self.rows: FrozenSet[Row] = frozen

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @staticmethod
    def nullary(true: bool) -> "Table":
        """The two zero-column tables: ``{()}`` (true) and ``{}`` (false).

        Zero-column tables represent truth values of closed formulas.
        """
        return Table((), [()] if true else [])

    @staticmethod
    def empty(columns: Sequence[str]) -> "Table":
        """An empty table with the given header."""
        return Table(columns, ())

    @staticmethod
    def unit(assignment: Mapping[str, Value]) -> "Table":
        """A one-row table from a ``{column: value}`` mapping."""
        cols = tuple(assignment)
        return Table(cols, [tuple(assignment[c] for c in cols)])

    # ------------------------------------------------------------------
    # basic interrogation
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """Whether the table has no rows."""
        return not self.rows

    @property
    def truth(self) -> bool:
        """Truth value of a zero-column table.

        Raises:
            AlgebraError: if the table has columns.
        """
        if self.columns:
            raise AlgebraError(
                f"truth undefined for table with columns {self.columns}"
            )
        return bool(self.rows)

    def column_index(self, column: str) -> int:
        """0-based position of ``column``."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise AlgebraError(
                f"no column {column!r} in {self.columns}"
            ) from None

    def values(self, column: str) -> FrozenSet[Value]:
        """The set of values appearing in ``column``."""
        i = self.column_index(column)
        return frozenset(r[i] for r in self.rows)

    def assignments(self) -> Iterator[Dict[str, Value]]:
        """Iterate rows as ``{column: value}`` dicts (for reporting)."""
        for r in sorted(self.rows, key=repr):
            yield dict(zip(self.columns, r))

    # ------------------------------------------------------------------
    # unary operations
    # ------------------------------------------------------------------

    def project(self, columns: Sequence[str]) -> "Table":
        """Project onto ``columns`` (duplicates removed, order as given)."""
        idx = [self.column_index(c) for c in columns]
        return Table(columns, (tuple(r[i] for i in idx) for r in self.rows))

    def drop(self, *columns: str) -> "Table":
        """Project away the named columns."""
        keep = [c for c in self.columns if c not in columns]
        return self.project(keep)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns; names absent from ``mapping`` are kept."""
        new_cols = tuple(mapping.get(c, c) for c in self.columns)
        if len(set(new_cols)) != len(new_cols):
            raise AlgebraError(
                f"rename {dict(mapping)} collapses columns {self.columns}"
            )
        return Table(new_cols, self.rows)

    def select(self, predicate: Callable[[Dict[str, Value]], bool]) -> "Table":
        """Keep rows on which ``predicate`` (over a row dict) is true."""
        cols = self.columns
        kept = [
            r for r in self.rows if predicate(dict(zip(cols, r)))
        ]
        return Table(cols, kept)

    def select_eq(self, column: str, value: Value) -> "Table":
        """Keep rows whose ``column`` equals ``value``."""
        i = self.column_index(column)
        return Table(self.columns, (r for r in self.rows if r[i] == value))

    def select_cols_eq(self, left: str, right: str) -> "Table":
        """Keep rows where two columns carry the same value."""
        i, j = self.column_index(left), self.column_index(right)
        return Table(self.columns, (r for r in self.rows if r[i] == r[j]))

    def extend_copy(self, source: str, new: str) -> "Table":
        """Add column ``new`` carrying a copy of column ``source``.

        Implements the equality atom ``x = y`` when only one side is
        bound: every binding of ``source`` is propagated to ``new``.
        """
        if new in self.columns:
            raise AlgebraError(f"column {new!r} already present")
        i = self.column_index(source)
        return Table(
            self.columns + (new,), (r + (r[i],) for r in self.rows)
        )

    def extend_const(self, new: str, value: Value) -> "Table":
        """Add a constant column."""
        if new in self.columns:
            raise AlgebraError(f"column {new!r} already present")
        return Table(self.columns + (new,), (r + (value,) for r in self.rows))

    def aggregate(
        self,
        group: Sequence[str],
        over: Sequence[str],
        op: str,
        result: str,
    ) -> "Table":
        """Grouped aggregation.

        Rows are grouped by the ``group`` columns; within each group
        the distinct ``over``-tuples are aggregated: ``cnt`` counts
        them, ``sum``/``min``/``max``/``avg`` fold the *first* ``over``
        column's values (one value per distinct tuple, so a non-measure
        column in ``over`` keeps duplicates apart).  The result has
        columns ``group + (result,)`` — one row per non-empty group.

        Raises:
            AlgebraError: on unknown ``op``, column problems, or
                non-numeric values under a numeric aggregate.
        """
        if op not in ("cnt", "sum", "min", "max", "avg"):
            raise AlgebraError(f"unknown aggregate op: {op!r}")
        if not over:
            raise AlgebraError("aggregate needs at least one over-column")
        if result in group:
            raise AlgebraError(
                f"result column {result!r} collides with a group column"
            )
        g_idx = [self.column_index(c) for c in group]
        o_idx = [self.column_index(c) for c in over]
        groups: Dict[Row, set] = {}
        for r in self.rows:
            key = tuple(r[i] for i in g_idx)
            groups.setdefault(key, set()).add(tuple(r[i] for i in o_idx))
        out_rows: List[Row] = []
        for key, tuples in groups.items():
            if op == "cnt":
                value: Value = len(tuples)
            else:
                measures = [t[0] for t in tuples]
                if not all(
                    isinstance(m, (int, float)) and not isinstance(m, bool)
                    for m in measures
                ):
                    raise AlgebraError(
                        f"aggregate {op} over non-numeric values: "
                        f"{sorted(measures, key=repr)[:3]}"
                    )
                if op == "sum":
                    value = sum(measures)
                elif op == "min":
                    value = min(measures)
                elif op == "max":
                    value = max(measures)
                else:
                    value = sum(measures) / len(measures)
            out_rows.append(key + (value,))
        return Table(tuple(group) + (result,), out_rows)

    # ------------------------------------------------------------------
    # binary operations
    # ------------------------------------------------------------------

    def _aligned_rows(self, order: Sequence[str]) -> Iterator[Row]:
        idx = [self.column_index(c) for c in order]
        for r in self.rows:
            yield tuple(r[i] for i in idx)

    def union(self, other: "Table") -> "Table":
        """Set union; requires equal column *sets* (order may differ)."""
        if set(self.columns) != set(other.columns):
            raise AlgebraError(
                f"union of incompatible headers {self.columns} / "
                f"{other.columns}"
            )
        return Table(
            self.columns,
            list(self.rows) + list(other._aligned_rows(self.columns)),
        )

    def difference(self, other: "Table") -> "Table":
        """Set difference; requires equal column sets."""
        if set(self.columns) != set(other.columns):
            raise AlgebraError(
                f"difference of incompatible headers {self.columns} / "
                f"{other.columns}"
            )
        gone = set(other._aligned_rows(self.columns))
        return Table(self.columns, (r for r in self.rows if r not in gone))

    def intersection(self, other: "Table") -> "Table":
        """Set intersection; requires equal column sets."""
        if set(self.columns) != set(other.columns):
            raise AlgebraError(
                f"intersection of incompatible headers {self.columns} / "
                f"{other.columns}"
            )
        keep = set(other._aligned_rows(self.columns))
        return Table(self.columns, (r for r in self.rows if r in keep))

    def join(self, other: "Table") -> "Table":
        """Natural join on all shared columns.

        With no shared columns this is the cartesian product; with equal
        column sets it is the intersection.  The result header is this
        table's columns followed by ``other``'s private columns.
        """
        shared = [c for c in self.columns if c in other.columns]
        right_private = [c for c in other.columns if c not in shared]
        out_cols = self.columns + tuple(right_private)

        if not shared:
            rows = [
                lr + rr for lr in self.rows for rr in other.rows
            ]
            return Table(out_cols, rows)

        l_idx = [self.column_index(c) for c in shared]
        r_idx = [other.column_index(c) for c in shared]
        rp_idx = [other.column_index(c) for c in right_private]

        index: Dict[Row, List[Row]] = {}
        for rr in other.rows:
            key = tuple(rr[i] for i in r_idx)
            index.setdefault(key, []).append(tuple(rr[i] for i in rp_idx))

        rows_out: List[Row] = []
        for lr in self.rows:
            key = tuple(lr[i] for i in l_idx)
            for tail in index.get(key, ()):
                rows_out.append(lr + tail)
        return Table(out_cols, rows_out)

    def semijoin(self, other: "Table") -> "Table":
        """Keep rows that join with at least one row of ``other``."""
        shared = [c for c in self.columns if c in other.columns]
        if not shared:
            return self if not other.is_empty else Table.empty(self.columns)
        l_idx = [self.column_index(c) for c in shared]
        keys = set(other._aligned_rows(shared))
        return Table(
            self.columns,
            (r for r in self.rows if tuple(r[i] for i in l_idx) in keys),
        )

    def antijoin(self, other: "Table") -> "Table":
        """Keep rows that join with *no* row of ``other``.

        This is how negated conjuncts are evaluated: the negated
        subformula's answer table is anti-joined against the bindings
        accumulated by the positive conjuncts.
        """
        shared = [c for c in self.columns if c in other.columns]
        if not shared:
            return Table.empty(self.columns) if not other.is_empty else self
        l_idx = [self.column_index(c) for c in shared]
        keys = set(other._aligned_rows(shared))
        return Table(
            self.columns,
            (r for r in self.rows if tuple(r[i] for i in l_idx) not in keys),
        )

    def product(self, other: "Table") -> "Table":
        """Cartesian product; requires disjoint headers."""
        if set(self.columns) & set(other.columns):
            raise AlgebraError(
                f"product of overlapping headers {self.columns} / "
                f"{other.columns}"
            )
        return self.join(other)

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __contains__(self, row: object) -> bool:
        return row in self.rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if set(self.columns) != set(other.columns):
            return False
        return self.rows == frozenset(other._aligned_rows(self.columns))

    def __hash__(self) -> int:
        order = tuple(sorted(self.columns))
        idx = [self.column_index(c) for c in order]
        return hash(
            (order, frozenset(tuple(r[i] for i in idx) for r in self.rows))
        )

    def __repr__(self) -> str:
        shown = sorted(self.rows, key=repr)[:6]
        suffix = ", ..." if len(self.rows) > 6 else ""
        return f"Table({list(self.columns)}, {shown}{suffix})"
