"""Database states.

A :class:`DatabaseState` is one snapshot of the database: every relation
of the schema with its current rows.  States are immutable; applying a
:class:`~repro.db.transactions.Transaction` yields a new state that
shares the relation objects the transaction did not touch, so keeping a
window of recent states (as the naive checker does) costs memory only
proportional to the changes between them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Set

from repro.db.relation import Relation
from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.db.types import Row, Value
from repro.errors import UnknownRelationError


class DatabaseState:
    """One immutable snapshot of all relations declared by a schema."""

    __slots__ = ("schema", "_relations")

    def __init__(
        self,
        schema: DatabaseSchema,
        relations: Optional[Mapping[str, Relation]] = None,
    ):
        rels: Dict[str, Relation] = {}
        provided = dict(relations or {})
        for rs in schema:
            rel = provided.pop(rs.name, None)
            if rel is None:
                rel = Relation(rs)
            elif rel.schema != rs:
                raise UnknownRelationError(
                    f"relation {rs.name!r} instance does not match schema"
                )
            rels[rs.name] = rel
        if provided:
            raise UnknownRelationError(
                f"relations not in schema: {sorted(provided)}"
            )
        self.schema = schema
        self._relations = rels

    @classmethod
    def empty(cls, schema: DatabaseSchema) -> "DatabaseState":
        """The state in which every relation is empty."""
        return cls(schema)

    @classmethod
    def from_rows(
        cls,
        schema: DatabaseSchema,
        contents: Mapping[str, Iterable[Row]],
    ) -> "DatabaseState":
        """Build a state from ``{relation: rows}``; absent relations empty."""
        rels = {
            name: Relation(schema.relation(name), rows)
            for name, rows in contents.items()
        }
        return cls(schema, rels)

    def relation(self, name: str) -> Relation:
        """Look up a relation instance by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(
                f"state has no relation {name!r}"
            ) from None

    def apply(self, txn: Transaction) -> "DatabaseState":
        """Return the successor state after ``txn``.

        Untouched relations are shared between the two states.
        """
        txn.validate(self.schema)
        if txn.is_noop:
            return self
        new_rels = dict(self._relations)
        for name in txn.touched_relations():
            new_rels[name] = self._relations[name].with_changes(
                inserts=txn.inserts.get(name, ()),
                deletes=txn.deletes.get(name, ()),
            )
        return DatabaseState(self.schema, new_rels)

    def diff(self, successor: "DatabaseState") -> Transaction:
        """The transaction turning this state into ``successor``."""
        inserts: Dict[str, Set[Row]] = {}
        deletes: Dict[str, Set[Row]] = {}
        for name, rel in self._relations.items():
            other = successor.relation(name)
            if rel.rows is other.rows:
                continue
            added = other.rows - rel.rows
            removed = rel.rows - other.rows
            if added:
                inserts[name] = set(added)
            if removed:
                deletes[name] = set(removed)
        return Transaction(inserts, deletes)

    def active_domain(self) -> FrozenSet[Value]:
        """All values appearing anywhere in the state."""
        values: Set[Value] = set()
        for rel in self._relations.values():
            for row in rel.rows:
                values.update(row)
        return frozenset(values)

    @property
    def total_rows(self) -> int:
        """Total tuple count across all relations."""
        return sum(len(r) for r in self._relations.values())

    def cardinalities(self) -> Dict[str, int]:
        """Per-relation row counts."""
        return {name: len(rel) for name, rel in self._relations.items()}

    def to_dict(self) -> Dict[str, list]:
        """Serialise contents to ``{relation: sorted row lists}``."""
        return {
            name: sorted([list(r) for r in rel.rows])
            for name, rel in self._relations.items()
            if rel.rows
        }

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DatabaseState)
            and self.schema == other.schema
            and self._relations == other._relations
        )

    def __hash__(self) -> int:
        return hash(
            (self.schema, frozenset(self._relations.items()))
        )

    def __repr__(self) -> str:
        counts = ", ".join(
            f"{n}:{len(r)}" for n, r in sorted(self._relations.items())
        )
        return f"DatabaseState({counts})"
