"""Value types and attribute domains for the relational substrate.

The engine is deliberately first-order and function-free, as in the
paper: attribute values are immutable Python scalars.  Three domains are
supported — integers, strings, and floats — plus ``ANY`` for untyped
attributes.  Timestamps are plain non-negative integers and are *not* a
relation domain; they appear only in the auxiliary relations maintained
by the checker.
"""

from __future__ import annotations

import enum
from typing import Tuple, Union

from repro.errors import ValueTypeError

#: A single attribute value.
Value = Union[int, str, float]

#: An immutable database tuple (one row of a relation).
Row = Tuple[Value, ...]


class Domain(enum.Enum):
    """Domain (type) of a relation attribute."""

    INT = "int"
    STR = "str"
    FLOAT = "float"
    ANY = "any"

    def contains(self, value: Value) -> bool:
        """Return whether ``value`` belongs to this domain.

        Booleans are rejected from ``INT`` even though ``bool`` subclasses
        ``int`` in Python, because a boolean attribute value is almost
        always a bug in workload code.
        """
        if isinstance(value, bool):
            return False
        if self is Domain.INT:
            return isinstance(value, int)
        if self is Domain.STR:
            return isinstance(value, str)
        if self is Domain.FLOAT:
            return isinstance(value, (int, float))
        return isinstance(value, (int, str, float))

    def check(self, value: Value, context: str = "") -> Value:
        """Return ``value`` if it belongs to the domain, else raise.

        Args:
            value: the candidate value.
            context: optional text naming the attribute, used in errors.

        Raises:
            ValueTypeError: if the value is outside the domain.
        """
        if not self.contains(value):
            where = f" for {context}" if context else ""
            raise ValueTypeError(
                f"value {value!r} is not in domain {self.value}{where}"
            )
        return value

    @classmethod
    def of(cls, value: Value) -> "Domain":
        """Return the narrowest domain containing ``value``."""
        if isinstance(value, bool):
            raise ValueTypeError("boolean values are not supported")
        if isinstance(value, int):
            return cls.INT
        if isinstance(value, str):
            return cls.STR
        if isinstance(value, float):
            return cls.FLOAT
        raise ValueTypeError(f"unsupported value type: {type(value).__name__}")

    @classmethod
    def parse(cls, text: str) -> "Domain":
        """Parse a domain name (``"int"``, ``"str"``, ``"float"``, ``"any"``)."""
        try:
            return cls(text.lower())
        except ValueError:
            raise ValueTypeError(f"unknown domain name: {text!r}") from None


def is_value(obj: object) -> bool:
    """Return whether ``obj`` is a legal attribute value."""
    return not isinstance(obj, bool) and isinstance(obj, (int, str, float))


def check_row(values: Tuple[Value, ...]) -> Row:
    """Validate that every element of ``values`` is a legal value.

    Returns the tuple unchanged so callers can validate inline.
    """
    for v in values:
        if not is_value(v):
            raise ValueTypeError(f"illegal attribute value: {v!r}")
    return values
