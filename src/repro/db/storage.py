"""Persistence of schemas and update streams as JSON / JSON-lines.

The on-disk format is the one consumed by the CLI:

* ``schema.json`` — the :meth:`DatabaseSchema.to_dict` form,
  ``{"relation": [["attr", "domain"], ...], ...}``;
* ``history.jsonl`` — one JSON object per line, each
  ``{"t": <timestamp>, "insert": {rel: [rows]}, "delete": {rel: [rows]}}``,
  timestamps strictly increasing.

Only the *stream* (timestamps + transactions) is stored; states are
reconstructed by replay, which is both smaller on disk and exactly the
input shape of the incremental checker.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Tuple, Union

from repro.db.schema import DatabaseSchema
from repro.db.transactions import Transaction
from repro.errors import HistoryError

PathLike = Union[str, Path]

#: One element of an update stream: (timestamp, transaction).
TimedTransaction = Tuple[int, Transaction]


def dump_schema(schema: DatabaseSchema, path: PathLike) -> None:
    """Write ``schema`` to ``path`` as JSON."""
    Path(path).write_text(
        json.dumps(schema.to_dict(), indent=2, sort_keys=True) + "\n"
    )


def load_schema(path: PathLike) -> DatabaseSchema:
    """Read a schema written by :func:`dump_schema`."""
    data = json.loads(Path(path).read_text())
    return DatabaseSchema.from_dict(
        {name: [tuple(a) for a in attrs] for name, attrs in data.items()}
    )


def dump_stream(stream: Iterable[TimedTransaction], path: PathLike) -> None:
    """Write an update stream to ``path`` as JSON lines."""
    with open(path, "w") as fh:
        write_stream(stream, fh)


def write_stream(stream: Iterable[TimedTransaction], fh: IO[str]) -> None:
    """Write an update stream to an open text file."""
    for t, txn in stream:
        record = {"t": t}
        record.update(txn.to_dict())
        fh.write(json.dumps(record, sort_keys=True))
        fh.write("\n")


def load_stream(path: PathLike) -> List[TimedTransaction]:
    """Read the whole update stream from ``path``.

    Raises:
        HistoryError: on malformed lines or non-increasing timestamps.
    """
    with open(path) as fh:
        return list(read_stream(fh))


def read_stream(fh: IO[str]) -> Iterator[TimedTransaction]:
    """Lazily read an update stream from an open text file."""
    previous_t = None
    for lineno, line in enumerate(fh, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
            t = record["t"]
            txn = Transaction.from_dict(record)
        except (ValueError, KeyError, TypeError) as exc:
            raise HistoryError(f"line {lineno}: malformed record: {exc}")
        if not isinstance(t, int) or t < 0:
            raise HistoryError(
                f"line {lineno}: timestamp must be a non-negative int, "
                f"got {t!r}"
            )
        if previous_t is not None and t <= previous_t:
            raise HistoryError(
                f"line {lineno}: timestamp {t} not greater than "
                f"predecessor {previous_t}"
            )
        previous_t = t
        yield t, txn


def dump_arrivals(
    arrivals: Iterable[Tuple[int, Transaction, str]], path: PathLike
) -> None:
    """Write an *arrival* sequence (a perturbed delivery order).

    Same line format as :func:`dump_stream` plus a ``"source"`` field;
    unlike a history file, timestamps need not increase — the file
    records deliveries as the wire saw them, for ``repro ingest`` to
    reorder.
    """
    with open(path, "w") as fh:
        for t, txn, source in arrivals:
            record = {"t": t, "source": source}
            record.update(txn.to_dict())
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")


def read_arrivals(
    path: PathLike, default_source: str = "default"
) -> Iterator[Tuple[object, object, str]]:
    """Lazily read arrivals written by :func:`dump_arrivals`.

    Deliberately lenient: timestamps are passed through unvalidated
    and undecodable lines come out as ``(None, <raw line>,
    default_source)`` garbage arrivals — the ingest reorderer is the
    validation boundary and must see every record to account for it.
    Records without a ``"source"`` field are tagged ``default_source``.
    """
    with open(path) as fh:
        for line in fh:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                record = json.loads(stripped)
                t = record["t"]
                txn = Transaction.from_dict(record)
                source = record.get("source", default_source)
            except (ValueError, KeyError, TypeError):
                yield None, stripped, default_source
                continue
            if not isinstance(source, str):
                source = str(source)
            yield t, txn, source


class StreamFault:
    """A stream line that could not be decoded (lenient reading only)."""

    __slots__ = ("lineno", "reason", "line")

    def __init__(self, lineno: int, reason: str, line: str):
        self.lineno = lineno
        self.reason = reason
        self.line = line

    def __repr__(self) -> str:
        return f"StreamFault(line {self.lineno}: {self.reason})"


def iter_stream_lenient(
    path: PathLike,
) -> Iterator[Union[TimedTransaction, StreamFault]]:
    """Read an update stream without dying on the first bad line.

    Yields ``(t, txn)`` pairs for decodable records and
    :class:`StreamFault` markers for undecodable ones, in file order.
    Unlike :func:`read_stream`, timestamps are *not* checked for
    monotonicity here — that is the monitor's clock validation, and
    under a fault policy it must reach the monitor to be counted and
    quarantined rather than abort the read.
    """
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                record = json.loads(stripped)
                t = record["t"]
                txn = Transaction.from_dict(record)
            except (ValueError, KeyError, TypeError) as exc:
                yield StreamFault(
                    lineno, f"malformed record: {exc}", stripped
                )
                continue
            if not isinstance(t, int):
                yield StreamFault(
                    lineno,
                    f"timestamp must be an int, got {t!r}",
                    stripped,
                )
                continue
            yield t, txn
